//! Algorithm-based fault tolerance (ABFT) checksums for the tiled GEMM
//! drivers, in the style of Huang & Abraham's row/column checksum scheme
//! — adapted to the M3XU execution model where rounding happens once per
//! k-chunk.
//!
//! ## The identity
//!
//! Within one k-chunk of one output tile, the MXU datapath computes, for
//! every element `(i, j)`, the *exact* dyadic value
//!
//! ```text
//! pre_round(i, j) = seed(i, j) + Σ_k a[i][k] · b[k][j]
//! ```
//!
//! (the hi/lo 12-bit split is error-free and the Kulisch register is
//! exact), then rounds it once to FP32. Summing over the tile and
//! swapping the summation order gives the checksum identity
//!
//! ```text
//! Σ_(i,j) pre_round(i, j) = Σ_(i,j) seed(i, j) + Σ_k (Σ_i a[i][k]) · (Σ_j b[k][j])
//! ```
//!
//! which holds *exactly* in the dyadic rationals — and therefore exactly
//! in their homomorphic image mod `p = 2^61 - 1` ([`m3xu_fp::residue`]).
//! The right-hand side (the **expected** checksum) costs `O(rows·cols +
//! klen·(rows + cols))`; the left-hand side (the **computed** checksum)
//! falls out of the accumulator state the checked MMA already holds. A
//! corrupted product shifts the computed side by a nonzero dyadic delta,
//! whose residue is nonzero because `p` is prime — detection of a single
//! corrupted product is *certain*, not probabilistic.
//!
//! The identity must be checked per k-chunk: each chunk rounds its
//! results and re-seeds the next one, and rounding is not additive.
//!
//! ## Expected checksums come from the packed planes
//!
//! The expected side is computed from the [`PackedOperand`] buffer
//! entries — the quantised, alpha-folded, slice-split values the
//! multiplier array *actually* consumes — not from the source matrices.
//! That one choice is what makes the whole op × precision surface
//! checkable with a single algebra:
//!
//! * narrow modes (FP16/BF16/TF32): the entries *are* the quantised
//!   values, so quantisation needs no modelling;
//! * the BLAS-3 driver's `alpha` fold and `op(X)` views: packing already
//!   applied them, so the checksum algebra inherits them for free;
//! * emulated FP64: the 5 mantissa slices per element are entries like
//!   any other, and the 53-bit/2^-1074 dyadic range is inside `F_p`'s
//!   image ([`m3xu_fp::residue::residue_f64`]);
//! * the truncated fast-FP32 schedule: the per-slice column sums
//!   `S_A[s]`, `S_B[t]` are combined term-by-term, skipping exactly the
//!   `s + t >= N` products the datapath skips.
//!
//! ## Special values
//!
//! NaN/Inf have no dyadic value. A chunk whose seeds or operand band
//! contain specials is *unverifiable* ([`Checksum::ok`] is false) and is
//! skipped by the verifier — ABFT coverage extends exactly as far as the
//! arithmetic the checksum algebra models, matching the fault injector,
//! which never targets special-valued lanes (they bypass the multiplier
//! array).

use crate::buffer::BufferEntry;
use crate::modes::MxuMode;
use crate::packed::PackedOperand;
use m3xu_fp::residue::{
    add_m61, mul_m61, neg_m61, pow2_m61, reduce_u64, residue_f32, residue_f64, sub_m61,
};
use m3xu_fp::C32;

/// A per-chunk checksum: the residue pair (imaginary part zero for real
/// GEMMs) plus a verifiability flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum {
    /// Residue of the real part, mod `2^61 - 1`.
    pub re: u64,
    /// Residue of the imaginary part, mod `2^61 - 1`.
    pub im: u64,
    /// False when special values make the chunk unverifiable.
    pub ok: bool,
}

impl Checksum {
    /// The additive identity of a verifiable checksum.
    pub const ZERO: Checksum = Checksum {
        re: 0,
        im: 0,
        ok: true,
    };

    /// A checksum poisoned by special values.
    pub const UNVERIFIABLE: Checksum = Checksum {
        re: 0,
        im: 0,
        ok: false,
    };

    /// Accumulate a real element residue (`None` poisons the checksum).
    pub fn absorb_re(&mut self, r: Option<u64>) {
        match r {
            Some(r) if self.ok => self.re = add_m61(self.re, r),
            _ => self.ok = false,
        }
    }

    /// Accumulate a complex element residue pair.
    pub fn absorb_pair(&mut self, r: Option<(u64, u64)>) {
        match r {
            Some((re, im)) if self.ok => {
                self.re = add_m61(self.re, re);
                self.im = add_m61(self.im, im);
            }
            _ => self.ok = false,
        }
    }

    /// Does a computed checksum agree with this expected one?
    ///
    /// An unverifiable *expected* side always matches (no claim is made);
    /// a verifiable expected side with an unverifiable computed side is a
    /// mismatch — honest execution of a special-free chunk always yields
    /// a finite, extractable accumulator state.
    pub fn matches(&self, computed: &Checksum) -> bool {
        !self.ok || (computed.ok && self.re == computed.re && self.im == computed.im)
    }
}

/// Residue pair of a complex value; `None` if either component is
/// non-finite.
pub fn residue_c32(z: C32) -> Option<(u64, u64)> {
    Some((residue_f32(z.re)?, residue_f32(z.im)?))
}

/// Complex product in `F_p × F_p`:
/// `(ar·br − ai·bi, ar·bi + ai·br)`.
fn cmul_m61(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    (
        sub_m61(mul_m61(a.0, b.0), mul_m61(a.1, b.1)),
        add_m61(mul_m61(a.0, b.1), mul_m61(a.1, b.0)),
    )
}

/// `F_p` residue of the exact dyadic value one [`BufferEntry`] denotes
/// (`±mant · 2^pow`); `None` for a special-valued entry, which has no
/// dyadic value. This is the same map the checked executors apply to
/// their contribution lists, so expected and computed sides agree
/// definitionally on what each lane is worth.
pub fn entry_residue(e: &BufferEntry) -> Option<u64> {
    if e.special.is_some() {
        return None;
    }
    let r = mul_m61(reduce_u64(e.mant as u64), pow2_m61(e.pow as i64));
    Some(if e.sign { neg_m61(r) } else { r })
}

/// Per-slice column sums of one packed operand at reduction index `k`:
/// `out[s] = Σ_v residue(entry_s(vec v, k))` over vectors
/// `v0 .. v0 + n`. `None` when any entry in the band is special.
fn slice_sums(p: &PackedOperand, v0: usize, n: usize, k: usize, out: &mut [u64]) -> Option<()> {
    out.fill(0);
    let epe = p.epe();
    for v in 0..n {
        let elem = &p.vec(v0 + v)[k * epe..(k + 1) * epe];
        for (slot, e) in out.iter_mut().zip(elem) {
            *slot = add_m61(*slot, entry_residue(e)?);
        }
    }
    Some(())
}

/// The shared real-mode core: seeds are already absorbed into `sum`;
/// accumulate the per-k slice-product terms. For the full modes every
/// `(s, t)` slice pair is issued; the truncated fast-FP32 schedule skips
/// `s + t >= N`, mirroring the datapath's term schedule exactly.
#[allow(clippy::too_many_arguments)]
fn expected_real_core(
    a: &PackedOperand,
    b: &PackedOperand,
    mut sum: Checksum,
    r0: usize,
    rows: usize,
    c0: usize,
    cols: usize,
    k0: usize,
    kend: usize,
) -> Checksum {
    debug_assert_eq!(a.mode(), b.mode(), "operand modes disagree");
    let epe = a.epe();
    let truncated = a.mode() == MxuMode::M3xuFp32Fast;
    let mut sa = [0u64; m3xu_fp::split::MAX_SLICES];
    let mut sb = [0u64; m3xu_fp::split::MAX_SLICES];
    for k in k0..kend {
        if slice_sums(a, r0, rows, k, &mut sa[..epe]).is_none()
            || slice_sums(b, c0, cols, k, &mut sb[..epe]).is_none()
        {
            return Checksum::UNVERIFIABLE;
        }
        for (s, &va) in sa[..epe].iter().enumerate() {
            for (t, &vb) in sb[..epe].iter().enumerate() {
                if truncated && s + t >= epe {
                    continue;
                }
                sum.re = add_m61(sum.re, mul_m61(va, vb));
            }
        }
    }
    sum
}

/// Expected checksum of one real k-chunk, from the **packed** operand
/// planes: `Σ seeds + Σ_k Σ_(s,t) S_A[s][k]·S_B[t][k]` over the tile
/// `(r0.., c0..) × (k0..kend)`, where `S_A[s][k]` sums slice `s` of
/// packed element `k` over the tile's A vectors (rows) and `S_B[t][k]`
/// does the same over the B vectors (columns). `seeds` is the tile's
/// accumulator *before* the chunk runs, row-major `rows × cols`.
///
/// Because the entries are the values the multiplier array consumes —
/// quantised, alpha-folded, op-viewed — this one function covers every
/// real f32 mode, including the truncated fast schedule.
#[allow(clippy::too_many_arguments)]
pub fn expected_chunk_packed_f32(
    a: &PackedOperand,
    b: &PackedOperand,
    seeds: &[f32],
    r0: usize,
    rows: usize,
    c0: usize,
    cols: usize,
    k0: usize,
    kend: usize,
) -> Checksum {
    let mut sum = Checksum::ZERO;
    for &s in &seeds[..rows * cols] {
        sum.absorb_re(residue_f32(s));
        if !sum.ok {
            return Checksum::UNVERIFIABLE;
        }
    }
    expected_real_core(a, b, sum, r0, rows, c0, cols, k0, kend)
}

/// [`expected_chunk_packed_f32`] for the emulated-FP64 pipeline: `f64`
/// seeds (the accumulator is `f64` end-to-end) and the full `N × N`
/// slice cross product per element.
#[allow(clippy::too_many_arguments)]
pub fn expected_chunk_packed_f64(
    a: &PackedOperand,
    b: &PackedOperand,
    seeds: &[f64],
    r0: usize,
    rows: usize,
    c0: usize,
    cols: usize,
    k0: usize,
    kend: usize,
) -> Checksum {
    let mut sum = Checksum::ZERO;
    for &s in &seeds[..rows * cols] {
        sum.absorb_re(residue_f64(s));
        if !sum.ok {
            return Checksum::UNVERIFIABLE;
        }
    }
    expected_real_core(a, b, sum, r0, rows, c0, cols, k0, kend)
}

/// Expected checksum of one complex k-chunk from the packed component
/// planes. Each packed element holds `[re_hi, re_lo, im_hi, im_lo]`;
/// the element's residue pair is the half sums, and the per-k outer
/// product uses the complex field structure of `F_p × F_p` — which
/// absorbs the 16-lane component schedule in one multiplication.
#[allow(clippy::too_many_arguments)]
pub fn expected_chunk_packed_c32(
    a: &PackedOperand,
    b: &PackedOperand,
    seeds: &[C32],
    r0: usize,
    rows: usize,
    c0: usize,
    cols: usize,
    k0: usize,
    kend: usize,
) -> Checksum {
    let mut sum = Checksum::ZERO;
    for &s in &seeds[..rows * cols] {
        sum.absorb_pair(residue_c32(s));
        if !sum.ok {
            return Checksum::UNVERIFIABLE;
        }
    }
    let pair_sum = |p: &PackedOperand, v0: usize, n: usize, k: usize| -> Option<(u64, u64)> {
        let mut acc = (0u64, 0u64);
        for v in 0..n {
            let e = &p.vec(v0 + v)[k * 4..(k + 1) * 4];
            let re = add_m61(entry_residue(&e[0])?, entry_residue(&e[1])?);
            let im = add_m61(entry_residue(&e[2])?, entry_residue(&e[3])?);
            acc = (add_m61(acc.0, re), add_m61(acc.1, im));
        }
        Some(acc)
    };
    for k in k0..kend {
        let (sa, sb) = match (pair_sum(a, r0, rows, k), pair_sum(b, c0, cols, k)) {
            (Some(sa), Some(sb)) => (sa, sb),
            _ => return Checksum::UNVERIFIABLE,
        };
        let prod = cmul_m61(sa, sb);
        sum.re = add_m61(sum.re, prod.0);
        sum.im = add_m61(sum.im, prod.1);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unverifiable_expected_matches_anything() {
        let e = Checksum::UNVERIFIABLE;
        assert!(e.matches(&Checksum::ZERO));
        assert!(e.matches(&Checksum::UNVERIFIABLE));
    }

    #[test]
    fn verifiable_expected_rejects_unverifiable_computed() {
        let e = Checksum::ZERO;
        assert!(!e.matches(&Checksum::UNVERIFIABLE));
        assert!(e.matches(&Checksum::ZERO));
        let other = Checksum {
            re: 1,
            im: 0,
            ok: true,
        };
        assert!(!e.matches(&other));
    }

    #[test]
    fn specials_anywhere_poison_the_expected_side() {
        use crate::matrix::Matrix;
        let mut a = Matrix::<f32>::random(4, 4, 1);
        let b = Matrix::<f32>::random(4, 4, 2);
        let seeds = [0.0f32; 16];
        let pb = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32);
        let pack = |m: &Matrix<f32>| PackedOperand::pack_rows_f32(m, MxuMode::M3xuFp32);
        assert!(expected_chunk_packed_f32(&pack(&a), &pb, &seeds, 0, 4, 0, 4, 0, 4).ok);
        a.set(2, 3, f32::NAN);
        assert!(!expected_chunk_packed_f32(&pack(&a), &pb, &seeds, 0, 4, 0, 4, 0, 4).ok);
        // A NaN outside the chunk's k-range does not poison it.
        assert!(expected_chunk_packed_f32(&pack(&a), &pb, &seeds, 0, 4, 0, 4, 0, 3).ok);
        // A NaN seed does, regardless of the operands.
        let mut bad_seeds = seeds;
        bad_seeds[5] = f32::NAN;
        assert!(!expected_chunk_packed_f32(&pack(&b), &pb, &bad_seeds, 0, 4, 0, 4, 0, 3).ok);
    }

    #[test]
    fn entry_residue_matches_the_value_residue_for_lossless_packs() {
        // An FP32-mode hi/lo pair denotes the exact input value, so the
        // entry residues must sum to the value's residue.
        for &x in &[1.5f32, -3.25, 0.1, 123456.78, f32::MIN_POSITIVE, 0.0] {
            let (hi, lo) = crate::buffer::decode_fp32(x);
            let r = add_m61(entry_residue(&hi).unwrap(), entry_residue(&lo).unwrap());
            assert_eq!(r, residue_f32(x).unwrap(), "{x}");
        }
    }

    #[test]
    fn packed_expected_agrees_across_pack_flavours() {
        use crate::matrix::Matrix;
        // alpha = 1 (bitwise) src packing must produce the same expected
        // checksum as the plain packers — same planes, same algebra.
        let a = Matrix::<f32>::random(4, 6, 31);
        let b = Matrix::<f32>::random(6, 4, 32);
        let seeds = [0.25f32; 16];
        for mode in [MxuMode::M3xuFp32, MxuMode::M3xuFp32Fast, MxuMode::Bf16] {
            let pa = PackedOperand::pack_rows_f32(&a, mode);
            let pb = PackedOperand::pack_cols_f32(&b, mode);
            let sa =
                PackedOperand::try_pack_rows_f32_src_in(&a, 1.0, mode, Default::default()).unwrap();
            let sb =
                PackedOperand::try_pack_cols_f32_src_in(&b, 1.0, mode, Default::default()).unwrap();
            let want = expected_chunk_packed_f32(&pa, &pb, &seeds, 0, 4, 0, 4, 0, 6);
            let got = expected_chunk_packed_f32(&sa, &sb, &seeds, 0, 4, 0, 4, 0, 6);
            assert!(want.ok);
            assert_eq!(want, got, "{mode:?}");
        }
    }

    #[test]
    fn complex_product_structure() {
        // (1 + 2i)(3 + 4i) = -5 + 10i.
        let p = cmul_m61((1, 2), (3, 4));
        assert_eq!(p.0, m3xu_fp::residue::M61 - 5);
        assert_eq!(p.1, 10);
    }
}
