//! Algorithm-based fault tolerance (ABFT) checksums for the tiled GEMM
//! drivers, in the style of Huang & Abraham's row/column checksum scheme
//! — adapted to the M3XU execution model where rounding happens once per
//! k-chunk.
//!
//! ## The identity
//!
//! Within one k-chunk of one output tile, the MXU datapath computes, for
//! every element `(i, j)`, the *exact* dyadic value
//!
//! ```text
//! pre_round(i, j) = seed(i, j) + Σ_k a[i][k] · b[k][j]
//! ```
//!
//! (the hi/lo 12-bit split is error-free and the Kulisch register is
//! exact), then rounds it once to FP32. Summing over the tile and
//! swapping the summation order gives the checksum identity
//!
//! ```text
//! Σ_(i,j) pre_round(i, j) = Σ_(i,j) seed(i, j) + Σ_k (Σ_i a[i][k]) · (Σ_j b[k][j])
//! ```
//!
//! which holds *exactly* in the dyadic rationals — and therefore exactly
//! in their homomorphic image mod `p = 2^61 - 1` ([`m3xu_fp::residue`]).
//! The right-hand side (the **expected** checksum) costs `O(rows·cols +
//! klen·(rows + cols))`; the left-hand side (the **computed** checksum)
//! falls out of the accumulator state the checked MMA already holds. A
//! corrupted product shifts the computed side by a nonzero dyadic delta,
//! whose residue is nonzero because `p` is prime — detection of a single
//! corrupted product is *certain*, not probabilistic.
//!
//! The identity must be checked per k-chunk: each chunk rounds its
//! results and re-seeds the next one, and rounding is not additive.
//!
//! ## Special values
//!
//! NaN/Inf have no dyadic value. A chunk whose seeds or operand band
//! contain specials is *unverifiable* ([`Checksum::ok`] is false) and is
//! skipped by the verifier — ABFT coverage extends exactly as far as the
//! arithmetic the checksum algebra models, matching the fault injector,
//! which never targets special-valued lanes (they bypass the multiplier
//! array).

use crate::matrix::Matrix;
use m3xu_fp::residue::{add_m61, mul_m61, residue_f32, sub_m61};
use m3xu_fp::C32;

/// A per-chunk checksum: the residue pair (imaginary part zero for real
/// GEMMs) plus a verifiability flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum {
    /// Residue of the real part, mod `2^61 - 1`.
    pub re: u64,
    /// Residue of the imaginary part, mod `2^61 - 1`.
    pub im: u64,
    /// False when special values make the chunk unverifiable.
    pub ok: bool,
}

impl Checksum {
    /// The additive identity of a verifiable checksum.
    pub const ZERO: Checksum = Checksum {
        re: 0,
        im: 0,
        ok: true,
    };

    /// A checksum poisoned by special values.
    pub const UNVERIFIABLE: Checksum = Checksum {
        re: 0,
        im: 0,
        ok: false,
    };

    /// Accumulate a real element residue (`None` poisons the checksum).
    pub fn absorb_re(&mut self, r: Option<u64>) {
        match r {
            Some(r) if self.ok => self.re = add_m61(self.re, r),
            _ => self.ok = false,
        }
    }

    /// Accumulate a complex element residue pair.
    pub fn absorb_pair(&mut self, r: Option<(u64, u64)>) {
        match r {
            Some((re, im)) if self.ok => {
                self.re = add_m61(self.re, re);
                self.im = add_m61(self.im, im);
            }
            _ => self.ok = false,
        }
    }

    /// Does a computed checksum agree with this expected one?
    ///
    /// An unverifiable *expected* side always matches (no claim is made);
    /// a verifiable expected side with an unverifiable computed side is a
    /// mismatch — honest execution of a special-free chunk always yields
    /// a finite, extractable accumulator state.
    pub fn matches(&self, computed: &Checksum) -> bool {
        !self.ok || (computed.ok && self.re == computed.re && self.im == computed.im)
    }
}

/// Residue pair of a complex value; `None` if either component is
/// non-finite.
pub fn residue_c32(z: C32) -> Option<(u64, u64)> {
    Some((residue_f32(z.re)?, residue_f32(z.im)?))
}

/// Complex product in `F_p × F_p`:
/// `(ar·br − ai·bi, ar·bi + ai·br)`.
fn cmul_m61(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    (
        sub_m61(mul_m61(a.0, b.0), mul_m61(a.1, b.1)),
        add_m61(mul_m61(a.0, b.1), mul_m61(a.1, b.0)),
    )
}

/// Expected checksum of one real k-chunk: `Σ seeds + Σ_k S_A[k]·S_B[k]`
/// over the tile `(i0.., j0..) × (k0..kend)`, where `S_A[k]` sums column
/// `k` of the tile's A rows and `S_B[k]` sums row `k` of the tile's B
/// columns. `seeds` is the tile's accumulator *before* the chunk runs,
/// row-major `rows × cols`.
#[allow(clippy::too_many_arguments)]
pub fn expected_chunk_f32(
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    seeds: &[f32],
    i0: usize,
    rows: usize,
    j0: usize,
    cols: usize,
    k0: usize,
    kend: usize,
) -> Checksum {
    let mut sum = Checksum::ZERO;
    for &s in &seeds[..rows * cols] {
        sum.absorb_re(residue_f32(s));
        if !sum.ok {
            return Checksum::UNVERIFIABLE;
        }
    }
    for k in k0..kend {
        let mut sa = 0u64;
        for i in 0..rows {
            match residue_f32(a.get(i0 + i, k)) {
                Some(r) => sa = add_m61(sa, r),
                None => return Checksum::UNVERIFIABLE,
            }
        }
        let mut sb = 0u64;
        for j in 0..cols {
            match residue_f32(b.get(k, j0 + j)) {
                Some(r) => sb = add_m61(sb, r),
                None => return Checksum::UNVERIFIABLE,
            }
        }
        sum.re = add_m61(sum.re, mul_m61(sa, sb));
    }
    sum
}

/// Expected checksum of one complex k-chunk; the per-k outer product uses
/// the complex field structure of `F_p × F_p`.
#[allow(clippy::too_many_arguments)]
pub fn expected_chunk_c32(
    a: &Matrix<C32>,
    b: &Matrix<C32>,
    seeds: &[C32],
    i0: usize,
    rows: usize,
    j0: usize,
    cols: usize,
    k0: usize,
    kend: usize,
) -> Checksum {
    let mut sum = Checksum::ZERO;
    for &s in &seeds[..rows * cols] {
        sum.absorb_pair(residue_c32(s));
        if !sum.ok {
            return Checksum::UNVERIFIABLE;
        }
    }
    for k in k0..kend {
        let mut sa = (0u64, 0u64);
        for i in 0..rows {
            match residue_c32(a.get(i0 + i, k)) {
                Some(r) => sa = (add_m61(sa.0, r.0), add_m61(sa.1, r.1)),
                None => return Checksum::UNVERIFIABLE,
            }
        }
        let mut sb = (0u64, 0u64);
        for j in 0..cols {
            match residue_c32(b.get(k, j0 + j)) {
                Some(r) => sb = (add_m61(sb.0, r.0), add_m61(sb.1, r.1)),
                None => return Checksum::UNVERIFIABLE,
            }
        }
        let prod = cmul_m61(sa, sb);
        sum.re = add_m61(sum.re, prod.0);
        sum.im = add_m61(sum.im, prod.1);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unverifiable_expected_matches_anything() {
        let e = Checksum::UNVERIFIABLE;
        assert!(e.matches(&Checksum::ZERO));
        assert!(e.matches(&Checksum::UNVERIFIABLE));
    }

    #[test]
    fn verifiable_expected_rejects_unverifiable_computed() {
        let e = Checksum::ZERO;
        assert!(!e.matches(&Checksum::UNVERIFIABLE));
        assert!(e.matches(&Checksum::ZERO));
        let other = Checksum {
            re: 1,
            im: 0,
            ok: true,
        };
        assert!(!e.matches(&other));
    }

    #[test]
    fn specials_anywhere_poison_the_expected_side() {
        let mut a = Matrix::<f32>::random(4, 4, 1);
        let b = Matrix::<f32>::random(4, 4, 2);
        let seeds = [0.0f32; 16];
        assert!(expected_chunk_f32(&a, &b, &seeds, 0, 4, 0, 4, 0, 4).ok);
        a.set(2, 3, f32::NAN);
        assert!(!expected_chunk_f32(&a, &b, &seeds, 0, 4, 0, 4, 0, 4).ok);
        // A NaN outside the chunk's k-range does not poison it.
        assert!(expected_chunk_f32(&a, &b, &seeds, 0, 4, 0, 4, 0, 3).ok);
    }

    #[test]
    fn complex_product_structure() {
        // (1 + 2i)(3 + 4i) = -5 + 10i.
        let p = cmul_m61((1, 2), (3, 4));
        assert_eq!(p.0, m3xu_fp::residue::M61 - 5);
        assert_eq!(p.1, 10);
    }
}
