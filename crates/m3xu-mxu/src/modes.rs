//! Operating modes of the multi-mode MXU and their timing properties.
//!
//! The mode determines (a) how many sequencing **steps** each MMA takes,
//! (b) how the instruction's `K` dimension relates to the native FP16
//! shape (wider operands halve/quarter the elements a register fetch
//! delivers), and therefore (c) the throughput relative to FP16 peak —
//! the corollaries of §III:
//!
//! | mode          | steps | K divisor | rel. throughput |
//! |---------------|------:|----------:|----------------:|
//! | FP16/BF16     |     1 |         1 |          1      |
//! | TF32          |     1 |         2 |          1/2    |
//! | M3XU FP32     |     2 |         2 |          1/4    | (Corollary 2)
//! | M3XU FP32-fast|     2†|         2 |          1/4†   | (truncated 3-term)
//! | M3XU FP32C    |     4 |         4 |          1/16   | (Corollary 3)
//! | M3XU FP64     |     2*|         4 |          1/8*   | (§IV-C, 27-bit muls)
//! | M3XU FP64-emu |     7 |         4 |          1/28   | (5×12-bit slices)
//! | M3XU FP64C    |     4*|         8 |          1/32*  |
//!
//! (*) The FP64 extension assumes the §IV-C variant with 27-bit multiplier
//! columns; with only 12-bit multipliers the step counts would scale by
//! the larger split factor. That 12-bit-only point in the design space is
//! exactly what `M3xuFp64Emu` realises: 5 slices of the 53-bit significand
//! (≤ 11 bits each), 25 cross terms per MAC, scheduled over the 4-lane
//! dot-product columns as `ceil(frag_k · terms / 4)` steps.
//!
//! (†) The fast FP32 mode drops the deepest (`lo·lo`) cross term — the
//! 3xTF32-style approximation. Its 2·3 = 6 lane products per output still
//! need `ceil(6/4) = 2` steps, so its *step* model matches exact FP32; the
//! win is 25% fewer multiplier activations (lane products / energy) and
//! proportionally less scalar-path work.

use m3xu_fp::format::{FloatFormat, BF16, FP16, FP32, FP64, TF32};
use m3xu_fp::split::{SliceConfig, FP32_SLICES_EXACT, FP64_SLICES_EMULATED};

/// The operating mode of one MMA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MxuMode {
    /// Native FP16 (the baseline Tensor-Core mode).
    Fp16,
    /// Native BF16.
    Bf16,
    /// TF32: FP32 storage, 11-bit significand, single step (precision-lossy).
    Tf32,
    /// M3XU true FP32: two-step, bit-exact (§IV-A).
    M3xuFp32,
    /// M3XU fast FP32: the truncated 3-term schedule (drops `lo·lo`) — the
    /// 3xTF32-style approximation on the same 2-slice operands.
    M3xuFp32Fast,
    /// M3XU FP32 complex: four-step, bit-exact (§IV-B).
    M3xuFp32c,
    /// M3XU FP64 extension (§IV-C).
    M3xuFp64,
    /// M3XU emulated FP64 on 12-bit multipliers: 5 mantissa slices, 25
    /// exact cross terms per MAC (the Ozaki-scheme point of the §IV-C
    /// design space).
    M3xuFp64Emu,
    /// M3XU FP64 complex extension (§IV-C).
    M3xuFp64c,
}

impl MxuMode {
    /// All modes, for exhaustive sweeps.
    pub const ALL: [MxuMode; 9] = [
        MxuMode::Fp16,
        MxuMode::Bf16,
        MxuMode::Tf32,
        MxuMode::M3xuFp32,
        MxuMode::M3xuFp32Fast,
        MxuMode::M3xuFp32c,
        MxuMode::M3xuFp64,
        MxuMode::M3xuFp64Emu,
        MxuMode::M3xuFp64c,
    ];

    /// Sequencing steps per MMA instruction.
    ///
    /// For the 12-bit slice family these follow the lane law
    /// `ceil(frag_k · terms_per_mac / 4)` — the four dot-product lanes per
    /// output column of the baseline unit: FP32 `ceil(2·4/4) = 2`, FP32C
    /// `ceil(1·16/4) = 4`, FP64-emu `ceil(1·25/4) = 7`. The §IV-C 27-bit
    /// FP64 variants keep their declared counts (their lanes are wider).
    pub fn steps(self) -> u32 {
        match self {
            MxuMode::Fp16 | MxuMode::Bf16 | MxuMode::Tf32 => 1,
            MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast | MxuMode::M3xuFp64 => 2,
            MxuMode::M3xuFp32c | MxuMode::M3xuFp64c => 4,
            MxuMode::M3xuFp64Emu => 7,
        }
    }

    /// Exact cross-product terms the mode schedules per MAC: `N²` for a
    /// full N-slice schedule, `N(N+1)/2` for the truncated fast schedule,
    /// 1 for the narrow single-entry modes. Complex modes count all four
    /// component products. `lane_products = macs × terms_per_mac`.
    pub fn terms_per_mac(self) -> u64 {
        match self {
            MxuMode::Fp16 | MxuMode::Bf16 | MxuMode::Tf32 => 1,
            MxuMode::M3xuFp32 => FP32_SLICES_EXACT.full_terms() as u64,
            MxuMode::M3xuFp32Fast => FP32_SLICES_EXACT.fast_terms() as u64,
            // 4 component products × 4 cross terms each.
            MxuMode::M3xuFp32c => 4 * FP32_SLICES_EXACT.full_terms() as u64,
            MxuMode::M3xuFp64 => 4,
            MxuMode::M3xuFp64Emu => FP64_SLICES_EMULATED.full_terms() as u64,
            MxuMode::M3xuFp64c => 16,
        }
    }

    /// The slice configuration behind a 12-bit slice-family mode, `None`
    /// for narrow and 27-bit-multiplier modes.
    pub fn slice_config(self) -> Option<SliceConfig> {
        match self {
            MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast | MxuMode::M3xuFp32c => {
                Some(FP32_SLICES_EXACT)
            }
            MxuMode::M3xuFp64Emu => Some(FP64_SLICES_EMULATED),
            _ => None,
        }
    }

    /// Factor by which the native FP16 `K` dimension shrinks in this mode
    /// (operand storage width / 16 bits, times 2 for complex).
    pub fn k_divisor(self) -> usize {
        match self {
            MxuMode::Fp16 | MxuMode::Bf16 => 1,
            MxuMode::Tf32 | MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast => 2,
            MxuMode::M3xuFp32c | MxuMode::M3xuFp64 | MxuMode::M3xuFp64Emu => 4,
            MxuMode::M3xuFp64c => 8,
        }
    }

    /// Throughput relative to FP16 peak for the same matrix-element count:
    /// `1 / (steps * k_divisor)` — Corollaries 2 and 3 of the paper.
    pub fn relative_throughput(self) -> f64 {
        1.0 / (self.steps() as f64 * self.k_divisor() as f64)
    }

    /// Bytes per scalar element in memory (complex elements count both
    /// components).
    pub fn element_bytes(self) -> usize {
        match self {
            MxuMode::Fp16 | MxuMode::Bf16 => 2,
            MxuMode::Tf32 | MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast => 4,
            MxuMode::M3xuFp32c | MxuMode::M3xuFp64 | MxuMode::M3xuFp64Emu => 8,
            MxuMode::M3xuFp64c => 16,
        }
    }

    /// The storage format of real scalars in this mode (complex modes store
    /// interleaved pairs of this format).
    pub fn scalar_format(self) -> FloatFormat {
        match self {
            MxuMode::Fp16 => FP16,
            MxuMode::Bf16 => BF16,
            MxuMode::Tf32 => TF32,
            MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast | MxuMode::M3xuFp32c => FP32,
            MxuMode::M3xuFp64 | MxuMode::M3xuFp64Emu | MxuMode::M3xuFp64c => FP64,
        }
    }

    /// True for complex-valued modes.
    pub fn is_complex(self) -> bool {
        matches!(self, MxuMode::M3xuFp32c | MxuMode::M3xuFp64c)
    }

    /// True for the modes that exist only on M3XU (not on the baseline MXU).
    pub fn is_m3xu_extension(self) -> bool {
        !matches!(self, MxuMode::Fp16 | MxuMode::Bf16 | MxuMode::Tf32)
    }

    /// Short display name matching the paper's vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            MxuMode::Fp16 => "fp16",
            MxuMode::Bf16 => "bf16",
            MxuMode::Tf32 => "tf32",
            MxuMode::M3xuFp32 => "m3xu-fp32",
            MxuMode::M3xuFp32Fast => "m3xu-fp32-fast",
            MxuMode::M3xuFp32c => "m3xu-fp32c",
            MxuMode::M3xuFp64 => "m3xu-fp64",
            MxuMode::M3xuFp64Emu => "m3xu-fp64-emu",
            MxuMode::M3xuFp64c => "m3xu-fp64c",
        }
    }
}

impl std::fmt::Display for MxuMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline organisation of the data-assignment stage — the two synthesis
/// variants of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineVariant {
    /// Data assignment shares the compute cycle: no extra latency, but the
    /// cycle time stretches 21% (Table III "M3XU" column).
    NonPipelined,
    /// Data assignment is its own pipeline stage: baseline cycle time, one
    /// extra cycle of latency per MMA, more area (Table III "M3XU
    /// pipelined" column).
    Pipelined,
}

impl PipelineVariant {
    /// Cycle-time ratio relative to the baseline FP16 MXU (Table III).
    pub fn cycle_time_ratio(self) -> f64 {
        match self {
            PipelineVariant::NonPipelined => 1.21,
            PipelineVariant::Pipelined => 1.00,
        }
    }

    /// Clock frequency ratio (inverse of cycle time). The paper's testbed
    /// realises this as 1170 MHz -> 960 MHz (= 1/1.21) for the
    /// non-pipelined kernels.
    pub fn frequency_ratio(self) -> f64 {
        1.0 / self.cycle_time_ratio()
    }

    /// Pipeline latency in cycles added on top of the per-step cycles.
    pub fn extra_latency_cycles(self) -> u64 {
        match self {
            PipelineVariant::NonPipelined => 0,
            PipelineVariant::Pipelined => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary_2_fp32_quarter_throughput() {
        assert_eq!(MxuMode::M3xuFp32.steps(), 2);
        assert_eq!(MxuMode::M3xuFp32.k_divisor(), 2);
        assert_eq!(MxuMode::M3xuFp32.relative_throughput(), 0.25);
    }

    #[test]
    fn corollary_3_fp32c_sixteenth_throughput() {
        assert_eq!(MxuMode::M3xuFp32c.steps(), 4);
        assert_eq!(MxuMode::M3xuFp32c.relative_throughput(), 0.0625);
    }

    #[test]
    fn tf32_is_half_rate_like_a100() {
        // Table I: TF32 156 TFLOPS vs FP16 312 TFLOPS.
        assert_eq!(MxuMode::Tf32.relative_throughput(), 0.5);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(MxuMode::Fp16.element_bytes(), 2);
        assert_eq!(MxuMode::Tf32.element_bytes(), 4); // 32-bit container
        assert_eq!(MxuMode::M3xuFp32c.element_bytes(), 8);
    }

    #[test]
    fn only_m3xu_modes_are_extensions() {
        assert!(!MxuMode::Fp16.is_m3xu_extension());
        assert!(!MxuMode::Tf32.is_m3xu_extension());
        assert!(MxuMode::M3xuFp32.is_m3xu_extension());
        assert!(MxuMode::M3xuFp64c.is_m3xu_extension());
    }

    #[test]
    fn pipeline_ratios_match_table3() {
        assert_eq!(PipelineVariant::NonPipelined.cycle_time_ratio(), 1.21);
        assert_eq!(PipelineVariant::Pipelined.cycle_time_ratio(), 1.00);
        // 1170 MHz * (1/1.21) ~= 967 MHz — the paper clocks at 960.
        let f = 1170.0 * PipelineVariant::NonPipelined.frequency_ratio();
        assert!((f - 966.9).abs() < 1.0);
    }

    #[test]
    fn complex_flags() {
        assert!(MxuMode::M3xuFp32c.is_complex());
        assert!(!MxuMode::M3xuFp32.is_complex());
    }

    #[test]
    fn slice_family_steps_follow_the_lane_law() {
        // For every 12-bit slice-family mode, steps = ceil(frag_k · terms
        // / 4): the four dot-product lanes per output column of the
        // baseline FP16 unit (k = 4, 1 term, 1 step).
        let baseline_k = 4u64;
        for mode in [
            MxuMode::M3xuFp32,
            MxuMode::M3xuFp32Fast,
            MxuMode::M3xuFp32c,
            MxuMode::M3xuFp64Emu,
        ] {
            let frag_k = (baseline_k as usize / mode.k_divisor()).max(1) as u64;
            let lanes = frag_k * mode.terms_per_mac();
            let steps = lanes.div_ceil(baseline_k);
            assert_eq!(mode.steps() as u64, steps, "{mode}");
        }
    }

    #[test]
    fn new_mode_timing_properties() {
        assert_eq!(MxuMode::M3xuFp32Fast.steps(), 2);
        assert_eq!(MxuMode::M3xuFp32Fast.k_divisor(), 2);
        assert_eq!(MxuMode::M3xuFp32Fast.terms_per_mac(), 3);
        assert_eq!(MxuMode::M3xuFp32Fast.relative_throughput(), 0.25);
        assert_eq!(MxuMode::M3xuFp64Emu.steps(), 7);
        assert_eq!(MxuMode::M3xuFp64Emu.k_divisor(), 4);
        assert_eq!(MxuMode::M3xuFp64Emu.terms_per_mac(), 25);
        assert_eq!(MxuMode::M3xuFp64Emu.element_bytes(), 8);
        assert!(MxuMode::M3xuFp32Fast.is_m3xu_extension());
        assert!(MxuMode::M3xuFp64Emu.is_m3xu_extension());
        assert_eq!(
            MxuMode::M3xuFp64Emu
                .slice_config()
                .unwrap()
                .max_slice_bits(),
            11
        );
    }

    #[test]
    fn terms_per_mac_reproduces_legacy_step_times_epe() {
        // For the pre-existing modes the term count equals steps × entries
        // per element — the quantity fragment_stats historically recorded.
        assert_eq!(MxuMode::Fp16.terms_per_mac(), 1);
        assert_eq!(MxuMode::Tf32.terms_per_mac(), 1);
        assert_eq!(MxuMode::M3xuFp32.terms_per_mac(), 2 * 2);
        assert_eq!(MxuMode::M3xuFp32c.terms_per_mac(), 4 * 4);
        assert_eq!(MxuMode::M3xuFp64.terms_per_mac(), 2 * 2);
        assert_eq!(MxuMode::M3xuFp64c.terms_per_mac(), 4 * 4);
    }
}
