//! Operating modes of the multi-mode MXU and their timing properties.
//!
//! The mode determines (a) how many sequencing **steps** each MMA takes,
//! (b) how the instruction's `K` dimension relates to the native FP16
//! shape (wider operands halve/quarter the elements a register fetch
//! delivers), and therefore (c) the throughput relative to FP16 peak —
//! the corollaries of §III:
//!
//! | mode      | steps | K divisor | rel. throughput |
//! |-----------|------:|----------:|----------------:|
//! | FP16/BF16 |     1 |         1 |          1      |
//! | TF32      |     1 |         2 |          1/2    |
//! | M3XU FP32 |     2 |         2 |          1/4    | (Corollary 2)
//! | M3XU FP32C|     4 |         4 |          1/16   | (Corollary 3)
//! | M3XU FP64 |     2*|         4 |          1/8*   | (§IV-C, 27-bit muls)
//! | M3XU FP64C|     4*|         8 |          1/32*  |
//!
//! (*) The FP64 extension assumes the §IV-C variant with 27-bit multiplier
//! columns; with only 12-bit multipliers the step counts would scale by
//! the larger split factor. This is the design-space knob the paper leaves
//! open ("accommodating options like 8-bit or 32-bit multipliers").

use m3xu_fp::format::{FloatFormat, BF16, FP16, FP32, FP64, TF32};

/// The operating mode of one MMA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MxuMode {
    /// Native FP16 (the baseline Tensor-Core mode).
    Fp16,
    /// Native BF16.
    Bf16,
    /// TF32: FP32 storage, 11-bit significand, single step (precision-lossy).
    Tf32,
    /// M3XU true FP32: two-step, bit-exact (§IV-A).
    M3xuFp32,
    /// M3XU FP32 complex: four-step, bit-exact (§IV-B).
    M3xuFp32c,
    /// M3XU FP64 extension (§IV-C).
    M3xuFp64,
    /// M3XU FP64 complex extension (§IV-C).
    M3xuFp64c,
}

impl MxuMode {
    /// All modes, for exhaustive sweeps.
    pub const ALL: [MxuMode; 7] = [
        MxuMode::Fp16,
        MxuMode::Bf16,
        MxuMode::Tf32,
        MxuMode::M3xuFp32,
        MxuMode::M3xuFp32c,
        MxuMode::M3xuFp64,
        MxuMode::M3xuFp64c,
    ];

    /// Sequencing steps per MMA instruction.
    pub fn steps(self) -> u32 {
        match self {
            MxuMode::Fp16 | MxuMode::Bf16 | MxuMode::Tf32 => 1,
            MxuMode::M3xuFp32 | MxuMode::M3xuFp64 => 2,
            MxuMode::M3xuFp32c | MxuMode::M3xuFp64c => 4,
        }
    }

    /// Factor by which the native FP16 `K` dimension shrinks in this mode
    /// (operand storage width / 16 bits, times 2 for complex).
    pub fn k_divisor(self) -> usize {
        match self {
            MxuMode::Fp16 | MxuMode::Bf16 => 1,
            MxuMode::Tf32 | MxuMode::M3xuFp32 => 2,
            MxuMode::M3xuFp32c | MxuMode::M3xuFp64 => 4,
            MxuMode::M3xuFp64c => 8,
        }
    }

    /// Throughput relative to FP16 peak for the same matrix-element count:
    /// `1 / (steps * k_divisor)` — Corollaries 2 and 3 of the paper.
    pub fn relative_throughput(self) -> f64 {
        1.0 / (self.steps() as f64 * self.k_divisor() as f64)
    }

    /// Bytes per scalar element in memory (complex elements count both
    /// components).
    pub fn element_bytes(self) -> usize {
        match self {
            MxuMode::Fp16 | MxuMode::Bf16 => 2,
            MxuMode::Tf32 | MxuMode::M3xuFp32 => 4,
            MxuMode::M3xuFp32c | MxuMode::M3xuFp64 => 8,
            MxuMode::M3xuFp64c => 16,
        }
    }

    /// The storage format of real scalars in this mode (complex modes store
    /// interleaved pairs of this format).
    pub fn scalar_format(self) -> FloatFormat {
        match self {
            MxuMode::Fp16 => FP16,
            MxuMode::Bf16 => BF16,
            MxuMode::Tf32 => TF32,
            MxuMode::M3xuFp32 | MxuMode::M3xuFp32c => FP32,
            MxuMode::M3xuFp64 | MxuMode::M3xuFp64c => FP64,
        }
    }

    /// True for complex-valued modes.
    pub fn is_complex(self) -> bool {
        matches!(self, MxuMode::M3xuFp32c | MxuMode::M3xuFp64c)
    }

    /// True for the modes that exist only on M3XU (not on the baseline MXU).
    pub fn is_m3xu_extension(self) -> bool {
        matches!(
            self,
            MxuMode::M3xuFp32 | MxuMode::M3xuFp32c | MxuMode::M3xuFp64 | MxuMode::M3xuFp64c
        )
    }

    /// Short display name matching the paper's vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            MxuMode::Fp16 => "fp16",
            MxuMode::Bf16 => "bf16",
            MxuMode::Tf32 => "tf32",
            MxuMode::M3xuFp32 => "m3xu-fp32",
            MxuMode::M3xuFp32c => "m3xu-fp32c",
            MxuMode::M3xuFp64 => "m3xu-fp64",
            MxuMode::M3xuFp64c => "m3xu-fp64c",
        }
    }
}

impl std::fmt::Display for MxuMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline organisation of the data-assignment stage — the two synthesis
/// variants of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineVariant {
    /// Data assignment shares the compute cycle: no extra latency, but the
    /// cycle time stretches 21% (Table III "M3XU" column).
    NonPipelined,
    /// Data assignment is its own pipeline stage: baseline cycle time, one
    /// extra cycle of latency per MMA, more area (Table III "M3XU
    /// pipelined" column).
    Pipelined,
}

impl PipelineVariant {
    /// Cycle-time ratio relative to the baseline FP16 MXU (Table III).
    pub fn cycle_time_ratio(self) -> f64 {
        match self {
            PipelineVariant::NonPipelined => 1.21,
            PipelineVariant::Pipelined => 1.00,
        }
    }

    /// Clock frequency ratio (inverse of cycle time). The paper's testbed
    /// realises this as 1170 MHz -> 960 MHz (= 1/1.21) for the
    /// non-pipelined kernels.
    pub fn frequency_ratio(self) -> f64 {
        1.0 / self.cycle_time_ratio()
    }

    /// Pipeline latency in cycles added on top of the per-step cycles.
    pub fn extra_latency_cycles(self) -> u64 {
        match self {
            PipelineVariant::NonPipelined => 0,
            PipelineVariant::Pipelined => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary_2_fp32_quarter_throughput() {
        assert_eq!(MxuMode::M3xuFp32.steps(), 2);
        assert_eq!(MxuMode::M3xuFp32.k_divisor(), 2);
        assert_eq!(MxuMode::M3xuFp32.relative_throughput(), 0.25);
    }

    #[test]
    fn corollary_3_fp32c_sixteenth_throughput() {
        assert_eq!(MxuMode::M3xuFp32c.steps(), 4);
        assert_eq!(MxuMode::M3xuFp32c.relative_throughput(), 0.0625);
    }

    #[test]
    fn tf32_is_half_rate_like_a100() {
        // Table I: TF32 156 TFLOPS vs FP16 312 TFLOPS.
        assert_eq!(MxuMode::Tf32.relative_throughput(), 0.5);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(MxuMode::Fp16.element_bytes(), 2);
        assert_eq!(MxuMode::Tf32.element_bytes(), 4); // 32-bit container
        assert_eq!(MxuMode::M3xuFp32c.element_bytes(), 8);
    }

    #[test]
    fn only_m3xu_modes_are_extensions() {
        assert!(!MxuMode::Fp16.is_m3xu_extension());
        assert!(!MxuMode::Tf32.is_m3xu_extension());
        assert!(MxuMode::M3xuFp32.is_m3xu_extension());
        assert!(MxuMode::M3xuFp64c.is_m3xu_extension());
    }

    #[test]
    fn pipeline_ratios_match_table3() {
        assert_eq!(PipelineVariant::NonPipelined.cycle_time_ratio(), 1.21);
        assert_eq!(PipelineVariant::Pipelined.cycle_time_ratio(), 1.00);
        // 1170 MHz * (1/1.21) ~= 967 MHz — the paper clocks at 960.
        let f = 1170.0 * PipelineVariant::NonPipelined.frequency_ratio();
        assert!((f - 966.9).abs() < 1.0);
    }

    #[test]
    fn complex_flags() {
        assert!(MxuMode::M3xuFp32c.is_complex());
        assert!(!MxuMode::M3xuFp32.is_complex());
    }
}
