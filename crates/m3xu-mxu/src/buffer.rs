//! Input-buffer entries of the M3XU data-assignment stage.
//!
//! Each buffer entry holds what Fig. 3(a) of the paper draws: a 1-bit sign,
//! an 8-bit exponent, and a **12-bit mantissa field with no implicit bit**
//! (the stage materialises the hidden 1 explicitly for high halves; low
//! halves carry raw fraction bits). For each dot-product unit performing
//! `s` steps over two `m`-element vectors, the stage provisions
//! `2 * m * s` such entries.
//!
//! The numeric semantics of an entry are
//! `value = (-1)^sign * mant * 2^pow` with `mant < 2^12`; `pow` encodes both
//! the operand's exponent and the half's weight (the high half of an FP32
//! sits 12 binary places above the low half), which is exactly the
//! information the post-multiplication shifters of Observation 2 consume.

use m3xu_fp::format::{FloatFormat, FP32};
use m3xu_fp::softfloat::encode;
use m3xu_fp::split::{SliceConfig, FP32_SLICES_EXACT};

/// Width of the mantissa field in a buffer entry (and of the extended
/// multiplier): the paper's key "1-bit extension" over the 11-bit
/// significands of FP16/BF16/TF32 Tensor Cores. Derived from the exact
/// 2-slice FP32 configuration (`ceil(24 / 2) = 12`) so the multiplier
/// width and the slice family cannot silently drift apart.
pub const MANT_BITS: u32 = FP32_SLICES_EXACT.max_slice_bits();

/// Non-finite payloads the decode stage flags before data reaches the
/// multiplier array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// Not-a-number (any input NaN poisons the output element).
    Nan,
    /// Infinity with the given sign.
    Inf(bool),
}

/// One input-buffer entry of the data-assignment stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferEntry {
    /// Sign bit (true = negative). The FP32C path flips this to implement
    /// the subtraction of imaginary-imaginary products.
    pub sign: bool,
    /// Mantissa field, right-aligned, **no** implicit bit: 12 bits wide in
    /// the FP16/FP32 modes, 27 bits in the FP64 extension mode (§IV-C
    /// allows wider multipliers for higher-bitwidth composition).
    pub mant: u32,
    /// Unbiased exponent of the entry's least-significant mantissa bit:
    /// `value = ±mant * 2^pow`.
    pub pow: i32,
    /// Set when the decoded operand was NaN/Inf; the arithmetic pipeline
    /// bypasses the multiplier array for such lanes.
    pub special: Option<Special>,
    /// True iff the *original operand* (not just this half) is exactly
    /// zero — needed so Inf x 0 resolves to NaN per IEEE while Inf times a
    /// finite operand whose low half happens to be zero stays Inf.
    pub operand_zero: bool,
}

impl BufferEntry {
    /// An all-zero entry (value +0).
    pub const ZERO: BufferEntry = BufferEntry {
        sign: false,
        mant: 0,
        pow: 0,
        special: None,
        operand_zero: true,
    };

    /// The represented value, exact (`mant` has <= 12 bits, so the `f64`
    /// product below is exact).
    pub fn value(&self) -> f64 {
        match self.special {
            Some(Special::Nan) => f64::NAN,
            Some(Special::Inf(neg)) => {
                if neg {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            None => {
                let mag = self.mant as f64 * pow2(self.pow);
                if self.sign {
                    -mag
                } else {
                    mag
                }
            }
        }
    }

    /// Flip the sign bit — the data-assignment stage's mechanism for the
    /// FP32C imaginary-imaginary subtraction (§IV-B).
    #[must_use]
    pub fn negated(mut self) -> Self {
        self.sign = !self.sign;
        if let Some(Special::Inf(neg)) = self.special {
            self.special = Some(Special::Inf(!neg));
        }
        self
    }
}

/// `2^k` as an exact `f64`, valid down to the subnormal range.
#[inline]
fn pow2(k: i32) -> f64 {
    if k >= -1022 {
        2.0f64.powi(k)
    } else {
        2.0f64.powi(-1000) * 2.0f64.powi(k + 1000)
    }
}

/// Decode an FP32 operand into its **high** and **low** buffer entries —
/// the Fig. 3(a) wiring. The sign and 8-bit exponent route to *both*
/// entries; the hidden 1 and top 11 explicit mantissa bits form the high
/// entry's 12-bit field; the low 12 explicit bits form the low entry's.
///
/// Returns `(high, low)`. `high.value() + low.value() == x` exactly for all
/// finite `x` (including subnormals).
pub fn decode_fp32(x: f32) -> (BufferEntry, BufferEntry) {
    let bits = x.to_bits();
    let sign = bits >> 31 == 1;
    let biased = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;

    if biased == 0xff {
        let s = if frac != 0 {
            Special::Nan
        } else {
            Special::Inf(sign)
        };
        let e = BufferEntry {
            sign,
            mant: 0,
            pow: 0,
            special: Some(s),
            operand_zero: false,
        };
        return (e, e);
    }

    // 24-bit significand M (hidden bit for normals; subnormals use e=-126).
    let (m24, e) = if biased == 0 {
        (frac, -126)
    } else {
        (frac | 0x80_0000, biased - 127)
    };
    let zero = m24 == 0;
    // value = ±M * 2^(e - 23); split M = mH*2^LOW + mL with LOW =
    // bits_below(0) of the exact 2-slice config (the classic 12).
    let low = FP32_SLICES_EXACT.bits_below(0);
    let m_hi = m24 >> low; // hidden 1 + top explicit bits
    let m_lo = m24 & ((1 << low) - 1); // bottom explicit bits
    let hi = BufferEntry {
        sign,
        mant: m_hi,
        pow: e - 23 + low as i32,
        special: None,
        operand_zero: zero,
    };
    let lo = BufferEntry {
        sign,
        mant: m_lo,
        pow: e - 23,
        special: None,
        operand_zero: zero,
    };
    (hi, lo)
}

/// Decode an FP32 operand into `cfg.slices()` buffer entries — the N-slice
/// generalisation of [`decode_fp32`]. Entry `i` carries slice `i` of the
/// 24-bit significand (slice 0 most significant), each within the
/// [`MANT_BITS`]-wide multiplier field; the entries' exact values sum to
/// `x`. Writes into `out[..cfg.slices()]` (no allocation on the packing
/// path) and returns the slice count. Non-finite operands flag every entry.
pub fn decode_fp32_slices(x: f32, cfg: SliceConfig, out: &mut [BufferEntry]) -> usize {
    let n = cfg.slices() as usize;
    assert!(cfg.precision() == 24, "FP32 slices need a 24-bit config");
    assert!(
        cfg.max_slice_bits() <= MANT_BITS,
        "slice width exceeds the {MANT_BITS}-bit multiplier field"
    );
    assert!(out.len() >= n, "output buffer too short");
    let bits = x.to_bits();
    let sign = bits >> 31 == 1;
    let biased = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;

    if biased == 0xff {
        let s = if frac != 0 {
            Special::Nan
        } else {
            Special::Inf(sign)
        };
        let e = BufferEntry {
            sign,
            mant: 0,
            pow: 0,
            special: Some(s),
            operand_zero: false,
        };
        out[..n].fill(e);
        return n;
    }
    let (m24, e) = if biased == 0 {
        (frac, -126)
    } else {
        (frac | 0x80_0000, biased - 127)
    };
    let zero = m24 == 0;
    for i in 0..cfg.slices() {
        let below = cfg.bits_below(i);
        let width = cfg.slice_bits(i);
        out[i as usize] = BufferEntry {
            sign,
            mant: (m24 >> below) & ((1u32 << width) - 1),
            pow: e - 23 + below as i32,
            special: None,
            operand_zero: zero,
        };
    }
    n
}

/// Decode an FP64 operand into `cfg.slices()` buffer entries for the
/// emulated-FP64 mode: N slices of the 53-bit significand, each within the
/// 12-bit multiplier field (unlike the §IV-C [`decode_fp64`] halves, which
/// need 27-bit multipliers). The entries' exact values sum to `x`.
pub fn decode_fp64_slices(x: f64, cfg: SliceConfig, out: &mut [BufferEntry]) -> usize {
    let n = cfg.slices() as usize;
    assert!(cfg.precision() == 53, "FP64 slices need a 53-bit config");
    assert!(
        cfg.max_slice_bits() <= MANT_BITS,
        "slice width exceeds the {MANT_BITS}-bit multiplier field"
    );
    assert!(out.len() >= n, "output buffer too short");
    if x.is_nan() || x.is_infinite() {
        let s = if x.is_nan() {
            Special::Nan
        } else {
            Special::Inf(x.is_sign_negative())
        };
        let e = BufferEntry {
            sign: x.is_sign_negative(),
            mant: 0,
            pow: 0,
            special: Some(s),
            operand_zero: false,
        };
        out[..n].fill(e);
        return n;
    }
    let bits = x.to_bits();
    let sign = bits >> 63 == 1;
    let biased = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    let (m53, e) = if biased == 0 {
        (frac, -1022)
    } else {
        (frac | (1u64 << 52), biased - 1023)
    };
    let zero = m53 == 0;
    for i in 0..cfg.slices() {
        let below = cfg.bits_below(i);
        let width = cfg.slice_bits(i);
        out[i as usize] = BufferEntry {
            sign,
            mant: ((m53 >> below) & ((1u64 << width) - 1)) as u32,
            pow: e - 52 + below as i32,
            special: None,
            operand_zero: zero,
        };
    }
    n
}

/// Decode a narrow-format operand (FP16/BF16/TF32) into a single buffer
/// entry — the default Tensor-Core mode where "the data-assignment stage
/// directly feeds each input value into the pairs of input buffers",
/// materialising the hidden 1 and zero-filling the unused bits.
///
/// `x` must be exactly representable in `fmt` (callers obtain it from
/// `SoftFloat`). Panics (debug) otherwise.
pub fn decode_narrow(x: f64, fmt: FloatFormat) -> BufferEntry {
    debug_assert!(
        fmt.precision() <= MANT_BITS,
        "{fmt} exceeds the 12-bit buffer field"
    );
    if x.is_nan() {
        return BufferEntry {
            sign: false,
            mant: 0,
            pow: 0,
            special: Some(Special::Nan),
            operand_zero: false,
        };
    }
    if x.is_infinite() {
        let neg = x.is_sign_negative();
        return BufferEntry {
            sign: neg,
            mant: 0,
            pow: 0,
            special: Some(Special::Inf(neg)),
            operand_zero: false,
        };
    }
    let bits = encode(x, fmt);
    let sign = (bits >> (fmt.exp_bits + fmt.mantissa_bits)) & 1 == 1;
    let biased = ((bits >> fmt.mantissa_bits) & fmt.exp_field_max() as u64) as i32;
    let frac = (bits & ((1u64 << fmt.mantissa_bits) - 1)) as u32;
    let (m, e) = if biased == 0 {
        (frac, fmt.min_normal_exp())
    } else {
        (frac | (1 << fmt.mantissa_bits), biased - fmt.bias())
    };
    BufferEntry {
        sign,
        mant: m,
        pow: e - fmt.mantissa_bits as i32,
        special: None,
        operand_zero: m == 0,
    }
}

/// Mantissa-field width of the FP64 extension mode (§IV-C): each FP64
/// significand (53 bits incl. hidden) splits into a 27-bit high half and a
/// 26-bit low half, so the composing multipliers must be 27 bits wide.
pub const FP64_HALF_BITS: u32 = 27;

/// Decode an FP64 operand into its high and low buffer entries for the
/// §IV-C extension mode. `high.value() + low.value() == x` exactly.
pub fn decode_fp64(x: f64) -> (BufferEntry, BufferEntry) {
    if x.is_nan() {
        let e = BufferEntry {
            sign: false,
            mant: 0,
            pow: 0,
            special: Some(Special::Nan),
            operand_zero: false,
        };
        return (e, e);
    }
    if x.is_infinite() {
        let neg = x.is_sign_negative();
        let e = BufferEntry {
            sign: neg,
            mant: 0,
            pow: 0,
            special: Some(Special::Inf(neg)),
            operand_zero: false,
        };
        return (e, e);
    }
    let bits = x.to_bits();
    let sign = bits >> 63 == 1;
    let biased = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    let (m53, e) = if biased == 0 {
        (frac, -1022)
    } else {
        (frac | (1u64 << 52), biased - 1023)
    };
    // value = ±M * 2^(e - 52); split M = mH*2^26 + mL.
    let zero = m53 == 0;
    let m_hi = (m53 >> 26) as u32; // 27 bits incl. hidden
    let m_lo = (m53 & ((1 << 26) - 1)) as u32; // 26 bits
    let hi = BufferEntry {
        sign,
        mant: m_hi,
        pow: e - 26,
        special: None,
        operand_zero: zero,
    };
    let lo = BufferEntry {
        sign,
        mant: m_lo,
        pow: e - 52,
        special: None,
        operand_zero: zero,
    };
    (hi, lo)
}

/// Decode an FP32 operand into a single TF32 buffer entry (the Tensor-Core
/// TF32 mode: FP32 in, top 11 significand bits kept, rest *discarded* — the
/// "illusion of higher-precision support" M3XU replaces).
pub fn decode_tf32_truncating(x: f32) -> BufferEntry {
    let rounded = m3xu_fp::softfloat::round_to_format(x as f64, m3xu_fp::format::TF32);
    decode_narrow(rounded, m3xu_fp::format::TF32)
}

/// Sanity check used by tests and the synth crate: storage cost of one
/// entry in bits (1 sign + 8 exponent + 12 mantissa).
pub const ENTRY_BITS: u32 = 1 + FP32.exp_bits + MANT_BITS;

#[cfg(test)]
mod tests {
    use super::*;
    use m3xu_fp::split::split_fp32;

    #[test]
    fn fp32_decode_reconstructs_exactly() {
        for &x in &[
            1.0f32,
            std::f32::consts::PI,
            -0.1,
            6.5504e4,
            f32::MIN_POSITIVE,
            1.0e-44, // subnormal
            -f32::MAX,
            0.0,
            -0.0,
        ] {
            let (hi, lo) = decode_fp32(x);
            assert_eq!(
                hi.value() + lo.value(),
                x as f64,
                "decode not exact for {x:e}"
            );
        }
    }

    #[test]
    fn fp32_decode_matches_numeric_split() {
        // The structural (bit-field) split must agree with the numeric
        // error-free split from m3xu-fp.
        for &x in &[std::f32::consts::PI, -1.5e-40, 2.5e37, 1.0 + f32::EPSILON] {
            let (hi, lo) = decode_fp32(x);
            let (nh, nl) = split_fp32(x);
            assert_eq!(hi.value(), nh as f64, "high half mismatch for {x}");
            assert_eq!(lo.value(), nl as f64, "low half mismatch for {x}");
        }
    }

    #[test]
    fn fp32_high_entry_has_hidden_one() {
        let (hi, _) = decode_fp32(1.5);
        // Normal input: bit 11 of the high mantissa field is the hidden 1.
        assert_eq!(hi.mant >> 11, 1);
        // Subnormal input: no hidden bit.
        let (hi, _) = decode_fp32(1.0e-44);
        assert_eq!(hi.mant >> 11, 0);
    }

    #[test]
    fn weight_relationship_between_halves() {
        // Observation 2: HH products sit 24 binary places above LL, cross
        // products 12 above — encoded in the pow fields.
        let (ah, al) = decode_fp32(3.75);
        let (bh, bl) = decode_fp32(-12.5);
        let hh = ah.pow + bh.pow;
        let hl = ah.pow + bl.pow;
        let lh = al.pow + bh.pow;
        let ll = al.pow + bl.pow;
        assert_eq!(hh - ll, 24);
        assert_eq!(hl - ll, 12);
        assert_eq!(lh - ll, 12);
    }

    #[test]
    fn specials_flagged() {
        let (hi, lo) = decode_fp32(f32::NAN);
        assert_eq!(hi.special, Some(Special::Nan));
        assert_eq!(lo.special, Some(Special::Nan));
        let (hi, _) = decode_fp32(f32::NEG_INFINITY);
        assert_eq!(hi.special, Some(Special::Inf(true)));
        assert!(hi.value().is_infinite() && hi.value() < 0.0);
    }

    #[test]
    fn negation_flips_sign() {
        let (hi, _) = decode_fp32(2.5);
        let n = hi.negated();
        assert_eq!(n.value(), -hi.value());
        let (inf, _) = decode_fp32(f32::INFINITY);
        assert_eq!(inf.negated().value(), f64::NEG_INFINITY);
    }

    #[test]
    fn narrow_decode_fp16() {
        use m3xu_fp::format::FP16;
        for &x in &[1.0f64, -0.5, 65504.0, 2.0f64.powi(-24), 0.333251953125] {
            let e = decode_narrow(x, FP16);
            assert_eq!(e.value(), x, "narrow decode mismatch for {x}");
            assert!(e.mant < 1 << MANT_BITS);
        }
    }

    #[test]
    fn narrow_decode_bf16_and_tf32() {
        use m3xu_fp::format::{BF16, TF32};
        let e = decode_narrow(1.0 + 2.0f64.powi(-7), BF16);
        assert_eq!(e.value(), 1.0 + 2.0f64.powi(-7));
        let e = decode_narrow(1.0 + 2.0f64.powi(-10), TF32);
        assert_eq!(e.value(), 1.0 + 2.0f64.powi(-10));
    }

    #[test]
    fn tf32_truncation_loses_low_bits() {
        let x = 1.0f32 + f32::EPSILON; // needs 24 significand bits
        let e = decode_tf32_truncating(x);
        assert_eq!(e.value(), 1.0); // low 13 bits discarded
        let (hi, lo) = decode_fp32(x);
        assert_eq!(hi.value() + lo.value(), x as f64); // M3XU keeps them
    }

    #[test]
    fn entry_width_matches_paper() {
        assert_eq!(ENTRY_BITS, 21); // 1 + 8 + 12
    }

    #[test]
    fn fp64_decode_reconstructs_exactly() {
        for &x in &[std::f64::consts::PI, -1e300, 2.5e-308, 5e-324, 0.1] {
            let (hi, lo) = decode_fp64(x);
            // The halves have <= 27 significant bits each; summing their
            // exact values in f64 is exact because they are disjoint bit
            // ranges of the original significand.
            assert_eq!(
                hi.value() + lo.value(),
                x,
                "fp64 decode not exact for {x:e}"
            );
            assert!(hi.mant < 1 << FP64_HALF_BITS);
            assert!(lo.mant < 1 << (FP64_HALF_BITS - 1));
        }
    }

    #[test]
    fn fp64_weight_relationship() {
        let (hi, lo) = decode_fp64(3.75);
        assert_eq!(hi.pow - lo.pow, 26);
    }

    #[test]
    fn fp32_slice_decode_n2_matches_classic_decode() {
        // The generalized decode at N=2 is the classic hi/lo decode,
        // field for field.
        let mut out = [BufferEntry::ZERO; 8];
        for &x in &[
            std::f32::consts::PI,
            -1.5e-40,
            2.5e37,
            1.0 + f32::EPSILON,
            0.0,
            -0.0,
            f32::NAN,
            f32::NEG_INFINITY,
        ] {
            let n = decode_fp32_slices(x, FP32_SLICES_EXACT, &mut out);
            assert_eq!(n, 2);
            let (hi, lo) = decode_fp32(x);
            assert_eq!(out[0], hi, "hi mismatch for {x}");
            assert_eq!(out[1], lo, "lo mismatch for {x}");
        }
    }

    #[test]
    fn fp32_slice_decode_reconstructs_and_matches_numeric_split() {
        let mut out = [BufferEntry::ZERO; 8];
        for n in [2u32, 3, 4] {
            let cfg = SliceConfig::for_f32(n);
            for &x in &[std::f32::consts::PI, -1.5e-40, 6.5504e4, 1.0e-44] {
                let k = decode_fp32_slices(x, cfg, &mut out);
                let numeric = cfg.split_f32(x);
                let mut sum = 0.0f64;
                for i in (0..k).rev() {
                    assert_eq!(out[i].value(), numeric.get(i), "slice {i} of {x} (n={n})");
                    assert!(out[i].mant < 1 << cfg.slice_bits(i as u32));
                    sum += out[i].value();
                }
                assert_eq!(sum, x as f64, "structural sum for {x} (n={n})");
            }
        }
    }

    #[test]
    fn fp64_slice_decode_reconstructs_exactly() {
        use m3xu_fp::split::FP64_SLICES_EMULATED;
        let mut out = [BufferEntry::ZERO; 8];
        for &x in &[std::f64::consts::PI, -1e300, 2.5e-308, 5e-324, 0.1, -0.0] {
            let k = decode_fp64_slices(x, FP64_SLICES_EMULATED, &mut out);
            assert_eq!(k, 5);
            let mut sum = 0.0f64;
            for i in (0..k).rev() {
                assert!(out[i].mant < 1 << MANT_BITS, "slice fits the multiplier");
                sum += out[i].value();
            }
            assert_eq!(sum, x, "fp64 slice sum for {x:e}");
            let numeric = FP64_SLICES_EMULATED.split_f64(x);
            for (i, entry) in out.iter().enumerate().take(k) {
                assert_eq!(entry.value(), numeric.get(i), "slice {i} of {x:e}");
            }
        }
    }

    #[test]
    fn fp64_slice_decode_specials() {
        use m3xu_fp::split::FP64_SLICES_EMULATED;
        let mut out = [BufferEntry::ZERO; 8];
        decode_fp64_slices(f64::NAN, FP64_SLICES_EMULATED, &mut out);
        assert!(out[..5].iter().all(|e| e.special == Some(Special::Nan)));
        decode_fp64_slices(f64::NEG_INFINITY, FP64_SLICES_EMULATED, &mut out);
        assert!(out[..5]
            .iter()
            .all(|e| e.special == Some(Special::Inf(true))));
    }
}
