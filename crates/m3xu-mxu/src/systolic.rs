//! A systolic-array realisation of the M3XU extension.
//!
//! §II-A: "the extension that M3XU proposes can apply to any MXU
//! architecture, regardless of whether the underlying implementation is
//! dot-product-unit-based, outer-product-unit-based, or a systolic
//! array." This module demonstrates that claim executably: an
//! output-stationary systolic array whose processing elements run the
//! *same* data-assignment schedules as the dot-product units — the lane
//! dimension of a [`crate::assign`] plan simply maps onto *time* (operand
//! beats flowing through the array) instead of parallel multipliers.
//!
//! The key structural fact making this work: in every M3XU schedule the
//! `a`-side beat stream depends only on the output row, the `b`-side
//! stream only on the output column, and the negate/target controls only
//! on the beat index — exactly the separability a systolic dataflow
//! requires. Tests verify bit-identical results against the DPU-based MMA
//! and the expected pipeline cycle counts.

use crate::assign;
use crate::buffer::BufferEntry;
use crate::dpu::{DotProductUnit, LaneOp, Target};
use crate::matrix::Matrix;
use m3xu_fp::complex::Complex;

/// Per-beat control signals (shared by every PE in the array, like the
/// step FSM broadcast of the real design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatControl {
    /// Sign-flip (the FP32C imaginary-imaginary subtraction).
    pub negate: bool,
    /// Destination accumulator.
    pub target: Target,
}

/// Separable operand streams for one MMA on the systolic array.
#[derive(Debug, Clone)]
pub struct SystolicStreams {
    /// Per-output-row `a` beat streams (`m` streams of `T` entries).
    pub a: Vec<Vec<BufferEntry>>,
    /// Per-output-column `b` beat streams (`n` streams of `T` entries).
    pub b: Vec<Vec<BufferEntry>>,
    /// Per-beat control (`T` entries).
    pub control: Vec<BeatControl>,
}

impl SystolicStreams {
    /// Number of beats `T`.
    pub fn beats(&self) -> usize {
        self.control.len()
    }
}

/// Flatten a data-assignment plan into separable streams.
///
/// `plan_a` must be a plan built against the target row (its `a` entries
/// are used); `plan_b` against the target column. Both plans must share
/// shape and control signals (they do by construction for every mode).
fn separate(plans_a: Vec<assign::StepPlan>, plans_b: Vec<assign::StepPlan>) -> SystolicStreams {
    let flatten_a = |p: &assign::StepPlan| -> Vec<BufferEntry> {
        p.iter().flat_map(|step| step.iter().map(|l| l.a)).collect()
    };
    let flatten_b = |p: &assign::StepPlan| -> Vec<BufferEntry> {
        p.iter().flat_map(|step| step.iter().map(|l| l.b)).collect()
    };
    let control: Vec<BeatControl> = plans_b[0]
        .iter()
        .flat_map(|step| {
            step.iter().map(|l| BeatControl {
                negate: l.negate,
                target: l.target,
            })
        })
        .collect();
    SystolicStreams {
        a: plans_a.iter().map(flatten_a).collect(),
        b: plans_b.iter().map(flatten_b).collect(),
        control,
    }
}

/// Build systolic streams for an FP32 MMA: `a` is `m x k`, `b` is `k x n`.
pub fn streams_fp32(a: &Matrix<f32>, b: &Matrix<f32>) -> SystolicStreams {
    let k = a.cols();
    assert_eq!(b.rows(), k);
    let zeros = vec![0.0f32; k];
    let plans_a: Vec<_> = (0..a.rows())
        .map(|i| assign::plan_fp32(a.row(i), &zeros))
        .collect();
    let bt = b.transpose();
    let plans_b: Vec<_> = (0..b.cols())
        .map(|j| assign::plan_fp32(&zeros, bt.row(j)))
        .collect();
    separate(plans_a, plans_b)
}

/// Build systolic streams for an FP32C MMA.
pub fn streams_fp32c(a: &Matrix<Complex<f32>>, b: &Matrix<Complex<f32>>) -> SystolicStreams {
    let k = a.cols();
    assert_eq!(b.rows(), k);
    let zeros = vec![Complex::<f32>::ZERO; k];
    let plans_a: Vec<_> = (0..a.rows())
        .map(|i| assign::plan_fp32c(a.row(i), &zeros))
        .collect();
    let bt = b.transpose();
    let plans_b: Vec<_> = (0..b.cols())
        .map(|j| assign::plan_fp32c(&zeros, bt.row(j)))
        .collect();
    separate(plans_a, plans_b)
}

/// Build systolic streams for a native narrow-format MMA.
pub fn streams_native(
    fmt: m3xu_fp::FloatFormat,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
) -> SystolicStreams {
    let k = a.cols();
    assert_eq!(b.rows(), k);
    let zeros = vec![0.0f64; k];
    let q = |x: f32| m3xu_fp::softfloat::round_to_format(x as f64, fmt);
    let plans_a: Vec<_> = (0..a.rows())
        .map(|i| {
            let row: Vec<f64> = a.row(i).iter().map(|&x| q(x)).collect();
            assign::plan_native(&row, &zeros, fmt)
        })
        .collect();
    let bt = b.transpose();
    let plans_b: Vec<_> = (0..b.cols())
        .map(|j| {
            let col: Vec<f64> = bt.row(j).iter().map(|&x| q(x)).collect();
            assign::plan_native(&zeros, &col, fmt)
        })
        .collect();
    separate(plans_a, plans_b)
}

/// Execution report of one systolic MMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicReport {
    /// Operand beats streamed through the array.
    pub beats: usize,
    /// Pipeline cycles: `beats + m + n - 2` (skewed injection/drain).
    pub cycles: usize,
    /// Multiplier operations executed (`beats * m * n` minus skew bubbles
    /// — this model counts active PE-beats).
    pub pe_ops: u64,
}

/// An output-stationary systolic array of `m x n` processing elements.
///
/// Each PE carries the same widened accumulators as a dot-product-unit
/// lane; the per-beat controls broadcast across the array. The model
/// executes the dataflow un-skewed (skew changes timing, not values) and
/// reports the skewed cycle count.
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    pes: Vec<DotProductUnit>,
}

impl SystolicArray {
    /// An array of `rows x cols` PEs.
    pub fn new(rows: usize, cols: usize) -> Self {
        SystolicArray {
            rows,
            cols,
            pes: (0..rows * cols).map(|_| DotProductUnit::new()).collect(),
        }
    }

    /// Execute one MMA from separable streams, seeded with `c_re`
    /// (and `c_im` for complex modes). Returns the report; read results
    /// with [`read_f32`](Self::read_f32) / [`read_c32`](Self::read_c32).
    pub fn run(&mut self, s: &SystolicStreams, c_re: Option<&Matrix<f32>>) -> SystolicReport {
        assert_eq!(s.a.len(), self.rows, "a-stream count != array rows");
        assert_eq!(s.b.len(), self.cols, "b-stream count != array cols");
        let t = s.beats();
        for stream in &s.a {
            assert_eq!(stream.len(), t, "ragged a stream");
        }
        for stream in &s.b {
            assert_eq!(stream.len(), t, "ragged b stream");
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                let pe = &mut self.pes[i * self.cols + j];
                pe.clear();
                if let Some(c) = c_re {
                    pe.seed_real(c.get(i, j) as f64);
                }
                for beat in 0..t {
                    let ctl = s.control[beat];
                    pe.execute_step(&[LaneOp {
                        a: s.a[i][beat],
                        b: s.b[j][beat],
                        negate: ctl.negate,
                        target: ctl.target,
                    }]);
                }
            }
        }
        SystolicReport {
            beats: t,
            cycles: t + self.rows + self.cols - 2,
            pe_ops: (t * self.rows * self.cols) as u64,
        }
    }

    /// Seed complex C and run (complex modes).
    pub fn run_complex(
        &mut self,
        s: &SystolicStreams,
        c: Option<&Matrix<Complex<f32>>>,
    ) -> SystolicReport {
        if let Some(c) = c {
            assert_eq!((c.rows(), c.cols()), (self.rows, self.cols));
        }
        let t = s.beats();
        for i in 0..self.rows {
            for j in 0..self.cols {
                let pe = &mut self.pes[i * self.cols + j];
                pe.clear();
                if let Some(c) = c {
                    pe.seed_real(c.get(i, j).re as f64);
                    pe.seed_imag(c.get(i, j).im as f64);
                }
                for beat in 0..t {
                    let ctl = s.control[beat];
                    pe.execute_step(&[LaneOp {
                        a: s.a[i][beat],
                        b: s.b[j][beat],
                        negate: ctl.negate,
                        target: ctl.target,
                    }]);
                }
            }
        }
        SystolicReport {
            beats: t,
            cycles: t + self.rows + self.cols - 2,
            pe_ops: (t * self.rows * self.cols) as u64,
        }
    }

    /// Drain the array as an FP32 matrix.
    pub fn read_f32(&self) -> Matrix<f32> {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            self.pes[i * self.cols + j].read_real_f32()
        })
    }

    /// Drain the array as an FP32C matrix.
    pub fn read_c32(&self) -> Matrix<Complex<f32>> {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            let pe = &self.pes[i * self.cols + j];
            Complex::new(pe.read_real_f32(), pe.read_imag_f32())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mma::{self, MmaStats};

    #[test]
    fn fp32_streams_are_separable_and_sized() {
        let a = Matrix::<f32>::random(4, 3, 1);
        let b = Matrix::<f32>::random(3, 5, 2);
        let s = streams_fp32(&a, &b);
        assert_eq!(s.a.len(), 4);
        assert_eq!(s.b.len(), 5);
        // 2 steps x 2 lanes per element x k=3 elements = 12 beats.
        assert_eq!(s.beats(), 12);
        // FP32 mode: no negation, all real.
        assert!(s
            .control
            .iter()
            .all(|c| !c.negate && c.target == Target::Real));
    }

    #[test]
    fn systolic_fp32_bit_equals_dpu_mma() {
        let a = Matrix::<f32>::random(8, 2, 3);
        let b = Matrix::<f32>::random(2, 8, 4);
        let c = Matrix::<f32>::random(8, 8, 5);
        let mut stats = MmaStats::default();
        let dpu_result = mma::mma_fp32(&a, &b, &c, &mut stats);

        let mut array = SystolicArray::new(8, 8);
        let s = streams_fp32(&a, &b);
        let report = array.run(&s, Some(&c));
        assert_eq!(array.read_f32(), dpu_result);
        assert_eq!(report.beats, 8); // 2 steps x 2 lanes x k=2
        assert_eq!(report.cycles, 8 + 8 + 8 - 2);
    }

    #[test]
    fn systolic_fp32c_bit_equals_dpu_mma() {
        let a = Matrix::random_c32(4, 2, 6);
        let b = Matrix::random_c32(2, 4, 7);
        let c = Matrix::random_c32(4, 4, 8);
        let mut stats = MmaStats::default();
        let dpu_result = mma::mma_fp32c(&a, &b, &c, &mut stats);

        let mut array = SystolicArray::new(4, 4);
        let s = streams_fp32c(&a, &b);
        let report = array.run_complex(&s, Some(&c));
        assert_eq!(array.read_c32(), dpu_result);
        // 4 steps x 4 lanes per element x k=2 elements = 32 beats.
        assert_eq!(report.beats, 32);
    }

    #[test]
    fn fp32c_control_signals_match_figure_3c() {
        let a = Matrix::random_c32(1, 1, 9);
        let b = Matrix::random_c32(1, 1, 10);
        let s = streams_fp32c(&a, &b);
        // 16 beats: steps 1-2 (real, with 2 negated imag-imag beats each),
        // steps 3-4 (imag, no negation).
        assert_eq!(s.beats(), 16);
        let real_beats = s
            .control
            .iter()
            .filter(|c| c.target == Target::Real)
            .count();
        assert_eq!(real_beats, 8);
        let negated = s.control.iter().filter(|c| c.negate).count();
        assert_eq!(negated, 4);
        assert!(s.control[8..]
            .iter()
            .all(|c| c.target == Target::Imag && !c.negate));
    }

    #[test]
    fn systolic_native_fp16_matches_dpu() {
        let a = Matrix::<f32>::random(4, 4, 11);
        let b = Matrix::<f32>::random(4, 4, 12);
        let c = Matrix::<f32>::zeros(4, 4);
        let mut stats = MmaStats::default();
        let dpu_result = mma::mma_narrow(m3xu_fp::format::FP16, &a, &b, &c, &mut stats);
        let mut array = SystolicArray::new(4, 4);
        let s = streams_native(m3xu_fp::format::FP16, &a, &b);
        let report = array.run(&s, Some(&c));
        assert_eq!(array.read_f32(), dpu_result);
        assert_eq!(report.beats, 4); // 1 step x 1 lane x k=4
    }

    #[test]
    fn beat_count_reflects_corollaries() {
        // Corollary 2 at the systolic level: FP32 takes 4x the beats of
        // FP16 for the same k (2 steps x 2 lanes per element).
        let a = Matrix::<f32>::random(2, 4, 13);
        let b = Matrix::<f32>::random(4, 2, 14);
        let fp16 = streams_native(m3xu_fp::format::FP16, &a, &b);
        let fp32 = streams_fp32(&a, &b);
        assert_eq!(fp32.beats(), 4 * fp16.beats());
        // Corollary 3: FP32C takes 16x (on complex data of the same k).
        let ac = Matrix::random_c32(2, 4, 15);
        let bc = Matrix::random_c32(4, 2, 16);
        let fp32c = streams_fp32c(&ac, &bc);
        assert_eq!(fp32c.beats(), 16 * fp16.beats());
    }

    #[test]
    fn nan_propagates_through_the_array() {
        let mut a = Matrix::<f32>::random(2, 2, 17);
        a.set(0, 0, f32::NAN);
        let b = Matrix::<f32>::random(2, 2, 18);
        let mut array = SystolicArray::new(2, 2);
        let s = streams_fp32(&a, &b);
        array.run(&s, None);
        let d = array.read_f32();
        assert!(d.get(0, 0).is_nan() && d.get(0, 1).is_nan());
        assert!(!d.get(1, 0).is_nan() && !d.get(1, 1).is_nan());
    }
}
