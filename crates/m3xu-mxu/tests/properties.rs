//! Property-style verification of the M3XU datapath.
//!
//! The paper's central correctness claim (§V-B): "the computation result of
//! M3XU is exactly the same as FP32 … computation results using M3XU
//! instructions introduce no additional error compared to conventional FP32
//! ALUs." These tests pin that down over deterministic pseudo-random
//! inputs, including subnormals, cancellation, and huge exponent spread,
//! and additionally check the packed fragment pipeline against the
//! tile-based execution path bit for bit.

use m3xu_fp::complex::Complex;
use m3xu_fp::Kulisch;
use m3xu_mxu::assign;
use m3xu_mxu::dpu::{DotProductUnit, LaneOp};
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::{self, MmaStats};
use m3xu_mxu::modes::MxuMode;
use m3xu_mxu::packed::PackedOperand;

const CASES: usize = 400;

/// Deterministic xorshift64 bit-pattern generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Finite f32 across the entire range (subnormals included).
    fn finite_f32(&mut self) -> f32 {
        loop {
            let x = f32::from_bits((self.next_u64() >> 32) as u32);
            if x.is_finite() {
                return x;
            }
        }
    }

    fn finite_f64(&mut self) -> f64 {
        loop {
            let x = f64::from_bits(self.next_u64());
            if x.is_finite() {
                return x;
            }
        }
    }

    fn vec_f32(&mut self, len: usize) -> Vec<f32> {
        (0..len).map(|_| self.finite_f32()).collect()
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Exact dot product + seed, rounded once — the M3XU accumulation contract.
fn exact_dot_f32(a: &[f32], b: &[f32], c: f32) -> f32 {
    let mut acc = Kulisch::new();
    acc.add_f64(c as f64);
    for (&x, &y) in a.iter().zip(b) {
        acc.add_product_f32(x, y);
    }
    acc.to_f32()
}

/// The 2-step FP32 plan executed on the DPU equals the exact dot
/// product rounded once, for any k and any finite data.
#[test]
fn fp32_two_step_dot_is_exact() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let k = rng.range(1, 9);
        let (a, b) = (rng.vec_f32(k), rng.vec_f32(k));
        let c = rng.finite_f32();
        let expect = exact_dot_f32(&a, &b, c);
        let mut dpu = DotProductUnit::new();
        dpu.seed_real(c as f64);
        for step in &assign::plan_fp32(&a, &b) {
            dpu.execute_step(step);
        }
        assert_eq!(
            dpu.read_real_f32().to_bits(),
            expect.to_bits(),
            "k={k} a={a:?} b={b:?}"
        );
    }
}

/// Step decomposition: executing ONLY step 1 yields HH+LL; only step 2
/// yields the cross terms; together they equal the full product
/// (Observation 1 at the datapath level).
#[test]
fn step_partition_matches_observation_1() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let (a, b) = (rng.finite_f32(), rng.finite_f32());
        let plan = assign::plan_fp32(&[a], &[b]);
        let run = |steps: &[Vec<LaneOp>]| {
            let mut dpu = DotProductUnit::new();
            for s in steps {
                dpu.execute_step(s);
            }
            dpu.read_real_f64()
        };
        let p = m3xu_fp::split::SplitProducts::of_fp32(a, b);
        // Step sums need <= 49 bits, so the f64 readout is exact.
        assert_eq!(run(&plan[..1]), p.step1(), "{a:e} * {b:e}");
        assert_eq!(run(&plan[1..]), p.step2(), "{a:e} * {b:e}");
    }
}

/// FP32C four-step CGEMM dot: both components bit-exact against the
/// exact complex dot product rounded once per component.
#[test]
fn fp32c_four_step_dot_is_exact() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let k = rng.range(1, 5);
        let a: Vec<Complex<f32>> = (0..k)
            .map(|_| Complex::new(rng.finite_f32(), rng.finite_f32()))
            .collect();
        let b: Vec<Complex<f32>> = (0..k)
            .map(|_| Complex::new(rng.finite_f32(), rng.finite_f32()))
            .collect();
        let mut re = Kulisch::new();
        let mut im = Kulisch::new();
        for (x, y) in a.iter().zip(&b) {
            re.add_product_f32(x.re, y.re);
            re.add_product_f32(-x.im, y.im);
            im.add_product_f32(x.re, y.im);
            im.add_product_f32(x.im, y.re);
        }
        let mut dpu = DotProductUnit::new();
        for step in &assign::plan_fp32c(&a, &b) {
            dpu.execute_step(step);
        }
        assert_eq!(dpu.read_real_f32().to_bits(), re.to_f32().to_bits());
        assert_eq!(dpu.read_imag_f32().to_bits(), im.to_f32().to_bits());
    }
}

/// M3XU FP32 MMA == native (expensive) FP32 MXU MMA, bit for bit —
/// the hardware-equivalence claim that justifies the cheap design.
#[test]
fn m3xu_equals_native_fp32_mxu() {
    let mut rng = Rng::new(4);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let a = Matrix::<f32>::random(8, 2, seed);
        let b = Matrix::<f32>::random(2, 8, seed ^ 0xABCD);
        let c = Matrix::<f32>::random(8, 8, seed ^ 0x1234);
        let mut s = MmaStats::default();
        let d_m3xu = mma::mma_fp32(&a, &b, &c, &mut s);
        let mut native = m3xu_mxu::NativeFp32Mxu::new();
        let d_native = native.mma_fp32(&a, &b, &c);
        assert_eq!(d_m3xu, d_native);
    }
}

/// The M3XU result never loses accuracy relative to the SIMT FMA chain:
/// measured against the f64 reference, M3XU's error is <= the FMA
/// chain's error on every element (single-MMA granularity).
#[test]
fn m3xu_at_least_as_accurate_as_simt() {
    let mut rng = Rng::new(5);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let a = Matrix::<f32>::random(8, 2, seed.wrapping_add(1));
        let b = Matrix::<f32>::random(2, 8, seed.wrapping_add(2));
        let c = Matrix::<f32>::random(8, 8, seed.wrapping_add(3));
        let mut s = MmaStats::default();
        let m3xu = mma::mma_fp32(&a, &b, &c, &mut s);
        let simt = Matrix::reference_gemm(&a, &b, &c);
        let gold = Matrix::reference_gemm_f64(&a, &b, &c);
        for i in 0..8 {
            for j in 0..8 {
                let g = gold.get(i, j) as f64;
                let em = (m3xu.get(i, j) as f64 - g).abs();
                let es = (simt.get(i, j) as f64 - g).abs();
                // One rounding (M3XU) vs k+1 roundings (SIMT): M3XU can
                // differ from gold only by the final-rounding disagreement.
                assert!(
                    em <= es + f32::EPSILON as f64 * g.abs(),
                    "element ({i},{j}): m3xu err {em:e} vs simt err {es:e}"
                );
            }
        }
    }
}

/// TF32-mode MMA equals rounding the inputs to TF32 first and then
/// doing the exact computation (truncation happens at the buffer, no
/// hidden extra error).
#[test]
fn tf32_mode_is_input_truncation() {
    let mut rng = Rng::new(6);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let a = Matrix::<f32>::random(8, 4, seed ^ 0x11);
        let b = Matrix::<f32>::random(4, 8, seed ^ 0x22);
        let c = Matrix::<f32>::random(8, 8, seed ^ 0x33);
        let mut s = MmaStats::default();
        let d = mma::mma_tf32(&a, &b, &c, &mut s);
        let q = |m: &Matrix<f32>| {
            Matrix::from_fn(m.rows(), m.cols(), |i, j| {
                m3xu_fp::softfloat::round_to_format(m.get(i, j) as f64, m3xu_fp::format::TF32)
                    as f32
            })
        };
        let d_ref = {
            let (aq, bq) = (q(&a), q(&b));
            Matrix::from_fn(8, 8, |i, j| {
                let mut acc = Kulisch::new();
                acc.add_f64(c.get(i, j) as f64);
                for k in 0..4 {
                    acc.add_product_f32(aq.get(i, k), bq.get(k, j));
                }
                acc.to_f32()
            })
        };
        assert_eq!(d, d_ref);
    }
}

/// FP64 two-step products: single-k MMA equals the IEEE f64 product
/// (correct rounding of the exact product).
#[test]
fn fp64_single_product_correctly_rounded() {
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let (a, b) = (rng.finite_f64(), rng.finite_f64());
        let p = a * b;
        if !p.is_finite() || p == 0.0 {
            continue;
        }
        let am = Matrix::from_vec(1, 1, vec![a]);
        let bm = Matrix::from_vec(1, 1, vec![b]);
        let cm = Matrix::<f64>::zeros(1, 1);
        let mut s = MmaStats::default();
        let d = mma::mma_fp64(&am, &bm, &cm, &mut s);
        assert_eq!(d.get(0, 0).to_bits(), p.to_bits(), "{a:e} * {b:e}");
    }
}

/// NaN anywhere in the inputs poisons exactly the affected outputs.
#[test]
fn nan_containment() {
    let mut rng = Rng::new(8);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let row = rng.range(0, 8);
        let col = rng.range(0, 2);
        let mut a = Matrix::<f32>::random(8, 2, seed);
        a.set(row, col, f32::NAN);
        let b = Matrix::<f32>::random(2, 8, seed ^ 0x77);
        let c = Matrix::<f32>::zeros(8, 8);
        let mut s = MmaStats::default();
        let d = mma::mma_fp32(&a, &b, &c, &mut s);
        for i in 0..8 {
            for j in 0..8 {
                if i == row {
                    assert!(d.get(i, j).is_nan(), "({i},{j}) should be NaN");
                } else {
                    assert!(!d.get(i, j).is_nan(), "({i},{j}) should be finite");
                }
            }
        }
    }
}

/// The packed fragment pipeline is bit-identical to the tile-based MMA
/// path on fully random finite data, every mode, including clipped edges.
#[test]
fn packed_pipeline_equals_tile_path() {
    let mut rng = Rng::new(9);
    for _ in 0..48 {
        // Random fragment-sized problem with raw bit-pattern data (the
        // Matrix::random generator only emits [0, 1) values; here we want
        // subnormals and wild exponents too).
        let k = rng.range(1, 3);
        let a = Matrix::from_fn(8, k, |_, _| rng.finite_f32());
        let b = Matrix::from_fn(k, 8, |_, _| rng.finite_f32());
        let c = Matrix::from_fn(8, 8, |_, _| rng.finite_f32());
        // Tile path needs the exact fragment shape: pad k to 2.
        let at = a.tile(0, 0, 8, 2);
        let bt = b.tile(0, 0, 2, 8);
        let mut s = MmaStats::default();
        let want = mma::mma_fp32(&at, &bt, &c, &mut s);
        let pa = PackedOperand::pack_rows_f32(&a, MxuMode::M3xuFp32);
        let pb = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32);
        let mut acc: Vec<f32> = c.as_slice().to_vec();
        let mut dpu = DotProductUnit::new();
        dpu.mma_f32_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut acc);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(
                    acc[i * 8 + j].to_bits(),
                    want.get(i, j).to_bits(),
                    "packed/tile divergence at ({i},{j}), k={k}"
                );
            }
        }
    }
}
