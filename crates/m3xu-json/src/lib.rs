//! # m3xu-json — a minimal, dependency-free JSON emitter
//!
//! The benchmark harnesses and report generators dump their artefacts as
//! JSON. This workspace builds in hermetic environments with no registry
//! access, so instead of `serde`/`serde_json` we carry this ~200-line
//! emitter: a [`Json`] tree, a [`ToJson`] trait, an [`impl_to_json!`]
//! macro for structs, and a pretty printer whose output matches the usual
//! two-space-indent `to_string_pretty` style.
//!
//! Only *emission* is supported — nothing in the workspace parses JSON.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value tree. Object keys keep insertion order (we emit them in
/// struct-field order, like `serde` derive would).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// A float. Non-finite values emit as `null` (JSON has no NaN/Inf).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialise with two-space indentation and a trailing newline-free
    /// body (callers add their own newline when writing files).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // f64 Display is the shortest round-trip form; `1.0`
                    // prints as "1", which is still a valid JSON number.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree — the workspace's `Serialize`.
pub trait ToJson {
    /// Build the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
int_to_json!(i8, i16, i32, i64, isize);

macro_rules! uint_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
uint_to_json!(u8, u16, u32, u64, usize);

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Derive-style [`ToJson`] for a struct: emits an object with one entry
/// per listed field, in order.
///
/// ```
/// use m3xu_json::{impl_to_json, Json, ToJson};
/// struct Point { x: f64, y: f64 }
/// impl_to_json!(Point { x, y });
/// let j = Point { x: 1.0, y: 2.0 }.to_json();
/// assert_eq!(j, Json::Obj(vec![
///     ("x".into(), Json::Float(1.0)),
///     ("y".into(), Json::Float(2.0)),
/// ]));
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string_pretty(), "null");
        assert_eq!(true.to_json().to_string_pretty(), "true");
        assert_eq!(42u64.to_json().to_string_pretty(), "42");
        assert_eq!((-7i32).to_json().to_string_pretty(), "-7");
        assert_eq!(2.5f64.to_json().to_string_pretty(), "2.5");
        assert_eq!(f64::NAN.to_json().to_string_pretty(), "null");
        assert_eq!(
            u64::MAX.to_json().to_string_pretty(),
            "18446744073709551615"
        );
    }

    #[test]
    fn string_escaping() {
        let s = "a\"b\\c\nd\te\u{1}";
        assert_eq!(s.to_json().to_string_pretty(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn pretty_layout() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("fft".into())),
            (
                "sizes".into(),
                Json::Arr(vec![Json::Int(512), Json::Int(4096)]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let expect =
            "{\n  \"name\": \"fft\",\n  \"sizes\": [\n    512,\n    4096\n  ],\n  \"empty\": []\n}";
        assert_eq!(j.to_string_pretty(), expect);
    }

    #[test]
    fn containers_and_tuples() {
        let v: Vec<(usize, f64)> = vec![(256, 1.5), (512, 3.0)];
        assert_eq!(
            v.to_json(),
            Json::Arr(vec![
                Json::Arr(vec![Json::UInt(256), Json::Float(1.5)]),
                Json::Arr(vec![Json::UInt(512), Json::Float(3.0)]),
            ])
        );
        let t = (1u32, 8u32, 23u32);
        assert_eq!(
            t.to_json(),
            Json::Arr(vec![Json::UInt(1), Json::UInt(8), Json::UInt(23)])
        );
        assert_eq!(None::<f64>.to_json(), Json::Null);
    }

    #[test]
    fn struct_macro() {
        struct Row {
            kernel: &'static str,
            speedup: f64,
            sizes: Vec<usize>,
        }
        impl_to_json!(Row {
            kernel,
            speedup,
            sizes
        });
        let r = Row {
            kernel: "sgemm",
            speedup: 3.6,
            sizes: vec![256, 512],
        };
        let txt = r.to_json().to_string_pretty();
        assert!(txt.contains("\"kernel\": \"sgemm\""));
        assert!(txt.contains("\"speedup\": 3.6"));
    }
}
