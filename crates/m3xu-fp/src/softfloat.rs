//! Bit-exact software emulation of narrow floating-point formats.
//!
//! Values of every narrow format (FP16, BF16, TF32, FP32) are carried in
//! `f64`, which represents each of them exactly. Correct rounding is
//! guaranteed by Figueroa's double-rounding criterion: evaluating a `p`-bit
//! operation in a format with at least `2p + 2` significand bits and rounding
//! back is identical to a single correctly-rounded operation. `f64`'s 53 bits
//! satisfy this for every format up to and including FP32 (`2*24 + 2 = 50`),
//! which is asserted at runtime by [`SoftFloat::new`].
//!
//! Encode/decode to raw bit patterns is also provided so structural
//! components (the M3XU data-assignment stage) can be tested against the
//! numeric path.

use crate::format::FloatFormat;

/// Decompose a finite, nonzero `f64` into `(sign, exponent, significand)`
/// with the significand normalised to exactly 53 bits (bit 52 set), i.e.
/// `|x| = m * 2^(e - 52)` and `2^52 <= m < 2^53`.
///
/// Subnormal `f64` inputs are normalised (their leading bit is found and the
/// exponent adjusted), so callers never see an unnormalised significand.
#[inline]
pub fn decompose_f64(x: f64) -> (bool, i32, u64) {
    debug_assert!(x.is_finite() && x != 0.0);
    let bits = x.to_bits();
    let sign = bits >> 63 == 1;
    let biased = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if biased == 0 {
        // Subnormal: value = frac * 2^(-1022 - 52); normalise.
        let shift = frac.leading_zeros() as i32 - 11; // bits above bit 52
        let m = frac << shift;
        let e = -1022 - shift;
        (sign, e, m)
    } else {
        (sign, biased - 1023, frac | (1u64 << 52))
    }
}

/// Round a finite `f64` to the nearest value representable in `fmt`
/// (round-to-nearest, ties-to-even), returning the result as an `f64`
/// (which represents it exactly). Overflow produces the appropriately
/// signed infinity; underflow produces a (possibly signed) zero. NaN and
/// infinity pass through.
pub fn round_to_format(x: f64, fmt: FloatFormat) -> f64 {
    if fmt == crate::format::FP64 || x.is_nan() || x.is_infinite() || x == 0.0 {
        return x;
    }
    let (sign, e, m) = decompose_f64(x);
    let p = fmt.precision() as i32;
    let min_e = fmt.min_normal_exp();
    // Effective number of significand bits we may keep. Below the normal
    // range the format loses one bit per power of two (gradual underflow).
    let keep = if e < min_e { p - (min_e - e) } else { p };

    if keep <= 0 {
        // |x| is at or below half of the smallest subnormal.
        let min_sub = fmt.min_positive_subnormal();
        let ax = x.abs();
        let half = min_sub * 0.5;
        let mag = if ax > half {
            min_sub
        } else {
            // Ties round to even (zero); below-half rounds to zero.
            0.0
        };
        return if sign { -mag } else { mag };
    }

    let drop = 53 - keep; // bits to discard from the 53-bit significand
    let rounded = if drop <= 0 {
        m // keep >= 53: the f64 value is already exact in `fmt`'s grid
    } else {
        let kept = m >> drop;
        let round_bit = (m >> (drop - 1)) & 1;
        let sticky = m & ((1u64 << (drop - 1)) - 1) != 0;
        let increment = round_bit == 1 && (sticky || kept & 1 == 1);
        kept + increment as u64
    };
    // Reconstruct: value = rounded * 2^(e - 52 + drop). `rounded` may have
    // carried out to 2^keep; the exact f64 product handles that naturally.
    let mag = exact_scale(rounded, e - 52 + drop.max(0));
    let result = if sign { -mag } else { mag };
    if result.abs() > fmt.max_finite() {
        if sign {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        }
    } else {
        result
    }
}

/// `m * 2^k`, exactly, for `m <= 2^53` and results within `f64` range.
#[inline]
fn exact_scale(m: u64, k: i32) -> f64 {
    // Split the scaling to keep each power-of-two factor in f64 range even
    // for deeply subnormal results.
    if k >= -1022 {
        m as f64 * 2.0f64.powi(k)
    } else {
        (m as f64 * 2.0f64.powi(-1022)) * 2.0f64.powi(k + 1022)
    }
}

/// True iff `x` is exactly representable in `fmt` (including ±0, ±inf, NaN).
pub fn is_representable(x: f64, fmt: FloatFormat) -> bool {
    if x.is_nan() || x.is_infinite() || x == 0.0 {
        return true;
    }
    round_to_format(x, fmt) == x
}

/// Encode a value (assumed the output of [`round_to_format`] for `fmt`) into
/// its raw bit pattern, right-aligned in a `u64`.
pub fn encode(x: f64, fmt: FloatFormat) -> u64 {
    let sign_bit = (x.is_sign_negative() as u64) << (fmt.exp_bits + fmt.mantissa_bits);
    if x.is_nan() {
        // Canonical quiet NaN: all-ones exponent, MSB of mantissa set.
        return sign_bit
            | ((fmt.exp_field_max() as u64) << fmt.mantissa_bits)
            | (1u64 << (fmt.mantissa_bits - 1));
    }
    if x.is_infinite() {
        return sign_bit | ((fmt.exp_field_max() as u64) << fmt.mantissa_bits);
    }
    if x == 0.0 {
        return sign_bit;
    }
    debug_assert!(is_representable(x, fmt), "{x} not representable in {fmt}");
    let (_, e, m) = decompose_f64(x);
    let min_e = fmt.min_normal_exp();
    if e < min_e {
        // Subnormal in `fmt`: fraction = |x| / 2^min_subnormal_exp.
        let shift = 52 - fmt.mantissa_bits as i32 + (min_e - e);
        let frac = m >> shift;
        sign_bit | frac
    } else {
        let biased = (e + fmt.bias()) as u64;
        let frac = (m >> (53 - fmt.precision())) & ((1u64 << fmt.mantissa_bits) - 1);
        sign_bit | (biased << fmt.mantissa_bits) | frac
    }
}

/// Decode a raw bit pattern of `fmt` into the value it represents.
pub fn decode(bits: u64, fmt: FloatFormat) -> f64 {
    let sign = (bits >> (fmt.exp_bits + fmt.mantissa_bits)) & 1 == 1;
    let biased = ((bits >> fmt.mantissa_bits) & fmt.exp_field_max() as u64) as i32;
    let frac = bits & ((1u64 << fmt.mantissa_bits) - 1);
    let mag = if biased as u32 == fmt.exp_field_max() {
        if frac == 0 {
            f64::INFINITY
        } else {
            return f64::NAN;
        }
    } else if biased == 0 {
        exact_scale(frac, fmt.min_subnormal_exp())
    } else {
        let m = frac | (1u64 << fmt.mantissa_bits);
        exact_scale(m, biased - fmt.bias() - fmt.mantissa_bits as i32)
    };
    if sign {
        -mag
    } else {
        mag
    }
}

/// A value tagged with its format, supporting correctly-rounded arithmetic.
///
/// ```
/// use m3xu_fp::format::FP16;
/// use m3xu_fp::softfloat::SoftFloat;
/// let a = SoftFloat::new(1.0 / 3.0, FP16);
/// assert_eq!(a.value(), 0.333251953125); // nearest FP16 to 1/3
/// let b = a.mul(SoftFloat::new(3.0, FP16));
/// // 3 * 1365/4096 = 4095/4096, exactly halfway in FP16: ties to even.
/// assert_eq!(b.value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftFloat {
    value: f64,
    fmt: FloatFormat,
}

// `mul`/`add`/`sub` intentionally mirror the hardware op names; they are
// not operator-trait impls because each takes/returns format-tagged values
// with explicit re-rounding.
#[allow(clippy::should_implement_trait)]
impl SoftFloat {
    /// Round `x` into `fmt`. Panics (debug) if `fmt` cannot be exactly
    /// emulated through `f64` (only FP64 and wider fail the criterion; FP64
    /// itself is handled natively).
    pub fn new(x: f64, fmt: FloatFormat) -> Self {
        debug_assert!(
            fmt.f64_evaluation_is_exact() || fmt == crate::format::FP64,
            "format {fmt} cannot be emulated bit-exactly via f64"
        );
        SoftFloat {
            value: round_to_format(x, fmt),
            fmt,
        }
    }

    /// The represented value (exact).
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The format tag.
    #[inline]
    pub fn format(&self) -> FloatFormat {
        self.fmt
    }

    /// Raw bit pattern.
    pub fn bits(&self) -> u64 {
        encode(self.value, self.fmt)
    }

    /// Construct from a raw bit pattern.
    pub fn from_bits(bits: u64, fmt: FloatFormat) -> Self {
        SoftFloat {
            value: decode(bits, fmt),
            fmt,
        }
    }

    /// Correctly-rounded product (both operands must share a format).
    pub fn mul(self, rhs: Self) -> Self {
        assert_eq!(self.fmt, rhs.fmt);
        SoftFloat::new(self.value * rhs.value, self.fmt)
    }

    /// Correctly-rounded sum.
    pub fn add(self, rhs: Self) -> Self {
        assert_eq!(self.fmt, rhs.fmt);
        SoftFloat::new(self.value + rhs.value, self.fmt)
    }

    /// Correctly-rounded difference.
    pub fn sub(self, rhs: Self) -> Self {
        assert_eq!(self.fmt, rhs.fmt);
        SoftFloat::new(self.value - rhs.value, self.fmt)
    }

    /// Correctly-rounded fused multiply-add `self * b + c` (single rounding).
    pub fn fma(self, b: Self, c: Self) -> Self {
        assert_eq!(self.fmt, b.fmt);
        assert_eq!(self.fmt, c.fmt);
        SoftFloat::new(self.value.mul_add(b.value, c.value), self.fmt)
    }

    /// Convert to a different format (rounding as needed).
    pub fn convert(self, fmt: FloatFormat) -> Self {
        SoftFloat::new(self.value, fmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{BF16, FP16, FP32, TF32};

    #[test]
    fn round_fp32_matches_hardware_cast() {
        for &x in &[
            1.0f64,
            0.1,
            std::f64::consts::PI,
            1e-40,
            1e38,
            3.4028236e38, // just above f32::MAX
            -1e-45,
            2.0f64.powi(-149),
            2.0f64.powi(-150),
            1.5 * 2.0f64.powi(-150),
        ] {
            let expect = x as f32;
            let got = round_to_format(x, FP32);
            assert_eq!(
                got, expect as f64,
                "x={x:e}: got {got:e}, hardware {expect:e}"
            );
        }
    }

    #[test]
    fn round_ties_to_even() {
        // 1 + 2^-24 is exactly halfway between 1.0 and 1 + 2^-23 in FP32:
        // ties go to the even mantissa (1.0).
        let x = 1.0 + 2.0f64.powi(-24);
        assert_eq!(round_to_format(x, FP32), 1.0);
        // 1 + 3*2^-24 is halfway between 1+2^-23 and 1+2^-22: even is 1+2^-22.
        let x = 1.0 + 3.0 * 2.0f64.powi(-24);
        assert_eq!(round_to_format(x, FP32), 1.0 + 2.0f64.powi(-22));
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(round_to_format(1e39, FP32), f64::INFINITY);
        assert_eq!(round_to_format(-1e39, FP32), f64::NEG_INFINITY);
        assert_eq!(round_to_format(65520.0, FP16), f64::INFINITY); // > 65504 + 8
        assert_eq!(round_to_format(65519.0, FP16), 65504.0);
    }

    #[test]
    fn underflow_to_zero_and_subnormals() {
        let min_sub = FP32.min_positive_subnormal();
        assert_eq!(round_to_format(min_sub, FP32), min_sub);
        assert_eq!(round_to_format(min_sub * 0.5, FP32), 0.0); // tie -> even (0)
        assert_eq!(round_to_format(min_sub * 0.51, FP32), min_sub);
        assert_eq!(round_to_format(min_sub * 0.49, FP32), 0.0);
        let z = round_to_format(-(min_sub * 0.25), FP32);
        assert_eq!(z, 0.0);
        assert!(z.is_sign_negative());
    }

    #[test]
    fn encode_decode_roundtrip_fp32() {
        let mut bits_seen = std::collections::HashSet::new();
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -2.5,
            f32::MIN_POSITIVE,
            1.0e-44,
            f32::MAX,
            0.1,
        ] {
            let enc = encode(x as f64, FP32);
            assert_eq!(enc as u32, x.to_bits(), "encode mismatch for {x}");
            assert_eq!(decode(enc, FP32), x as f64);
            bits_seen.insert(enc);
        }
        assert_eq!(encode(f64::INFINITY, FP32) as u32, f32::INFINITY.to_bits());
        let nan_bits = encode(f64::NAN, FP32) as u32;
        assert!(f32::from_bits(nan_bits).is_nan());
    }

    #[test]
    fn encode_decode_roundtrip_fp16_exhaustive() {
        // All 65536 FP16 bit patterns round-trip.
        for bits in 0u64..(1 << 16) {
            let v = decode(bits, FP16);
            if v.is_nan() {
                assert!(decode(encode(v, FP16), FP16).is_nan());
                continue;
            }
            let re = encode(v, FP16);
            // -0.0 and 0.0 both decode to 0.0 with sign tracked.
            assert_eq!(
                re, bits,
                "bits {bits:#06x} decoded to {v} re-encoded {re:#06x}"
            );
        }
    }

    #[test]
    fn tf32_truncates_fp32_mantissa() {
        let x = 1.0 + 2.0f64.powi(-20); // needs 21 mantissa bits
        let t = SoftFloat::new(x, TF32);
        assert_eq!(t.value(), 1.0); // rounded away (10-bit mantissa)
        let y = 1.0 + 2.0f64.powi(-10);
        assert_eq!(SoftFloat::new(y, TF32).value(), y);
    }

    #[test]
    fn bf16_mul_is_correctly_rounded() {
        let a = SoftFloat::new(1.0 + 2.0f64.powi(-7), BF16);
        let b = SoftFloat::new(1.0 + 2.0f64.powi(-7), BF16);
        // (1+2^-7)^2 = 1 + 2^-6 + 2^-14; RNE to 8 bits of precision:
        // halfway bit is 2^-14 relative to... compute directly.
        let exact = a.value() * b.value();
        assert_eq!(a.mul(b).value(), round_to_format(exact, BF16));
    }

    #[test]
    fn fma_single_rounding() {
        // Choose values where fused and unfused differ in FP32:
        // a*b = 1 - 2^-46 exactly, which the separate multiply rounds to
        // 1.0 (the true value is within half an FP32 ulp of 1.0).
        let a = SoftFloat::new(1.0 + 2.0f64.powi(-23), FP32);
        let b = SoftFloat::new(1.0 - 2.0f64.powi(-23), FP32);
        let c = SoftFloat::new(-1.0, FP32);
        let fused = a.fma(b, c).value();
        let unfused = a.mul(b).add(c).value();
        assert_eq!(fused, -(2.0f64.powi(-46)));
        assert_eq!(unfused, 0.0);
        // And it matches the hardware f32 FMA.
        let hw = (a.value() as f32).mul_add(b.value() as f32, c.value() as f32);
        assert_eq!(fused, hw as f64);
    }

    #[test]
    fn representability() {
        assert!(is_representable(1.0, FP16));
        assert!(!is_representable(1.0 + 2.0f64.powi(-11), FP16));
        assert!(is_representable(f64::NAN, FP16));
        assert!(is_representable(f64::INFINITY, BF16));
    }

    #[test]
    fn convert_chain() {
        let x = SoftFloat::new(std::f64::consts::E, FP32);
        let h = x.convert(FP16);
        assert_eq!(h.value(), round_to_format(std::f64::consts::E, FP16));
        // FP16 -> FP32 is exact.
        assert_eq!(h.convert(FP32).value(), h.value());
    }
}
