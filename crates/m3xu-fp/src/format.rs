//! Parametric IEEE-754-style floating-point format descriptors.
//!
//! Every format an MXU touches — FP16, BF16, TF32, FP32, FP64, and the
//! internal 12-bit-mantissa buffer format of the M3XU data-assignment stage —
//! is described by the same `(sign, exponent, mantissa)` triple the paper's
//! Table I uses. All bit-exact conversions and arithmetic in this crate are
//! generic over [`FloatFormat`].

/// An IEEE-754-style binary floating-point format.
///
/// The format is described by its explicit field widths: 1 sign bit,
/// `exp_bits` exponent bits (biased by `2^(exp_bits-1) - 1`), and
/// `mantissa_bits` *explicit* fraction bits (the leading 1 of normal numbers
/// is implicit, exactly as in IEEE 754).
///
/// ```
/// use m3xu_fp::format::FP32;
/// assert_eq!(FP32.exp_bits, 8);
/// assert_eq!(FP32.mantissa_bits, 23);
/// assert_eq!(FP32.precision(), 24); // incl. the hidden bit
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    /// A short human-readable name ("fp16", "tf32", ...).
    pub name: &'static str,
    /// Number of exponent bits.
    pub exp_bits: u32,
    /// Number of explicit mantissa (fraction) bits.
    pub mantissa_bits: u32,
}

/// IEEE 754 binary16 (half precision): (1, 5, 10).
pub const FP16: FloatFormat = FloatFormat {
    name: "fp16",
    exp_bits: 5,
    mantissa_bits: 10,
};
/// bfloat16: (1, 8, 7).
pub const BF16: FloatFormat = FloatFormat {
    name: "bf16",
    exp_bits: 8,
    mantissa_bits: 7,
};
/// NVIDIA TF32: (1, 8, 10) — FP32 range, FP16 precision.
pub const TF32: FloatFormat = FloatFormat {
    name: "tf32",
    exp_bits: 8,
    mantissa_bits: 10,
};
/// IEEE 754 binary32 (single precision): (1, 8, 23).
pub const FP32: FloatFormat = FloatFormat {
    name: "fp32",
    exp_bits: 8,
    mantissa_bits: 23,
};
/// IEEE 754 binary64 (double precision): (1, 11, 52).
pub const FP64: FloatFormat = FloatFormat {
    name: "fp64",
    exp_bits: 11,
    mantissa_bits: 52,
};
/// FP8 E4M3 (OCP 8-bit format): (1, 4, 3) — the "8-bit multipliers"
/// end of the §IV-C design space.
pub const FP8_E4M3: FloatFormat = FloatFormat {
    name: "fp8-e4m3",
    exp_bits: 4,
    mantissa_bits: 3,
};
/// FP8 E5M2: (1, 5, 2).
pub const FP8_E5M2: FloatFormat = FloatFormat {
    name: "fp8-e5m2",
    exp_bits: 5,
    mantissa_bits: 2,
};

/// The internal buffer-entry format of the M3XU data-assignment stage:
/// 1-bit sign, 8-bit exponent, 12-bit mantissa *without* an implicit leading
/// bit (the stage explicitly materialises the hidden 1 for high halves; low
/// halves carry raw fraction bits). See `m3xu-mxu::buffer`.
///
/// Expressed here as a `FloatFormat` only for width bookkeeping; its
/// semantics differ (no hidden bit) and live in the MXU crate.
pub const M3XU_BUFFER: FloatFormat = FloatFormat {
    name: "m3xu-buf",
    exp_bits: 8,
    mantissa_bits: 12,
};

impl FloatFormat {
    /// Significand precision in bits, including the implicit leading bit.
    #[inline]
    pub const fn precision(&self) -> u32 {
        self.mantissa_bits + 1
    }

    /// Exponent bias: `2^(exp_bits - 1) - 1`.
    #[inline]
    pub const fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Maximum (unbiased) exponent of a finite number: `bias`.
    #[inline]
    pub const fn max_exp(&self) -> i32 {
        self.bias()
    }

    /// Minimum (unbiased) exponent of a *normal* number: `1 - bias`.
    #[inline]
    pub const fn min_normal_exp(&self) -> i32 {
        1 - self.bias()
    }

    /// Unbiased exponent of the least subnormal: `min_normal_exp - mantissa_bits`.
    #[inline]
    pub const fn min_subnormal_exp(&self) -> i32 {
        self.min_normal_exp() - self.mantissa_bits as i32
    }

    /// Total storage width in bits (1 sign + exponent + mantissa).
    #[inline]
    pub const fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.mantissa_bits
    }

    /// Storage width rounded up to the container the memory system moves:
    /// 8, 16, 32, or 64 bits. TF32 occupies a 32-bit container on real
    /// hardware even though only 19 bits are significant.
    #[inline]
    pub const fn storage_bits(&self) -> u32 {
        let raw = self.total_bits();
        if raw <= 8 {
            8
        } else if raw <= 16 {
            16
        } else if raw <= 32 {
            32
        } else {
            64
        }
    }

    /// Storage width in bytes (see [`storage_bits`](Self::storage_bits)).
    #[inline]
    pub const fn storage_bytes(&self) -> u32 {
        self.storage_bits() / 8
    }

    /// All-ones exponent field value (Inf/NaN encodings).
    #[inline]
    pub const fn exp_field_max(&self) -> u32 {
        (1 << self.exp_bits) - 1
    }

    /// Largest finite value of the format: `(2 - 2^-m) * 2^max_exp`.
    pub fn max_finite(&self) -> f64 {
        let frac = 2.0 - 2.0f64.powi(-(self.mantissa_bits as i32));
        frac * 2.0f64.powi(self.max_exp())
    }

    /// Smallest positive normal value: `2^min_normal_exp`.
    pub fn min_positive_normal(&self) -> f64 {
        exact_pow2(self.min_normal_exp())
    }

    /// Smallest positive subnormal value: `2^min_subnormal_exp`.
    pub fn min_positive_subnormal(&self) -> f64 {
        exact_pow2(self.min_subnormal_exp())
    }

    /// Machine epsilon: distance from 1.0 to the next larger representable.
    pub fn epsilon(&self) -> f64 {
        2.0f64.powi(-(self.mantissa_bits as i32))
    }

    /// True iff exact products of two values of this format, and sums used
    /// by a double-rounding-safe evaluation in `f64`, are correctly rounded
    /// when computed in `f64` and rounded back (Figueroa's criterion:
    /// `2 * precision + 2 <= 53`).
    #[inline]
    pub const fn f64_evaluation_is_exact(&self) -> bool {
        2 * self.precision() + 2 <= 53
    }
}

/// `2^k` as an exact `f64`, valid down to the deepest subnormal
/// (`2^-1074`). A bare `2.0f64.powi(k)` computes `1 / 2^-k` and silently
/// underflows to zero for `k < -1022`.
pub fn exact_pow2(k: i32) -> f64 {
    if k >= -1022 {
        2.0f64.powi(k)
    } else {
        2.0f64.powi(-1000) * 2.0f64.powi(k + 1000)
    }
}

impl std::fmt::Display for FloatFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (1,{},{})",
            self.name, self.exp_bits, self.mantissa_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_matches_ieee() {
        assert_eq!(FP32.bias(), 127);
        assert_eq!(FP32.max_exp(), 127);
        assert_eq!(FP32.min_normal_exp(), -126);
        assert_eq!(FP32.min_subnormal_exp(), -149);
        assert_eq!(FP32.total_bits(), 32);
        assert_eq!(FP32.storage_bytes(), 4);
        assert_eq!(FP32.min_positive_normal(), f32::MIN_POSITIVE as f64);
        assert_eq!(FP32.epsilon(), f32::EPSILON as f64);
    }

    #[test]
    fn fp16_matches_ieee() {
        assert_eq!(FP16.bias(), 15);
        assert_eq!(FP16.max_exp(), 15);
        assert_eq!(FP16.min_normal_exp(), -14);
        assert_eq!(FP16.min_subnormal_exp(), -24);
        assert_eq!(FP16.total_bits(), 16);
        assert_eq!(FP16.min_positive_subnormal(), 2.0f64.powi(-24));
    }

    #[test]
    fn bf16_has_fp32_range() {
        assert_eq!(BF16.bias(), FP32.bias());
        assert_eq!(BF16.max_exp(), FP32.max_exp());
        assert_eq!(BF16.total_bits(), 16);
        assert_eq!(BF16.precision(), 8);
    }

    #[test]
    fn tf32_is_fp32_range_fp16_precision() {
        assert_eq!(TF32.exp_bits, FP32.exp_bits);
        assert_eq!(TF32.mantissa_bits, FP16.mantissa_bits);
        // TF32 travels in a 32-bit container.
        assert_eq!(TF32.storage_bytes(), 4);
    }

    #[test]
    fn f64_evaluation_criterion() {
        assert!(FP16.f64_evaluation_is_exact());
        assert!(BF16.f64_evaluation_is_exact());
        assert!(TF32.f64_evaluation_is_exact());
        assert!(FP32.f64_evaluation_is_exact()); // 2*24+2 = 50 <= 53
        assert!(!FP64.f64_evaluation_is_exact());
    }

    #[test]
    fn fp8_formats() {
        assert_eq!(FP8_E4M3.total_bits(), 8);
        assert_eq!(FP8_E5M2.total_bits(), 8);
        assert_eq!(FP8_E4M3.storage_bytes(), 1);
        assert!(FP8_E4M3.f64_evaluation_is_exact());
        // E4M3 max finite in the pure-IEEE interpretation: (2-2^-3)*2^7.
        assert_eq!(FP8_E4M3.max_finite(), 240.0);
        assert_eq!(FP8_E5M2.max_finite(), 57344.0);
    }

    #[test]
    fn max_finite_values() {
        assert_eq!(FP32.max_finite(), f32::MAX as f64);
        assert_eq!(FP16.max_finite(), 65504.0);
    }

    #[test]
    fn exact_pow2_reaches_the_deepest_subnormal() {
        assert_eq!(exact_pow2(-1074), f64::from_bits(1));
        assert_eq!(exact_pow2(-1022), f64::MIN_POSITIVE);
        assert_eq!(exact_pow2(0), 1.0);
        assert_eq!(exact_pow2(100), 2.0f64.powi(100));
        // The naive powi underflows where exact_pow2 does not. black_box
        // keeps the optimizer from const-folding the expression at full
        // precision (which would yield 5e-324 instead of the runtime 0.0).
        assert_eq!(
            std::hint::black_box(2.0f64).powi(std::hint::black_box(-1074)),
            0.0
        );
        assert_eq!(FP64.min_positive_subnormal(), 5e-324);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(format!("{}", FP32), "fp32 (1,8,23)");
        assert_eq!(format!("{}", TF32), "tf32 (1,8,10)");
    }
}
