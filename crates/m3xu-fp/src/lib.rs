//! # m3xu-fp — floating-point substrate for the M3XU reproduction
//!
//! This crate provides everything the M3XU hardware model and its baselines
//! need to reason about floating-point values *bit-exactly*:
//!
//! * [`format`](mod@format) — parametric IEEE-754 format descriptors (FP16, BF16, TF32,
//!   FP32, FP64) matching the paper's `(sign, exponent, mantissa)` notation;
//! * [`softfloat`] — correctly-rounded emulation of all narrow formats,
//!   with encode/decode to raw bit patterns;
//! * [`split`] — the error-free FP32 → (high, low) 12-bit-significand split
//!   at the heart of the paper's Observation 1, and the four partial
//!   products of Eq. 3;
//! * [`decompose`] — the *software* precision-recovery schemes the paper
//!   compares against (3xTF32 CUTLASS emulation, 3xBF16 EEHC);
//! * [`complex`] — FP32C/FP64C complex numbers with the interleaved layout
//!   the M3XU data-assignment stage assumes;
//! * [`fixed`] — an exact Kulisch-style wide accumulator used as the gold
//!   reference for the MXU's widened accumulation registers;
//! * [`residue`] — Mersenne-prime (`2^61 - 1`) residues of exact dyadic
//!   values, the compression the ABFT checksum layer runs in;
//! * [`ulp`] — ULP/relative-error metrics for the numerics validation
//!   harnesses.
//!
//! ## Example: why M3XU can be bit-exact
//!
//! ```
//! use m3xu_fp::split::SplitProducts;
//!
//! let (a, b) = (1.9999999_f32, 0.3333333_f32);
//! // The four 12-bit partial products reconstruct the exact product:
//! let p = SplitProducts::of_fp32(a, b);
//! assert_eq!(p.total(), a as f64 * b as f64);
//! // ... which is precisely what a two-step M3XU MMA accumulates.
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod complex;
pub mod decompose;
pub mod fixed;
pub mod format;
pub mod residue;
pub mod rounding;
pub mod softfloat;
pub mod split;
pub mod ulp;

pub use complex::{Complex, Conjugate, C32, C64};
pub use fixed::{Kulisch, RoundFlags};
pub use format::FloatFormat;
pub use rounding::{Interval, Rounding};
pub use softfloat::SoftFloat;
