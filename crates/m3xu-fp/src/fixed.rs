//! Exact wide fixed-point accumulation (Kulisch-style).
//!
//! The M3XU dot-product unit accumulates partial products in widened
//! two's-complement registers ("we also need 48-bit registers for the
//! accumulation results", §IV-A). This module provides the *gold* version of
//! that idea: a fixed-point window wide enough to accumulate any number of
//! `f64` values (and exact products of `f64` pairs) with **no rounding at
//! all**, rounding once at read-out. It serves two roles:
//!
//! 1. the reference against which the MXU's narrower structural
//!    accumulators are verified, and
//! 2. the `ExactDotProduct` accumulation semantics of the functional
//!    simulator (a dot product rounded exactly once).
//!
//! Read-out rounds **directly from the limbs** to the target format: going
//! through `f64` first would double-round (innocuous double rounding only
//! holds for atomic operations on format-width operands, not for arbitrary
//! accumulated reals).

use crate::format::FloatFormat;

/// Bit index of weight `2^EXP_FLOOR` in the accumulator. Products of two
/// subnormal `f64`s reach `2^-2148`, so the floor sits below that.
const EXP_FLOOR: i32 = -2200;
/// Number of 64-bit limbs. Covers up to `2^(N*64 + EXP_FLOOR)`; products of
/// two `f64` reach `2^2047`, leaving >100 guard bits for carries.
const LIMBS: usize = 68;

/// IEEE 754 exception flags raised by one rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundFlags {
    /// The rounded result differs from the exact value.
    pub inexact: bool,
    /// The exact value's magnitude exceeded the format's largest finite.
    pub overflow: bool,
    /// The result is tiny (subnormal or flushed to zero) and inexact.
    pub underflow: bool,
}

/// An exact fixed-point accumulator wide enough for arbitrary sums of `f64`
/// values and exact `f64 * f64` products.
///
/// ```
/// use m3xu_fp::fixed::Kulisch;
/// let mut acc = Kulisch::new();
/// acc.add_f64(1e300);
/// acc.add_f64(1.0);
/// acc.add_f64(-1e300);
/// assert_eq!(acc.to_f64(), 1.0); // no catastrophic cancellation
/// ```
#[derive(Clone)]
pub struct Kulisch {
    /// Two's-complement little-endian limbs; bit 0 of limb 0 has weight
    /// `2^EXP_FLOOR`.
    limbs: Box<[u64; LIMBS]>,
}

impl Default for Kulisch {
    fn default() -> Self {
        Self::new()
    }
}

impl Kulisch {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Kulisch {
            limbs: Box::new([0u64; LIMBS]),
        }
    }

    /// Reset to zero without reallocating.
    pub fn clear(&mut self) {
        self.limbs.fill(0);
    }

    /// True iff the accumulated value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&w| w == 0)
    }

    /// Add the contribution `±m * 2^exp` exactly, where `m < 2^63`.
    ///
    /// This is the raw datapath the MXU model uses: integer partial
    /// products from the multiplier array arrive here with their weight
    /// exponent (the shifter settings of the paper's Observation 2),
    /// with no intermediate floating-point representation.
    pub fn add_scaled(&mut self, m: u64, exp: i32, negative: bool) {
        if m == 0 {
            return;
        }
        let pos = exp - EXP_FLOOR;
        assert!(pos >= 0, "exponent {exp} below accumulator floor");
        let limb = (pos / 64) as usize;
        let shift = (pos % 64) as u32;
        assert!(limb + 2 < LIMBS, "exponent {exp} above accumulator ceiling");
        let lo = m << shift;
        // `m < 2^63`, so after a nonzero right shift `hi < 2^63` and adding
        // the carry below cannot wrap.
        let hi = if shift == 0 { 0 } else { m >> (64 - shift) };
        if !negative {
            let (w, c1) = self.limbs[limb].overflowing_add(lo);
            self.limbs[limb] = w;
            let (w, c2) = self.limbs[limb + 1].overflowing_add(hi + c1 as u64);
            self.limbs[limb + 1] = w;
            let mut carry = c2;
            let mut i = limb + 2;
            while carry && i < LIMBS {
                let (w, c) = self.limbs[i].overflowing_add(1);
                self.limbs[i] = w;
                carry = c;
                i += 1;
            }
            // Carry off the top limb is ordinary two's-complement wrap
            // (e.g. a negative accumulator crossing back through zero); the
            // >100 guard bits above the largest representable contribution
            // make true overflow unreachable.
        } else {
            let (w, b1) = self.limbs[limb].overflowing_sub(lo);
            self.limbs[limb] = w;
            let (w, b2) = self.limbs[limb + 1].overflowing_sub(hi + b1 as u64);
            self.limbs[limb + 1] = w;
            let mut borrow = b2;
            let mut i = limb + 2;
            while borrow && i < LIMBS {
                let (w, b) = self.limbs[i].overflowing_sub(1);
                self.limbs[i] = w;
                borrow = b;
                i += 1;
            }
            // Borrow off the top is fine: that is two's-complement negative.
        }
    }

    /// Add a finite `f64` exactly. Panics on NaN/infinity (the structural
    /// simulator handles specials before reaching the accumulator).
    pub fn add_f64(&mut self, x: f64) {
        assert!(
            x.is_finite(),
            "Kulisch accumulates finite values only, got {x}"
        );
        if x == 0.0 {
            return;
        }
        let (sign, e, m) = crate::softfloat::decompose_f64(x);
        self.add_scaled(m, e - 52, sign);
    }

    /// Subtract a finite `f64` exactly.
    pub fn sub_f64(&mut self, x: f64) {
        self.add_f64(-x);
    }

    /// Add the **exact** product `a * b` of two finite `f64`s (two-product
    /// FMA trick: `hi = a*b` rounded, `lo = fma(a, b, -hi)` is the exact
    /// residual, so `hi + lo == a*b` exactly).
    pub fn add_product_f64(&mut self, a: f64, b: f64) {
        let hi = a * b;
        assert!(hi.is_finite(), "product overflow in exact accumulation");
        if hi == 0.0 {
            // Underflow to zero can still leave a nonzero exact product that
            // f64 cannot express; for the f32-derived inputs used by the MXU
            // (products >= 2^-298) this cannot happen.
            return;
        }
        let lo = a.mul_add(b, -hi);
        self.add_f64(hi);
        if lo != 0.0 {
            self.add_f64(lo);
        }
    }

    /// Add the exact product of two `f32`s (always exact in `f64`:
    /// 24 + 24 = 48 bits <= 53).
    pub fn add_product_f32(&mut self, a: f32, b: f32) {
        self.add_f64(a as f64 * b as f64);
    }

    /// Sign of the accumulated value: -1, 0, or +1.
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.limbs[LIMBS - 1] >> 63 == 1 {
            -1
        } else {
            1
        }
    }

    /// Residue of the exact accumulated value in `F_p`, `p = 2^61 - 1`
    /// (see [`crate::residue`]). The register holds, in two's complement,
    /// `V = (U - s · 2^(64·LIMBS)) · 2^EXP_FLOOR` where `U` is the limbs
    /// read as an unsigned little-endian integer and `s` the sign bit;
    /// both terms are exact dyadic values, so the residue is their
    /// homomorphic image — any corruption of the wide register changes it.
    pub fn residue_m61(&self) -> u64 {
        use crate::residue::{add_m61, mul_m61, pow2_m61, reduce_u64, sub_m61};
        let mut r = 0u64;
        for (i, &w) in self.limbs.iter().enumerate() {
            r = add_m61(
                r,
                mul_m61(reduce_u64(w), pow2_m61(64 * i as i64 + EXP_FLOOR as i64)),
            );
        }
        if self.limbs[LIMBS - 1] >> 63 == 1 {
            r = sub_m61(r, pow2_m61(64 * LIMBS as i64 + EXP_FLOOR as i64));
        }
        r
    }

    /// Round to `fmt` and report the IEEE 754 exception flags the rounding
    /// raised (inexact, overflow, underflow). The MXU model surfaces these
    /// so FP32 applications see the exception behaviour they expect —
    /// §II-C2's complaint about lossy MXUs is precisely that they cannot.
    pub fn round_to_flagged(&self, fmt: FloatFormat) -> (f64, RoundFlags) {
        let v = self.round_to(fmt);
        let mut flags = RoundFlags::default();
        if self.is_zero() {
            return (v, flags);
        }
        // Exactness: the rounded value, re-subtracted, must leave zero.
        let mut probe = self.clone();
        if v.is_finite() {
            probe.sub_f64(v);
            flags.inexact = !probe.is_zero();
        } else {
            flags.inexact = true;
            flags.overflow = true;
        }
        if v.is_finite() && v != 0.0 && v.abs() < fmt.min_positive_normal() {
            // Subnormal result: underflow (tininess after rounding).
            flags.underflow = flags.inexact;
        }
        if v == 0.0 {
            // Nonzero accumulator rounding to zero: total underflow.
            flags.underflow = true;
            flags.inexact = true;
        }
        (v, flags)
    }

    /// Round the accumulated value to the nearest value of `fmt`
    /// (round-to-nearest, ties-to-even), with gradual underflow and overflow
    /// to infinity. One single rounding, straight from the limbs.
    pub fn round_to(&self, fmt: FloatFormat) -> f64 {
        let negative = self.signum() < 0;
        let mag: [u64; LIMBS] = if negative {
            let mut out = [0u64; LIMBS];
            let mut carry = true;
            for (o, &w) in out.iter_mut().zip(self.limbs.iter()) {
                let (v, c) = (!w).overflowing_add(carry as u64);
                *o = v;
                carry = c;
            }
            out
        } else {
            *self.limbs
        };
        let mut top = None;
        for i in (0..LIMBS).rev() {
            if mag[i] != 0 {
                top = Some(i * 64 + 63 - mag[i].leading_zeros() as usize);
                break;
            }
        }
        let Some(h) = top else {
            return if negative { -0.0 } else { 0.0 };
        };
        let bit = |b: isize| -> u64 {
            if b < 0 {
                0
            } else {
                (mag[(b / 64) as usize] >> (b % 64)) & 1
            }
        };
        let any_below = |b: isize| -> bool {
            // Any set bit at position < b?
            if b <= 0 {
                return false;
            }
            let full = (b / 64) as usize;
            if mag.iter().take(full).any(|&w| w != 0) {
                return true;
            }
            let rem = (b % 64) as u32;
            rem > 0 && mag[full] & ((1u64 << rem) - 1) != 0
        };

        let e = h as i32 + EXP_FLOOR; // exponent of the leading bit
        let p = fmt.precision() as i32;
        let min_e = fmt.min_normal_exp();
        let keep = if e < min_e { p - (min_e - e) } else { p };

        let apply_sign = |m: f64| if negative { -m } else { m };

        if keep <= 0 {
            // At or below half of the least subnormal.
            let min_sub_e = fmt.min_subnormal_exp();
            let mag_f = if e < min_sub_e - 1 {
                0.0
            } else {
                // e == min_sub_e - 1 (keep == 0): exactly half or more.
                debug_assert_eq!(e, min_sub_e - 1);
                if any_below(h as isize) {
                    fmt.min_positive_subnormal() // above half: round away
                } else {
                    0.0 // exact tie: even (zero)
                }
            };
            return apply_sign(mag_f);
        }

        // Gather `keep` bits starting at the leading bit.
        let mut frac: u64 = 0;
        for k in 0..keep as isize {
            frac = (frac << 1) | bit(h as isize - k);
        }
        let round = bit(h as isize - keep as isize);
        let sticky = any_below(h as isize - keep as isize);
        let mut weight = h as i32 - keep + 1 + EXP_FLOOR; // exponent of frac's LSB
        if round == 1 && (sticky || frac & 1 == 1) {
            frac += 1;
            if frac == 1u64 << keep {
                frac >>= 1;
                weight += 1;
            }
        }
        // value = frac * 2^weight, exactly representable in f64 for every
        // format with <= 53 bits of precision.
        let mag_f = if weight >= -1022 {
            frac as f64 * 2.0f64.powi(weight)
        } else {
            (frac as f64 * 2.0f64.powi(-1000)) * 2.0f64.powi(weight + 1000)
        };
        if mag_f > fmt.max_finite() {
            apply_sign(f64::INFINITY)
        } else {
            apply_sign(mag_f)
        }
    }

    /// Round the accumulated value to the nearest `f64` (ties to even).
    pub fn to_f64(&self) -> f64 {
        self.round_to(crate::format::FP64)
    }

    /// Round the accumulated value to the nearest `f32` (single rounding,
    /// **not** via `f64`).
    pub fn to_f32(&self) -> f32 {
        self.round_to(crate::format::FP32) as f32
    }
}

impl std::fmt::Debug for Kulisch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kulisch({:?})", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FP16, FP32};

    #[test]
    fn empty_is_zero() {
        let acc = Kulisch::new();
        assert!(acc.is_zero());
        assert_eq!(acc.to_f64(), 0.0);
        assert_eq!(acc.signum(), 0);
    }

    #[test]
    fn single_value_roundtrip() {
        for &x in &[1.0f64, -2.5, 1e308, -1e-308, 5e-324, std::f64::consts::PI] {
            let mut acc = Kulisch::new();
            acc.add_f64(x);
            assert_eq!(acc.to_f64(), x, "roundtrip failed for {x:e}");
        }
    }

    #[test]
    fn exact_cancellation() {
        let mut acc = Kulisch::new();
        acc.add_f64(1e300);
        acc.add_f64(1.0);
        acc.add_f64(-1e300);
        assert_eq!(acc.to_f64(), 1.0);
        acc.add_f64(-1.0);
        assert!(acc.is_zero());
    }

    #[test]
    fn negative_then_positive() {
        let mut acc = Kulisch::new();
        acc.add_f64(-3.0);
        assert_eq!(acc.signum(), -1);
        assert_eq!(acc.to_f64(), -3.0);
        acc.add_f64(5.0);
        assert_eq!(acc.signum(), 1);
        assert_eq!(acc.to_f64(), 2.0);
    }

    #[test]
    fn exact_f64_products() {
        let mut acc = Kulisch::new();
        let a = 1.0 + 2.0f64.powi(-40);
        let b = 1.0 + 2.0f64.powi(-41);
        acc.add_product_f64(a, b);
        // Exact product = 1 + 2^-40 + 2^-41 + 2^-81; subtract the parts.
        acc.sub_f64(1.0);
        acc.sub_f64(2.0f64.powi(-40));
        acc.sub_f64(2.0f64.powi(-41));
        assert_eq!(acc.to_f64(), 2.0f64.powi(-81));
    }

    #[test]
    fn f32_product_accumulation_matches_exact_f64_sum() {
        let a: Vec<f32> = (0..100)
            .map(|i| ((i * 37 % 17) as f32 - 8.0) * 0.125)
            .collect();
        let b: Vec<f32> = (0..100)
            .map(|i| ((i * 53 % 29) as f32 - 14.0) * 0.25)
            .collect();
        let mut acc = Kulisch::new();
        let mut exact = 0.0f64; // small dyadic rationals: the f64 sum is exact
        for i in 0..100 {
            acc.add_product_f32(a[i], b[i]);
            exact += a[i] as f64 * b[i] as f64;
        }
        assert_eq!(acc.to_f64(), exact);
    }

    #[test]
    fn rounding_ties_to_even_f64() {
        let mut acc = Kulisch::new();
        acc.add_f64(1.0);
        acc.add_f64(2.0f64.powi(-53)); // exactly halfway to the next f64
        assert_eq!(acc.to_f64(), 1.0); // tie -> even
        acc.add_f64(2.0f64.powi(-60)); // nudge above half
        assert_eq!(acc.to_f64(), 1.0 + 2.0f64.powi(-52));
    }

    #[test]
    fn single_rounding_to_f32_beats_double_rounding() {
        // 1 + 2^-24 + 2^-80: a via-f64 path would round to 1 + 2^-24 (a
        // clean f32 tie, then to 1.0); the correct single rounding is up.
        let mut acc = Kulisch::new();
        acc.add_f64(1.0);
        acc.add_f64(2.0f64.powi(-24));
        acc.add_f64(2.0f64.powi(-80));
        assert_eq!(acc.to_f32(), 1.0 + f32::EPSILON);
        // A clean tie goes to even.
        let mut acc = Kulisch::new();
        acc.add_f64(1.0);
        acc.add_f64(2.0f64.powi(-24));
        assert_eq!(acc.to_f32(), 1.0);
    }

    #[test]
    fn subnormal_results_f64() {
        let mut acc = Kulisch::new();
        let tiny = 5e-324; // least subnormal
        acc.add_f64(tiny);
        acc.add_f64(tiny);
        assert_eq!(acc.to_f64(), 1e-323);
        let mut acc = Kulisch::new();
        acc.add_f64(f64::MIN_POSITIVE);
        acc.sub_f64(5e-324);
        assert_eq!(acc.to_f64(), f64::MIN_POSITIVE - 5e-324);
    }

    #[test]
    fn subnormal_underflow_boundary_f32() {
        let min_sub = 2.0f64.powi(-149);
        let mut acc = Kulisch::new();
        acc.add_f64(min_sub * 0.5);
        assert_eq!(acc.to_f32(), 0.0); // exact half: tie to even (zero)
        acc.add_f64(2.0f64.powi(-200));
        assert_eq!(acc.to_f32(), min_sub as f32); // just above half
        let mut acc = Kulisch::new();
        acc.sub_f64(min_sub * 0.75);
        assert_eq!(acc.to_f32(), -(min_sub as f32));
    }

    #[test]
    fn overflow_to_infinity_in_narrow_format() {
        let mut acc = Kulisch::new();
        acc.add_f64(70000.0);
        assert_eq!(acc.round_to(FP16), f64::INFINITY);
        acc.clear();
        acc.sub_f64(1e39);
        assert_eq!(acc.round_to(FP32), f64::NEG_INFINITY);
    }

    #[test]
    fn carry_across_limbs() {
        let mut acc = Kulisch::new();
        // Fill a limb boundary region with all-ones, then add 1 ulp.
        acc.add_f64(2.0f64.powi(100));
        acc.sub_f64(2.0f64.powi(-100));
        // = 2^100 - 2^-100: a long borrow chain across many limbs.
        let expect = 2.0f64.powi(100); // rounds back (2^-100 far below ulp)
        assert_eq!(acc.to_f64(), expect);
        acc.add_f64(2.0f64.powi(-100));
        assert_eq!(acc.to_f64(), 2.0f64.powi(100));
    }

    #[test]
    fn alternating_huge_sum_stays_exact() {
        let mut acc = Kulisch::new();
        for i in 0..1000 {
            let v = if i % 2 == 0 { 1e200 } else { -1e200 };
            acc.add_f64(v);
            acc.add_f64(i as f64);
        }
        // The 1e200s cancel exactly; sum of 0..999 = 499500.
        assert_eq!(acc.to_f64(), 499500.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Kulisch::new().add_f64(f64::NAN);
    }

    #[test]
    fn residue_matches_f32_homomorphism() {
        use crate::residue::{add_m61, residue_f32};
        // The register's residue must equal the residue of the dyadic sum
        // it holds, for positive, negative, tiny, and cancelled values.
        for vals in [
            vec![1.5f32],
            vec![-1.5],
            vec![0.0],
            vec![3.25, -0.125, 1e10],
            vec![f32::MIN_POSITIVE, f32::from_bits(1)],
            vec![1e30, -1e30],
        ] {
            let mut acc = Kulisch::new();
            let mut want = 0u64;
            for &v in &vals {
                acc.add_f64(v as f64);
                want = add_m61(want, residue_f32(v).unwrap());
            }
            assert_eq!(acc.residue_m61(), want, "{vals:?}");
        }
    }

    #[test]
    fn residue_sees_exact_products() {
        use crate::residue::{add_m61, mul_m61, residue_f32};
        let mut acc = Kulisch::new();
        let (a, b) = (1.9999999f32, -0.33333334f32);
        acc.add_product_f32(a, b);
        acc.add_product_f32(b, b);
        let want = add_m61(
            mul_m61(residue_f32(a).unwrap(), residue_f32(b).unwrap()),
            mul_m61(residue_f32(b).unwrap(), residue_f32(b).unwrap()),
        );
        assert_eq!(acc.residue_m61(), want);
    }

    #[test]
    fn flags_exact_result() {
        let mut acc = Kulisch::new();
        acc.add_f64(1.5);
        let (v, f) = acc.round_to_flagged(FP32);
        assert_eq!(v, 1.5);
        assert_eq!(f, RoundFlags::default());
    }

    #[test]
    fn flags_inexact() {
        let mut acc = Kulisch::new();
        acc.add_f64(1.0);
        acc.add_f64(2.0f64.powi(-30)); // below FP32 ulp(1)
        let (v, f) = acc.round_to_flagged(FP32);
        assert_eq!(v, 1.0);
        assert!(f.inexact && !f.overflow && !f.underflow);
    }

    #[test]
    fn flags_overflow() {
        let mut acc = Kulisch::new();
        acc.add_f64(1e39);
        let (v, f) = acc.round_to_flagged(FP32);
        assert!(v.is_infinite());
        assert!(f.overflow && f.inexact);
    }

    #[test]
    fn flags_underflow() {
        let mut acc = Kulisch::new();
        acc.add_f64(2.0f64.powi(-140)); // subnormal in FP32, exact
        let (v, f) = acc.round_to_flagged(FP32);
        assert_eq!(v, 2.0f64.powi(-140));
        assert!(!f.underflow, "exact subnormal raises no underflow");
        acc.add_f64(2.0f64.powi(-180)); // now inexact and tiny
        let (_, f) = acc.round_to_flagged(FP32);
        assert!(f.underflow && f.inexact);
        // Total underflow to zero.
        let mut acc = Kulisch::new();
        acc.add_f64(2.0f64.powi(-200));
        let (v, f) = acc.round_to_flagged(FP32);
        assert_eq!(v, 0.0);
        assert!(f.underflow && f.inexact);
    }
}
