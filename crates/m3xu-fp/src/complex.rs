//! Complex number support (FP32C / FP64C).
//!
//! The paper's FP32C type is a pair of IEEE-754 FP32 values stored
//! interleaved (real, imaginary) — "the conventional interleaved
//! representation of complex numbers where a pair of consecutive elements
//! store a complex number's real and imaginary parts" (§IV-B). [`Complex`]
//! mirrors that layout exactly (`#[repr(C)]`), so a matrix of `Complex<f32>`
//! reinterprets bit-for-bit as the FP32 matrix of twice the width that the
//! M3XU data-assignment stage consumes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with interleaved (re, im) storage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// FP32C: single-precision complex, the paper's second target type.
pub type C32 = Complex<f32>;
/// FP64C: double-precision complex (used as the error reference).
pub type C64 = Complex<f64>;

impl<T> Complex<T> {
    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

macro_rules! impl_complex_float {
    ($t:ty) => {
        impl Complex<$t> {
            /// Additive identity.
            pub const ZERO: Self = Complex { re: 0.0, im: 0.0 };
            /// Multiplicative identity.
            pub const ONE: Self = Complex { re: 1.0, im: 0.0 };
            /// The imaginary unit.
            pub const I: Self = Complex { re: 0.0, im: 1.0 };

            /// Complex conjugate.
            #[inline]
            pub fn conj(self) -> Self {
                Complex {
                    re: self.re,
                    im: -self.im,
                }
            }

            /// Squared magnitude `re² + im²`.
            #[inline]
            pub fn norm_sqr(self) -> $t {
                self.re * self.re + self.im * self.im
            }

            /// Magnitude (Euclidean norm).
            #[inline]
            pub fn abs(self) -> $t {
                self.re.hypot(self.im)
            }

            /// Argument (phase angle) in radians.
            #[inline]
            pub fn arg(self) -> $t {
                self.im.atan2(self.re)
            }

            /// `e^{iθ}` — unit complex from an angle. The workhorse of
            /// twiddle-factor generation for the FFT substrate.
            #[inline]
            pub fn cis(theta: $t) -> Self {
                let (s, c) = theta.sin_cos();
                Complex { re: c, im: s }
            }

            /// Multiplicative inverse.
            #[inline]
            pub fn recip(self) -> Self {
                let d = self.norm_sqr();
                Complex {
                    re: self.re / d,
                    im: -self.im / d,
                }
            }

            /// Scale by a real factor.
            #[inline]
            pub fn scale(self, k: $t) -> Self {
                Complex {
                    re: self.re * k,
                    im: self.im * k,
                }
            }

            /// True if either component is NaN.
            #[inline]
            pub fn is_nan(self) -> bool {
                self.re.is_nan() || self.im.is_nan()
            }

            /// True if both components are finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.re.is_finite() && self.im.is_finite()
            }
        }

        impl Add for Complex<$t> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Complex {
                    re: self.re + rhs.re,
                    im: self.im + rhs.im,
                }
            }
        }

        impl Sub for Complex<$t> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Complex {
                    re: self.re - rhs.re,
                    im: self.im - rhs.im,
                }
            }
        }

        impl Mul for Complex<$t> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                // The textbook 4-multiply form — the same dataflow the M3XU
                // FP32C mode implements in hardware (Eq. 9 of the paper).
                Complex {
                    re: self.re * rhs.re - self.im * rhs.im,
                    im: self.re * rhs.im + self.im * rhs.re,
                }
            }
        }

        impl Div for Complex<$t> {
            type Output = Self;
            #[inline]
            #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1
            fn div(self, rhs: Self) -> Self {
                self * rhs.recip()
            }
        }

        impl Neg for Complex<$t> {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Complex {
                    re: -self.re,
                    im: -self.im,
                }
            }
        }

        impl AddAssign for Complex<$t> {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for Complex<$t> {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl MulAssign for Complex<$t> {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl Sum for Complex<$t> {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }

        impl From<$t> for Complex<$t> {
            #[inline]
            fn from(re: $t) -> Self {
                Complex { re, im: 0.0 }
            }
        }
    };
}

impl_complex_float!(f32);
impl_complex_float!(f64);

/// Element-level conjugation — the primitive behind `op(X) = X^H` operand
/// iteration in the packing layer.
///
/// For real scalars conjugation is the identity (so `X^H == X^T`); for
/// complex values it flips the sign bit of the imaginary part. The complex
/// implementation is a pure IEEE-754 negation: it preserves NaN payloads
/// and turns `-0.0` into `+0.0` (and vice versa) without renormalizing,
/// which is what the golden-bit conjugation tests pin.
pub trait Conjugate: Copy {
    /// The conjugated value (`self` for real types).
    fn conjugate(self) -> Self;
}

impl Conjugate for f32 {
    #[inline]
    fn conjugate(self) -> Self {
        self
    }
}

impl Conjugate for f64 {
    #[inline]
    fn conjugate(self) -> Self {
        self
    }
}

impl Conjugate for Complex<f32> {
    #[inline]
    fn conjugate(self) -> Self {
        self.conj()
    }
}

impl Conjugate for Complex<f64> {
    #[inline]
    fn conjugate(self) -> Self {
        self.conj()
    }
}

impl From<Complex<f32>> for Complex<f64> {
    #[inline]
    fn from(c: Complex<f32>) -> Self {
        Complex {
            re: c.re as f64,
            im: c.im as f64,
        }
    }
}

impl Complex<f64> {
    /// Round both components to FP32, producing an FP32C value.
    #[inline]
    pub fn to_c32(self) -> Complex<f32> {
        Complex {
            re: self.re as f32,
            im: self.im as f32,
        }
    }
}

impl<T: fmt::Display + PartialOrd + Default> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= T::default() {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Reinterpret a slice of complex values as the interleaved real slice the
/// M3XU hardware sees ("an 8×4 FP32 matrix will contain 4×4 FP32C numbers").
#[inline]
pub fn as_interleaved(data: &[Complex<f32>]) -> &[f32] {
    // SAFETY: Complex<f32> is #[repr(C)] with exactly two f32 fields, so the
    // memory layout is precisely [re, im, re, im, ...] with no padding.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<f32>(), data.len() * 2) }
}

/// Reinterpret an interleaved real slice as complex values (inverse of
/// [`as_interleaved`]). Panics if the length is odd.
#[inline]
pub fn from_interleaved(data: &[f32]) -> &[Complex<f32>] {
    assert!(
        data.len().is_multiple_of(2),
        "interleaved complex slice must have even length"
    );
    // SAFETY: same layout argument as `as_interleaved`; alignment of
    // Complex<f32> equals that of f32.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<Complex<f32>>(), data.len() / 2) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C32::new(3.0, -4.0);
        assert_eq!(z + C32::ZERO, z);
        assert_eq!(z * C32::ONE, z);
        assert_eq!(z * C32::I, C32::new(4.0, 3.0));
        assert_eq!(-z, C32::new(-3.0, 4.0));
        assert_eq!(z - z, C32::ZERO);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C32::new(3.0, -4.0);
        assert_eq!(z.conj(), C32::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert_eq!((z * z.conj()).im, 0.0);
    }

    #[test]
    fn multiplication_matches_eq9() {
        // (a+bi)(c+di) = (ac - bd) + (ad + bc)i
        let x = C32::new(1.5, 2.5);
        let y = C32::new(-0.5, 3.0);
        let p = x * y;
        assert_eq!(p.re, 1.5 * -0.5 - 2.5 * 3.0);
        assert_eq!(p.im, 1.5 * 3.0 + 2.5 * -0.5);
    }

    #[test]
    fn division_roundtrip() {
        let x = C64::new(1.0, 2.0);
        let y = C64::new(3.0, -1.0);
        let q = (x * y) / y;
        assert!((q.re - x.re).abs() < 1e-12);
        assert!((q.im - x.im).abs() < 1e-12);
    }

    #[test]
    fn cis_unit_circle() {
        let w = C64::cis(std::f64::consts::FRAC_PI_2);
        assert!((w.re).abs() < 1e-15);
        assert!((w.im - 1.0).abs() < 1e-15);
        assert!((C64::cis(0.7).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn interleaved_layout() {
        let zs = vec![C32::new(1.0, 2.0), C32::new(3.0, 4.0)];
        let flat = as_interleaved(&zs);
        assert_eq!(flat, &[1.0, 2.0, 3.0, 4.0]);
        let back = from_interleaved(flat);
        assert_eq!(back, &zs[..]);
        assert_eq!(std::mem::size_of::<C32>(), 8);
        assert_eq!(std::mem::align_of::<C32>(), 4);
    }

    #[test]
    fn sum_over_iterator() {
        let s: C32 = (0..4).map(|i| C32::new(i as f32, -(i as f32))).sum();
        assert_eq!(s, C32::new(6.0, -6.0));
    }

    #[test]
    fn display() {
        assert_eq!(C32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C32::new(1.0, -2.0).to_string(), "1-2i");
    }
}
