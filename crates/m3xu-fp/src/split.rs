//! Error-free precision splitting — the mathematical core of M3XU.
//!
//! Observation 1 of the paper rests on splitting each FP32 significand into
//! a *high* part (the hidden 1 plus the top 11 explicit mantissa bits) and a
//! *low* part (the bottom 12 explicit mantissa bits), so that
//! `x = x_hi + x_lo` holds **exactly** and each part fits a 12-bit
//! multiplier. This module provides those splits as pure value-level
//! operations; `m3xu-mxu::buffer` holds the matching structural
//! (bit-field-level) form used by the data-assignment stage, and the two are
//! cross-checked by tests.

/// Number of explicit mantissa bits assigned to the *low* half of an FP32
/// split (the high half receives the hidden bit + the remaining 11).
pub const FP32_LOW_BITS: u32 = 12;

/// Split an FP32 value into `(hi, lo)` with `hi + lo == x` **exactly**.
///
/// `hi` carries the hidden bit plus the 11 most-significant explicit
/// mantissa bits (a 12-bit significand); `lo` carries the 12
/// least-significant mantissa bits. Both halves are exactly representable
/// as FP32 (`lo` may be subnormal). NaN and infinity split as `(x, 0)`.
///
/// ```
/// use m3xu_fp::split::split_fp32;
/// let x = std::f32::consts::PI;
/// let (hi, lo) = split_fp32(x);
/// assert_eq!(hi + lo, x);           // error-free
/// assert!(lo.abs() < hi.abs() * 2.0_f32.powi(-11));
/// ```
#[inline]
pub fn split_fp32(x: f32) -> (f32, f32) {
    if !x.is_finite() {
        return (x, 0.0);
    }
    // Clear the low 12 mantissa bits: the remaining value is the "high"
    // 12-bit-significand number the data-assignment stage materialises.
    let hi = f32::from_bits(x.to_bits() & !((1u32 << FP32_LOW_BITS) - 1));
    // The difference has at most 12 significant bits and is representable
    // exactly, so this subtraction is exact.
    let lo = x - hi;
    (hi, lo)
}

/// Reconstruct the original value from a split pair. Exact by construction.
#[inline]
pub fn join_fp32(hi: f32, lo: f32) -> f32 {
    hi + lo
}

/// Split an FP64 value into `(hi, lo)` halves with `low_bits` explicit
/// mantissa bits in the low half (error-free, like [`split_fp32`]).
///
/// Used by the §IV-C FP64 extension: with `low_bits = 26`, each half fits a
/// 27-bit significand multiplier and FP64 GEMM becomes a 4-step operation
/// mirroring FP32C.
#[inline]
pub fn split_f64(x: f64, low_bits: u32) -> (f64, f64) {
    assert!(low_bits < 52, "low half must leave at least one high bit");
    if !x.is_finite() {
        return (x, 0.0);
    }
    let hi = f64::from_bits(x.to_bits() & !((1u64 << low_bits) - 1));
    let lo = x - hi;
    (hi, lo)
}

/// The four cross products of a split multiplication, in descending weight:
/// `hh` (hi·hi), `hl` (hi·lo), `lh` (lo·hi), `ll` (lo·lo).
///
/// `a * b == hh + hl + lh + ll` exactly when each product is computed
/// exactly — which is what the M3XU multiplier array does (12×12-bit exact
/// products accumulated into 48-bit registers, Eq. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitProducts {
    /// hi(a) · hi(b): weight `2^0` relative — shifted left 24 bits in hardware.
    pub hh: f64,
    /// hi(a) · lo(b): weight `2^-12` relative — shifted left 12 bits.
    pub hl: f64,
    /// lo(a) · hi(b): weight `2^-12` relative — shifted left 12 bits.
    pub lh: f64,
    /// lo(a) · lo(b): weight `2^-24` relative — unshifted.
    pub ll: f64,
}

impl SplitProducts {
    /// Compute the four exact partial products of `a * b` under the FP32
    /// split. Each 12-bit × 12-bit significand product is exact in `f64`.
    pub fn of_fp32(a: f32, b: f32) -> Self {
        let (ah, al) = split_fp32(a);
        let (bh, bl) = split_fp32(b);
        SplitProducts {
            hh: ah as f64 * bh as f64,
            hl: ah as f64 * bl as f64,
            lh: al as f64 * bh as f64,
            ll: al as f64 * bl as f64,
        }
    }

    /// Step-1 partial sum of the M3XU FP32 dataflow: `hh + ll`
    /// (Eq. 6 — the products a 2-step MXU computes in its first pass).
    #[inline]
    pub fn step1(&self) -> f64 {
        self.hh + self.ll
    }

    /// Step-2 partial sum: `hl + lh` (Eq. 8 — the cross products computed
    /// after the data-assignment stage flips the B-input halves).
    #[inline]
    pub fn step2(&self) -> f64 {
        self.hl + self.lh
    }

    /// The exact full product `a * b`.
    #[inline]
    pub fn total(&self) -> f64 {
        // Sum in ascending weight so each addition is exact in f64
        // (total significand spread is 48 bits <= 53).
        (self.ll + self.hl + self.lh) + self.hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_error_free() {
        for &x in &[
            1.0f32,
            std::f32::consts::PI,
            -1.2345678e-3,
            6.5536e4,
            f32::MIN_POSITIVE,
            1.0e-44, // subnormal
            -f32::MAX,
            1.0 + f32::EPSILON, // all-ones low bits region
        ] {
            let (hi, lo) = split_fp32(x);
            assert_eq!(hi + lo, x, "split not exact for {x:e}");
            // hi has at most 12 significant bits: its low 12 mantissa bits
            // are zero.
            assert_eq!(hi.to_bits() & 0xfff, 0);
        }
    }

    #[test]
    fn split_special_values() {
        let (hi, lo) = split_fp32(f32::INFINITY);
        assert_eq!(hi, f32::INFINITY);
        assert_eq!(lo, 0.0);
        let (hi, lo) = split_fp32(f32::NAN);
        assert!(hi.is_nan());
        assert_eq!(lo, 0.0);
        let (hi, lo) = split_fp32(0.0);
        assert_eq!(hi, 0.0);
        assert_eq!(lo, 0.0);
        let (hi, lo) = split_fp32(-0.0);
        assert!(hi == 0.0 && hi.is_sign_negative());
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn low_part_magnitude_bound() {
        let x = 1.9999999f32; // dense mantissa
        let (hi, lo) = split_fp32(x);
        // |lo| < 2^-11 * |hi| is the weight relationship the shifters encode.
        assert!(lo.abs() < hi.abs() * 2.0f32.powi(-11));
    }

    #[test]
    fn products_reconstruct_exact_multiplication() {
        let cases = [
            (std::f32::consts::PI, std::f32::consts::E),
            (1.0000001, 0.9999999),
            (-3.5e10, 2.7e-10),
            (1.0e-30, 1.0e-8),
        ];
        for (a, b) in cases {
            let p = SplitProducts::of_fp32(a, b);
            let exact = a as f64 * b as f64;
            assert_eq!(
                p.total(),
                exact,
                "products don't sum to exact a*b for ({a},{b})"
            );
            assert_eq!(p.step1() + p.step2(), exact);
        }
    }

    #[test]
    fn step_decomposition_matches_observation_1() {
        // Observation 1: step 1 computes HH+LL, step 2 computes HL+LH, and
        // together they cover all four partial products.
        fn check(a: f32, b: f32) {
            let p = SplitProducts::of_fp32(a, b);
            let (ah, al) = split_fp32(a);
            let (bh, bl) = split_fp32(b);
            assert_eq!(p.step1(), ah as f64 * bh as f64 + al as f64 * bl as f64);
            assert_eq!(p.step2(), ah as f64 * bl as f64 + al as f64 * bh as f64);
        }
        check(7.25, -0.1);
        check(1.5e-5, 3.25e7);
    }

    #[test]
    fn f64_split_error_free() {
        for &x in &[std::f64::consts::PI, -1.0e300, 2.2250738585072014e-308] {
            let (hi, lo) = split_f64(x, 26);
            assert_eq!(hi + lo, x);
            assert_eq!(hi.to_bits() & ((1 << 26) - 1), 0);
        }
    }

    #[test]
    fn f64_four_way_products_are_exact_in_wider_arithmetic() {
        // With a 26-bit low split, each half has <= 27 significant bits, so
        // half-products have <= 54 bits — NOT exact in f64. The hardware
        // accumulates them exactly in wide registers; here we verify the
        // split identity only.
        let a = std::f64::consts::LN_2;
        let (ah, al) = split_f64(a, 26);
        assert_eq!(ah + al, a);
    }
}
