//! Error-free precision splitting — the mathematical core of M3XU.
//!
//! Observation 1 of the paper rests on splitting each FP32 significand into
//! a *high* part (the hidden 1 plus the top 11 explicit mantissa bits) and a
//! *low* part (the bottom 12 explicit mantissa bits), so that
//! `x = x_hi + x_lo` holds **exactly** and each part fits a 12-bit
//! multiplier. The Ozaki/Ootomo generalisation of the same trick cuts the
//! significand into **N** slices instead of two: each slice is still exact,
//! the slices still sum back to the input bit-for-bit, and an N-slice
//! operand pair multiplies via N² exact cross products. [`SliceConfig`]
//! carries that N as *data*; the classic 2-slice FP32 split ([`split_fp32`])
//! is the `N = 2` instance and is cross-checked against it below.
//!
//! This module provides the splits as pure value-level operations;
//! `m3xu-mxu::buffer` holds the matching structural (bit-field-level) form
//! used by the data-assignment stage, and the two are cross-checked by
//! tests.

/// Maximum slice count a [`SliceConfig`] may carry (bounds the fixed-size
/// storage of [`MantissaSlices`] and the packed-operand entry planes).
pub const MAX_SLICES: usize = 8;

/// An N-slice decomposition of a `precision`-bit significand.
///
/// Slice `0` is the most significant; every slice except possibly the last
/// is [`SliceConfig::max_slice_bits`] wide (`ceil(precision / slices)`), and
/// the last takes the remainder. All derived constants — slice widths, the
/// number of bits below each slice, the cross-product term count — are
/// functions of this struct, so the classic `12`/[`FP32_LOW_BITS`] numbers
/// cannot silently drift from the generalized path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceConfig {
    slices: u32,
    precision: u32,
}

impl SliceConfig {
    /// A split of a `precision`-bit significand (hidden bit included) into
    /// `slices` exact pieces. Panics (at compile time for `const` uses) on
    /// a degenerate configuration.
    pub const fn new(slices: u32, precision: u32) -> Self {
        assert!(slices >= 1, "at least one slice");
        assert!(slices as usize <= MAX_SLICES, "too many slices");
        assert!(precision >= slices, "every slice needs at least one bit");
        SliceConfig { slices, precision }
    }

    /// An N-slice split of the 24-bit FP32 significand.
    pub const fn for_f32(slices: u32) -> Self {
        SliceConfig::new(slices, 24)
    }

    /// An N-slice split of the 53-bit FP64 significand.
    pub const fn for_f64(slices: u32) -> Self {
        SliceConfig::new(slices, 53)
    }

    /// Number of slices `N`.
    pub const fn slices(&self) -> u32 {
        self.slices
    }

    /// Total significand precision in bits (hidden bit included).
    pub const fn precision(&self) -> u32 {
        self.precision
    }

    /// Width of the widest slice: `ceil(precision / slices)`. This is the
    /// multiplier width the slice family requires of the MXU datapath.
    pub const fn max_slice_bits(&self) -> u32 {
        self.precision.div_ceil(self.slices)
    }

    /// Width in bits of slice `i` (slice `0` is most significant).
    pub const fn slice_bits(&self, i: u32) -> u32 {
        assert!(i < self.slices);
        let w = self.max_slice_bits();
        let top = w * i;
        let rest = self.precision - top;
        if rest < w {
            rest
        } else {
            w
        }
    }

    /// Number of significand bits strictly below slice `i` — the shift
    /// between slice `i`'s LSB and the full significand's LSB. For the
    /// 2-slice FP32 split, `bits_below(0)` is the classic
    /// [`FP32_LOW_BITS`] `= 12`.
    pub const fn bits_below(&self, i: u32) -> u32 {
        assert!(i < self.slices);
        let w = self.max_slice_bits();
        let covered = w * (i + 1);
        self.precision.saturating_sub(covered)
    }

    /// Number of exact cross-product terms a full N×N slice multiplication
    /// schedules: `N²`.
    pub const fn full_terms(&self) -> u32 {
        self.slices * self.slices
    }

    /// Term count of the *truncated* fast schedule, which drops every
    /// product of two slices whose combined depth `i + j >= N` (for `N = 2`
    /// that is the single `lo·lo` term, the 3xTF32-style approximation):
    /// `N(N+1)/2`.
    pub const fn fast_terms(&self) -> u32 {
        self.slices * (self.slices + 1) / 2
    }

    /// Split an FP32 value into N exact slices. Non-finite inputs place the
    /// input in slice 0 and zero the rest, mirroring [`split_fp32`].
    pub fn split_f32(&self, x: f32) -> MantissaSlices {
        assert!(self.precision == 24, "FP32 carries a 24-bit significand");
        let mut out = MantissaSlices::zeroed(self.slices as usize);
        if !x.is_finite() {
            out.vals[0] = x as f64;
            return out;
        }
        let bits = x.to_bits();
        let sign = if bits >> 31 != 0 { -1.0 } else { 1.0 };
        let frac = bits & 0x7f_ffff;
        let biased = (bits >> 23) & 0xff;
        // (m, e): x = sign * m * 2^e with m the full 24-bit significand
        // field (subnormals keep m < 2^23).
        let (m, e) = if biased == 0 {
            (frac, -149i32)
        } else {
            (frac | 0x80_0000, biased as i32 - 127 - 23)
        };
        for i in 0..self.slices {
            let below = self.bits_below(i);
            let width = self.slice_bits(i);
            let mant = (m >> below) & ((1u32 << width) - 1);
            // Zero slices are +0.0 except slice 0, which keeps the input's
            // sign — matching `x - hi` in the classic split, where the
            // difference of equal values is +0.0 but `hi` keeps the sign
            // bit of `x` (so -0.0 splits as (-0.0, +0.0)).
            out.vals[i as usize] = if mant == 0 {
                if i == 0 {
                    sign * 0.0
                } else {
                    0.0
                }
            } else {
                sign * mant as f64 * pow2_f64(e + below as i32)
            };
        }
        out
    }

    /// Split an FP64 value into N exact slices. Each slice is an integer
    /// multiple of a power of two with at most [`SliceConfig::max_slice_bits`]
    /// significant bits, so every slice is exactly representable in `f64`
    /// and the slices sum back to `x` bit-for-bit.
    pub fn split_f64(&self, x: f64) -> MantissaSlices {
        assert!(self.precision == 53, "FP64 carries a 53-bit significand");
        let mut out = MantissaSlices::zeroed(self.slices as usize);
        if !x.is_finite() {
            out.vals[0] = x;
            return out;
        }
        let bits = x.to_bits();
        let sign = if bits >> 63 != 0 { -1.0 } else { 1.0 };
        let frac = bits & 0xf_ffff_ffff_ffff;
        let biased = ((bits >> 52) & 0x7ff) as i32;
        let (m, e) = if biased == 0 {
            (frac, -1074i32)
        } else {
            (frac | (1u64 << 52), biased - 1023 - 52)
        };
        for i in 0..self.slices {
            let below = self.bits_below(i);
            let width = self.slice_bits(i);
            let mant = (m >> below) & ((1u64 << width) - 1);
            out.vals[i as usize] = if mant == 0 {
                if i == 0 {
                    sign * 0.0
                } else {
                    0.0
                }
            } else {
                sign * mant as f64 * pow2_f64(e + below as i32)
            };
        }
        out
    }
}

/// `2^k` as an exact `f64` for any `k` a slice exponent can take (down to
/// the subnormal range, where a single `powi` would flush to zero).
fn pow2_f64(k: i32) -> f64 {
    debug_assert!((-1074..=1023).contains(&k));
    if k >= -1022 {
        f64::from_bits(((k + 1023) as u64) << 52)
    } else {
        // Deep-subnormal weights encode directly in the subnormal mantissa.
        f64::from_bits(1u64 << (k + 1074))
    }
}

/// The exact slices of one value under a [`SliceConfig`]: slice `0` is most
/// significant, and the ascending-order sum reconstructs the input exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MantissaSlices {
    vals: [f64; MAX_SLICES],
    n: usize,
}

impl MantissaSlices {
    fn zeroed(n: usize) -> Self {
        MantissaSlices {
            vals: [0.0; MAX_SLICES],
            n,
        }
    }

    /// The slice values, most significant first.
    #[inline]
    pub fn slices(&self) -> &[f64] {
        &self.vals[..self.n]
    }

    /// Slice `i`'s exact value.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.vals[i]
    }

    /// Exact reconstruction of the input: sum in ascending weight so every
    /// partial sum is exact (the full significand fits `f64`).
    pub fn total(&self) -> f64 {
        if !self.vals[0].is_finite() {
            return self.vals[0];
        }
        let mut acc = 0.0;
        for v in self.vals[..self.n].iter().rev() {
            acc += v;
        }
        // An all-zero sum loses the sign of -0.0 (IEEE +0 + -0 = +0);
        // slice 0 carries the input's signed zero. Nonzero inputs cannot
        // sum to zero — the slices are exact.
        if acc == 0.0 {
            self.vals[0]
        } else {
            acc
        }
    }

    /// [`MantissaSlices::total`] rounded to `f32` — bit-identical to the
    /// original input for slices produced by [`SliceConfig::split_f32`]
    /// (the sum is exact, so the rounding is the identity).
    pub fn total_f32(&self) -> f32 {
        self.total() as f32
    }
}

/// The exact 2-slice FP32 configuration — the paper's 12+12 split.
pub const FP32_SLICES_EXACT: SliceConfig = SliceConfig::for_f32(2);

/// The default emulated-FP64 configuration: 5 slices of the 53-bit
/// significand (widths 11·4 + 9), every slice within the 12-bit multiplier.
pub const FP64_SLICES_EMULATED: SliceConfig = SliceConfig::for_f64(5);

/// Number of explicit mantissa bits assigned to the *low* half of an FP32
/// split (the high half receives the hidden bit + the remaining 11).
/// Derived from [`FP32_SLICES_EXACT`] so it cannot drift from the
/// generalized N-slice path.
pub const FP32_LOW_BITS: u32 = FP32_SLICES_EXACT.bits_below(0);

/// Split an FP32 value into `(hi, lo)` with `hi + lo == x` **exactly**.
///
/// `hi` carries the hidden bit plus the 11 most-significant explicit
/// mantissa bits (a 12-bit significand); `lo` carries the
/// [`FP32_LOW_BITS`] least-significant mantissa bits. Both halves are
/// exactly representable as FP32 (`lo` may be subnormal). NaN and infinity
/// split as `(x, 0)`. This is the `N = 2` instance of
/// [`SliceConfig::split_f32`], kept as a direct bit-mask fast path.
///
/// ```
/// use m3xu_fp::split::split_fp32;
/// let x = std::f32::consts::PI;
/// let (hi, lo) = split_fp32(x);
/// assert_eq!(hi + lo, x);           // error-free
/// assert!(lo.abs() < hi.abs() * 2.0_f32.powi(-11));
/// ```
#[inline]
pub fn split_fp32(x: f32) -> (f32, f32) {
    if !x.is_finite() {
        return (x, 0.0);
    }
    // Clear the low FP32_LOW_BITS mantissa bits: the remaining value is the
    // "high" 12-bit-significand number the data-assignment stage
    // materialises.
    let hi = f32::from_bits(x.to_bits() & !((1u32 << FP32_LOW_BITS) - 1));
    // The difference has at most FP32_LOW_BITS significant bits and is
    // representable exactly, so this subtraction is exact.
    let lo = x - hi;
    (hi, lo)
}

/// Reconstruct the original value from a split pair. Exact by construction.
#[inline]
pub fn join_fp32(hi: f32, lo: f32) -> f32 {
    hi + lo
}

/// Split an FP64 value into `(hi, lo)` halves with `low_bits` explicit
/// mantissa bits in the low half (error-free, like [`split_fp32`]).
///
/// Used by the §IV-C FP64 extension: with `low_bits = 26`, each half fits a
/// 27-bit significand multiplier and FP64 GEMM becomes a 4-step operation
/// mirroring FP32C. (The 12-bit-multiplier emulation path instead uses
/// [`SliceConfig::split_f64`] with [`FP64_SLICES_EMULATED`].)
#[inline]
pub fn split_f64(x: f64, low_bits: u32) -> (f64, f64) {
    assert!(low_bits < 52, "low half must leave at least one high bit");
    if !x.is_finite() {
        return (x, 0.0);
    }
    let hi = f64::from_bits(x.to_bits() & !((1u64 << low_bits) - 1));
    let lo = x - hi;
    (hi, lo)
}

/// The four cross products of a split multiplication, in descending weight:
/// `hh` (hi·hi), `hl` (hi·lo), `lh` (lo·hi), `ll` (lo·lo).
///
/// `a * b == hh + hl + lh + ll` exactly when each product is computed
/// exactly — which is what the M3XU multiplier array does (12×12-bit exact
/// products accumulated into 48-bit registers, Eq. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitProducts {
    /// hi(a) · hi(b): weight `2^0` relative — shifted left 24 bits in hardware.
    pub hh: f64,
    /// hi(a) · lo(b): weight `2^-12` relative — shifted left 12 bits.
    pub hl: f64,
    /// lo(a) · hi(b): weight `2^-12` relative — shifted left 12 bits.
    pub lh: f64,
    /// lo(a) · lo(b): weight `2^-24` relative — unshifted.
    pub ll: f64,
}

impl SplitProducts {
    /// Compute the four exact partial products of `a * b` under the FP32
    /// split. Each 12-bit × 12-bit significand product is exact in `f64`.
    pub fn of_fp32(a: f32, b: f32) -> Self {
        let (ah, al) = split_fp32(a);
        let (bh, bl) = split_fp32(b);
        SplitProducts {
            hh: ah as f64 * bh as f64,
            hl: ah as f64 * bl as f64,
            lh: al as f64 * bh as f64,
            ll: al as f64 * bl as f64,
        }
    }

    /// Step-1 partial sum of the M3XU FP32 dataflow: `hh + ll`
    /// (Eq. 6 — the products a 2-step MXU computes in its first pass).
    #[inline]
    pub fn step1(&self) -> f64 {
        self.hh + self.ll
    }

    /// Step-2 partial sum: `hl + lh` (Eq. 8 — the cross products computed
    /// after the data-assignment stage flips the B-input halves).
    #[inline]
    pub fn step2(&self) -> f64 {
        self.hl + self.lh
    }

    /// The truncated fast-schedule sum `hh + hl + lh`: the full product
    /// minus the deepest (`lo·lo`) term — the `N = 2` instance of the
    /// `i + j < N` fast schedule ([`SliceConfig::fast_terms`]).
    #[inline]
    pub fn fast_total(&self) -> f64 {
        (self.hl + self.lh) + self.hh
    }

    /// The exact full product `a * b`.
    #[inline]
    pub fn total(&self) -> f64 {
        // Sum in ascending weight so each addition is exact in f64
        // (total significand spread is 48 bits <= 53).
        (self.ll + self.hl + self.lh) + self.hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_error_free() {
        for &x in &[
            1.0f32,
            std::f32::consts::PI,
            -1.2345678e-3,
            6.5536e4,
            f32::MIN_POSITIVE,
            1.0e-44, // subnormal
            -f32::MAX,
            1.0 + f32::EPSILON, // all-ones low bits region
        ] {
            let (hi, lo) = split_fp32(x);
            assert_eq!(hi + lo, x, "split not exact for {x:e}");
            // hi's significant bits stop FP32_LOW_BITS above the mantissa
            // LSB — derived from the slice config, not a literal 12.
            assert_eq!(hi.to_bits() & ((1u32 << FP32_LOW_BITS) - 1), 0);
        }
    }

    #[test]
    fn split_special_values() {
        let (hi, lo) = split_fp32(f32::INFINITY);
        assert_eq!(hi, f32::INFINITY);
        assert_eq!(lo, 0.0);
        let (hi, lo) = split_fp32(f32::NAN);
        assert!(hi.is_nan());
        assert_eq!(lo, 0.0);
        let (hi, lo) = split_fp32(0.0);
        assert_eq!(hi, 0.0);
        assert_eq!(lo, 0.0);
        let (hi, lo) = split_fp32(-0.0);
        assert!(hi == 0.0 && hi.is_sign_negative());
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn low_part_magnitude_bound() {
        let x = 1.9999999f32; // dense mantissa
        let (hi, lo) = split_fp32(x);
        // |lo| < 2^-11 * |hi| is the weight relationship the shifters encode.
        assert!(lo.abs() < hi.abs() * 2.0f32.powi(-11));
    }

    #[test]
    fn products_reconstruct_exact_multiplication() {
        let cases = [
            (std::f32::consts::PI, std::f32::consts::E),
            (1.0000001, 0.9999999),
            (-3.5e10, 2.7e-10),
            (1.0e-30, 1.0e-8),
        ];
        for (a, b) in cases {
            let p = SplitProducts::of_fp32(a, b);
            let exact = a as f64 * b as f64;
            assert_eq!(
                p.total(),
                exact,
                "products don't sum to exact a*b for ({a},{b})"
            );
            assert_eq!(p.step1() + p.step2(), exact);
            // The truncated schedule drops exactly the ll term.
            assert_eq!(p.fast_total() + p.ll, exact);
        }
    }

    #[test]
    fn step_decomposition_matches_observation_1() {
        // Observation 1: step 1 computes HH+LL, step 2 computes HL+LH, and
        // together they cover all four partial products.
        fn check(a: f32, b: f32) {
            let p = SplitProducts::of_fp32(a, b);
            let (ah, al) = split_fp32(a);
            let (bh, bl) = split_fp32(b);
            assert_eq!(p.step1(), ah as f64 * bh as f64 + al as f64 * bl as f64);
            assert_eq!(p.step2(), ah as f64 * bl as f64 + al as f64 * bh as f64);
        }
        check(7.25, -0.1);
        check(1.5e-5, 3.25e7);
    }

    #[test]
    fn f64_split_error_free() {
        for &x in &[std::f64::consts::PI, -1.0e300, 2.2250738585072014e-308] {
            let (hi, lo) = split_f64(x, 26);
            assert_eq!(hi + lo, x);
            assert_eq!(hi.to_bits() & ((1 << 26) - 1), 0);
        }
    }

    #[test]
    fn f64_four_way_products_are_exact_in_wider_arithmetic() {
        // With a 26-bit low split, each half has <= 27 significant bits, so
        // half-products have <= 54 bits — NOT exact in f64. The hardware
        // accumulates them exactly in wide registers; here we verify the
        // split identity only.
        let a = std::f64::consts::LN_2;
        let (ah, al) = split_f64(a, 26);
        assert_eq!(ah + al, a);
    }

    #[test]
    fn slice_config_widths_cover_the_significand() {
        for n in 1..=MAX_SLICES as u32 {
            for &p in &[24u32, 53] {
                if p < n {
                    continue;
                }
                let cfg = SliceConfig::new(n, p);
                let sum: u32 = (0..n).map(|i| cfg.slice_bits(i)).sum();
                assert_eq!(sum, p, "widths must tile the significand (n={n}, p={p})");
                for i in 0..n {
                    assert!(cfg.slice_bits(i) <= cfg.max_slice_bits());
                    if i + 1 < n {
                        assert_eq!(
                            cfg.bits_below(i),
                            cfg.bits_below(i + 1) + cfg.slice_bits(i + 1)
                        );
                    } else {
                        assert_eq!(cfg.bits_below(i), 0);
                    }
                }
                assert_eq!(cfg.full_terms(), n * n);
                assert_eq!(cfg.fast_terms(), n * (n + 1) / 2);
            }
        }
    }

    #[test]
    fn two_slice_config_matches_classic_split_bitwise() {
        // The generalized N=2 path and the legacy bit-mask split must agree
        // bit-for-bit (the tentpole's "N=2 stays bit-identical" contract).
        assert_eq!(FP32_LOW_BITS, 12);
        assert_eq!(FP32_SLICES_EXACT.max_slice_bits(), 12);
        let cases = [
            1.0f32,
            std::f32::consts::PI,
            -1.2345678e-3,
            f32::MIN_POSITIVE,
            1.0e-44,
            -f32::MAX,
            1.0 + f32::EPSILON,
            0.0,
            -0.0,
        ];
        for &x in &cases {
            let (hi, lo) = split_fp32(x);
            let s = FP32_SLICES_EXACT.split_f32(x);
            assert_eq!((s.get(0) as f32).to_bits(), hi.to_bits(), "hi for {x:e}");
            assert_eq!((s.get(1) as f32).to_bits(), lo.to_bits(), "lo for {x:e}");
            assert_eq!(s.total_f32().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn n_slice_f32_reconstruction_is_exact() {
        let cases = [
            std::f32::consts::PI,
            1.9999999f32,
            -1.0e-40,
            f32::MIN_POSITIVE,
            6.5536e4,
            -0.0,
        ];
        for n in 1..=4u32 {
            let cfg = SliceConfig::for_f32(n);
            for &x in &cases {
                let s = cfg.split_f32(x);
                assert_eq!(s.total_f32().to_bits(), x.to_bits(), "n={n}, x={x:e}");
                // Slices are ordered by weight: a deeper slice never
                // exceeds the span a shallower one leaves open.
                for i in 1..s.slices().len() {
                    let shallower = s.get(i - 1).abs();
                    if shallower > 0.0 {
                        assert!(s.get(i).abs() < shallower);
                    }
                }
            }
        }
    }

    #[test]
    fn n_slice_f64_reconstruction_is_exact() {
        let cases = [
            std::f64::consts::PI,
            -1.0e300,
            2.2250738585072014e-308, // smallest normal
            5.0e-324,                // smallest subnormal
            1.0 + f64::EPSILON,
            -0.0,
        ];
        for n in [2u32, 4, 5, 6] {
            let cfg = SliceConfig::for_f64(n);
            for &x in &cases {
                let s = cfg.split_f64(x);
                assert_eq!(s.total().to_bits(), x.to_bits(), "n={n}, x={x:e}");
            }
        }
    }

    #[test]
    fn emulated_fp64_slices_fit_the_12_bit_multiplier() {
        assert_eq!(FP64_SLICES_EMULATED.slices(), 5);
        assert!(FP64_SLICES_EMULATED.max_slice_bits() <= 12);
        assert_eq!(FP64_SLICES_EMULATED.full_terms(), 25);
    }
}
