//! Residue arithmetic over the Mersenne prime `p = 2^61 - 1` for ABFT
//! checksums of exact dyadic values.
//!
//! The ABFT layer (Huang–Abraham row/column checksums around the tiled
//! GEMM drivers) needs a compression of the *exact* Kulisch fixed-point
//! accumulator state that
//!
//! 1. is a **ring homomorphism** from the dyadic rationals `Z[1/2]` the
//!    MXU datapath computes in (so the checksum identity
//!    `Σ seeds + Σ_k (Σ_i a_ik)(Σ_j b_kj) = Σ_(i,j) pre-round values`
//!    holds *exactly*, never within a tolerance), and
//! 2. **detects every single corrupted value with certainty**: the
//!    difference of two distinct finite FP32 values is `d · 2^t` with
//!    `0 < |d| < 2^25`, and since `p` is prime with `2` a unit mod `p`,
//!    `d · 2^t ≢ 0 (mod p)`.
//!
//! A fixed-scale `i128` window would fail requirement 2 — a corruption in
//! the high bits of a wide accumulator is invisible to `value mod 2^128`
//! at a fixed low scale, because `2` is a zero divisor mod `2^128`. Over
//! `F_p` with `p` odd, every power of two is invertible, so the map
//! `n · 2^t ↦ n · 2^(t mod 60') (mod p)` sees every bit. For the Mersenne
//! prime `2^61 ≡ 1 (mod p)`, so exponent arithmetic reduces mod 61 and
//! `2^t` for *negative* `t` needs no inverse computation at all.

/// The Mersenne prime `2^61 - 1`.
pub const M61: u64 = (1u64 << 61) - 1;

/// Reduce an arbitrary `u64` into `[0, p)`.
#[inline]
pub fn reduce_u64(x: u64) -> u64 {
    let r = (x & M61) + (x >> 61);
    if r >= M61 {
        r - M61
    } else {
        r
    }
}

/// `a + b (mod p)` for reduced inputs.
#[inline]
pub fn add_m61(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    let s = a + b; // < 2^62: no overflow
    if s >= M61 {
        s - M61
    } else {
        s
    }
}

/// `-a (mod p)` for a reduced input.
#[inline]
pub fn neg_m61(a: u64) -> u64 {
    debug_assert!(a < M61);
    if a == 0 {
        0
    } else {
        M61 - a
    }
}

/// `a - b (mod p)` for reduced inputs.
#[inline]
pub fn sub_m61(a: u64, b: u64) -> u64 {
    add_m61(a, neg_m61(b))
}

/// `a · b (mod p)` for reduced inputs.
#[inline]
pub fn mul_m61(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    let t = a as u128 * b as u128; // < 2^122
    reduce_u64((t & M61 as u128) as u64 + (t >> 61) as u64)
}

/// `2^e (mod p)` for *any* integer exponent — `2^61 ≡ 1`, so the exponent
/// reduces mod 61 and negative exponents cost nothing.
#[inline]
pub fn pow2_m61(e: i64) -> u64 {
    1u64 << e.rem_euclid(61) as u32 // < 2^61 - 1 for every residue 0..=60
}

/// Residue of a signed 128-bit integer scaled by `2^exp`:
/// `v · 2^exp (mod p)`.
pub fn residue_i128(v: i128, exp: i64) -> u64 {
    let mag = v.unsigned_abs();
    let lo = (mag & M61 as u128) as u64;
    let mid = reduce_u64((mag >> 61) as u64);
    let hi = reduce_u64((mag >> 122) as u64);
    let mut r = add_m61(reduce_u64(lo), mul_m61(mid, pow2_m61(61)));
    r = add_m61(r, mul_m61(hi, pow2_m61(122)));
    r = mul_m61(r, pow2_m61(exp));
    if v < 0 {
        neg_m61(r)
    } else {
        r
    }
}

/// Residue of a finite `f32` value (`±m · 2^e` exactly); `None` for
/// NaN/infinity, which have no dyadic value.
pub fn residue_f32(x: f32) -> Option<u64> {
    if !x.is_finite() {
        return None;
    }
    let bits = x.to_bits();
    let sign = bits >> 31 == 1;
    let exp = ((bits >> 23) & 0xff) as i64;
    let frac = (bits & 0x7f_ffff) as u64;
    let (m, e) = if exp != 0 {
        (frac | 0x80_0000, exp - 127 - 23)
    } else {
        (frac, -149)
    };
    let r = mul_m61(reduce_u64(m), pow2_m61(e));
    Some(if sign { neg_m61(r) } else { r })
}

/// Residue of a finite `f64` value (`±m · 2^e` exactly); `None` for
/// NaN/infinity. The 53-bit significand fits a single `reduce_u64`, and
/// exponents down to the subnormal floor `2^-1074` reduce mod 61 like any
/// other power of two, so the f64/N-slice dyadic range is covered with the
/// same single-fault-detection guarantee as the f32 map.
pub fn residue_f64(x: f64) -> Option<u64> {
    if !x.is_finite() {
        return None;
    }
    let bits = x.to_bits();
    let sign = bits >> 63 == 1;
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & 0xf_ffff_ffff_ffff;
    let (m, e) = if exp != 0 {
        (frac | (1u64 << 52), exp - 1023 - 52)
    } else {
        (frac, -1074)
    };
    let r = mul_m61(reduce_u64(m), pow2_m61(e));
    Some(if sign { neg_m61(r) } else { r })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold_on_samples() {
        let xs = [0u64, 1, 2, M61 - 1, 12345, 1u64 << 60, 987654321];
        for &a in &xs {
            let a = reduce_u64(a);
            assert_eq!(add_m61(a, neg_m61(a)), 0);
            assert_eq!(mul_m61(a, 1), a);
            for &b in &xs {
                let b = reduce_u64(b);
                assert_eq!(add_m61(a, b), add_m61(b, a));
                assert_eq!(mul_m61(a, b), mul_m61(b, a));
            }
        }
    }

    #[test]
    fn pow2_wraps_mod_61() {
        assert_eq!(pow2_m61(0), 1);
        assert_eq!(pow2_m61(61), 1);
        assert_eq!(pow2_m61(-61), 1);
        assert_eq!(pow2_m61(1), 2);
        assert_eq!(pow2_m61(-1), pow2_m61(60));
        // 2^-1 * 2 = 1.
        assert_eq!(mul_m61(pow2_m61(-1), 2), 1);
    }

    #[test]
    fn residue_f32_is_additive_on_exact_sums() {
        // 1.5 + 0.25 = 1.75 exactly in f32.
        let r = add_m61(residue_f32(1.5).unwrap(), residue_f32(0.25).unwrap());
        assert_eq!(r, residue_f32(1.75).unwrap());
        // x + (-x) = 0.
        let r = add_m61(residue_f32(3.75).unwrap(), residue_f32(-3.75).unwrap());
        assert_eq!(r, 0);
        assert_eq!(residue_f32(0.0).unwrap(), 0);
        assert_eq!(residue_f32(-0.0).unwrap(), 0);
    }

    #[test]
    fn residue_f32_is_multiplicative_on_exact_products() {
        // 3.0 * 0.5 = 1.5 exactly.
        let p = mul_m61(residue_f32(3.0).unwrap(), residue_f32(0.5).unwrap());
        assert_eq!(p, residue_f32(1.5).unwrap());
        // Subnormal scaling: 2^-140 * 2^10 = 2^-130.
        let p = mul_m61(
            residue_f32(f32::from_bits(1) * 2.0f32.powi(9)).unwrap(),
            residue_f32(1024.0).unwrap(),
        );
        assert_eq!(p, residue_f32(f32::from_bits(1) * 2.0f32.powi(19)).unwrap());
    }

    #[test]
    fn distinct_f32_values_have_distinct_residue_deltas() {
        // Single-fault detection: for distinct finite x != y the residues
        // differ (their difference is d*2^t with 0 < |d| < p).
        let vals = [
            0.0f32,
            1.0,
            -1.0,
            1.5,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
            123456.78,
        ];
        for &x in &vals {
            for &y in &vals {
                if x.to_bits() != y.to_bits() && x != y {
                    assert_ne!(
                        residue_f32(x).unwrap(),
                        residue_f32(y).unwrap(),
                        "{x} vs {y}"
                    );
                }
            }
        }
        // A single bit flip anywhere in a value is always visible.
        let x = 1.9999999f32;
        for bit in 0..31 {
            let y = f32::from_bits(x.to_bits() ^ (1 << bit));
            if y.is_finite() {
                assert_ne!(residue_f32(x).unwrap(), residue_f32(y).unwrap());
            }
        }
    }

    #[test]
    fn residue_rejects_specials() {
        assert!(residue_f32(f32::NAN).is_none());
        assert!(residue_f32(f32::INFINITY).is_none());
        assert!(residue_f32(f32::NEG_INFINITY).is_none());
        assert!(residue_f64(f64::NAN).is_none());
        assert!(residue_f64(f64::INFINITY).is_none());
        assert!(residue_f64(f64::NEG_INFINITY).is_none());
    }

    #[test]
    fn residue_f64_is_a_homomorphism_on_exact_ops() {
        // Additivity on exact sums.
        let r = add_m61(residue_f64(1.5).unwrap(), residue_f64(0.25).unwrap());
        assert_eq!(r, residue_f64(1.75).unwrap());
        let r = add_m61(residue_f64(3.75).unwrap(), residue_f64(-3.75).unwrap());
        assert_eq!(r, 0);
        assert_eq!(residue_f64(0.0).unwrap(), 0);
        assert_eq!(residue_f64(-0.0).unwrap(), 0);
        // Multiplicativity on exact products, incl. the subnormal floor.
        let p = mul_m61(residue_f64(3.0).unwrap(), residue_f64(0.5).unwrap());
        assert_eq!(p, residue_f64(1.5).unwrap());
        let tiny = f64::from_bits(1); // 2^-1074
        let p = mul_m61(residue_f64(tiny).unwrap(), residue_f64(1024.0).unwrap());
        assert_eq!(p, residue_f64(tiny * 1024.0).unwrap());
    }

    #[test]
    fn residue_f64_agrees_with_f32_on_shared_values() {
        for &x in &[0.0f32, 1.0, -1.0, 1.5, f32::MIN_POSITIVE, 123456.78] {
            assert_eq!(residue_f32(x), residue_f64(x as f64), "{x}");
        }
    }

    #[test]
    fn distinct_f64_values_have_distinct_residue_deltas() {
        let vals = [
            0.0f64,
            1.0,
            -1.0,
            1.5,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::from_bits(1),
            123456.789012345,
        ];
        for &x in &vals {
            for &y in &vals {
                if x.to_bits() != y.to_bits() && x != y {
                    assert_ne!(
                        residue_f64(x).unwrap(),
                        residue_f64(y).unwrap(),
                        "{x} vs {y}"
                    );
                }
            }
        }
        // Any single bit flip in a finite value is visible.
        let x = 1.999999999999999f64;
        for bit in 0..63 {
            let y = f64::from_bits(x.to_bits() ^ (1u64 << bit));
            if y.is_finite() {
                assert_ne!(residue_f64(x).unwrap(), residue_f64(y).unwrap());
            }
        }
    }

    #[test]
    fn residue_i128_matches_small_cases() {
        assert_eq!(residue_i128(1, 0), 1);
        assert_eq!(residue_i128(-1, 0), M61 - 1);
        assert_eq!(residue_i128(5, 2), 20);
        // v * 2^e at a negative scale: 3 * 2^-1 == 3 * inverse(2).
        assert_eq!(mul_m61(residue_i128(3, -1), 2), 3);
        // Wide magnitude: 2^100 = pow2(100).
        assert_eq!(residue_i128(1i128 << 100, 0), pow2_m61(100));
        assert_eq!(residue_i128((1i128 << 100) + 7, -149), {
            let r = add_m61(pow2_m61(100), 7);
            mul_m61(r, pow2_m61(-149))
        });
    }
}
