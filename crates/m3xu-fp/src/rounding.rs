//! Directed rounding modes.
//!
//! The main softfloat path ([`crate::softfloat::round_to_format`]) is
//! round-to-nearest-even, the IEEE default every MXU implements. This
//! module adds the directed modes (toward zero / +inf / -inf) used by
//! interval-arithmetic validation of the MXU results and by the
//! truncating TF32 variant some hardware implements.

use crate::format::FloatFormat;
use crate::softfloat::decompose_f64;

/// IEEE 754 rounding attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round to nearest, ties to even (the hardware default).
    #[default]
    NearestEven,
    /// Round toward zero (truncate).
    TowardZero,
    /// Round toward positive infinity.
    TowardPositive,
    /// Round toward negative infinity.
    TowardNegative,
}

/// Round a finite `f64` into `fmt` under `mode`. NaN/Inf pass through;
/// overflow behaviour follows IEEE 754 §4.3 (directed modes saturate at
/// the largest finite value on the side they round toward zero from).
pub fn round_with(x: f64, fmt: FloatFormat, mode: Rounding) -> f64 {
    if mode == Rounding::NearestEven {
        return crate::softfloat::round_to_format(x, fmt);
    }
    if fmt == crate::format::FP64 || x.is_nan() || x.is_infinite() || x == 0.0 {
        return x;
    }
    let (sign, e, m) = decompose_f64(x);
    let p = fmt.precision() as i32;
    let min_e = fmt.min_normal_exp();
    let keep = if e < min_e { p - (min_e - e) } else { p };

    // Round-away decision for the discarded bits.
    let away = |inexact: bool| -> bool {
        inexact
            && match mode {
                Rounding::TowardZero => false,
                Rounding::TowardPositive => !sign,
                Rounding::TowardNegative => sign,
                Rounding::NearestEven => unreachable!(),
            }
    };

    if keep <= 0 {
        // Whole value is below the least subnormal.
        let min_sub = fmt.min_positive_subnormal();
        let mag = if away(true) { min_sub } else { 0.0 };
        return if sign { -mag } else { mag };
    }
    let drop = 53 - keep;
    let (kept, inexact) = if drop <= 0 {
        (m, false)
    } else {
        (m >> drop, m & ((1u64 << drop) - 1) != 0)
    };
    let rounded = kept + away(inexact) as u64;
    let weight = e - 52 + drop.max(0);
    let mag = if weight >= -1022 {
        rounded as f64 * 2.0f64.powi(weight)
    } else {
        (rounded as f64 * 2.0f64.powi(-1000)) * 2.0f64.powi(weight + 1000)
    };
    let v = if sign { -mag } else { mag };
    if v.abs() > fmt.max_finite() {
        // Directed overflow: away-from-zero modes go to infinity, the
        // others saturate at max finite.
        match (mode, sign) {
            (Rounding::TowardPositive, false) => f64::INFINITY,
            (Rounding::TowardNegative, true) => f64::NEG_INFINITY,
            _ => {
                if sign {
                    -fmt.max_finite()
                } else {
                    fmt.max_finite()
                }
            }
        }
    } else {
        v
    }
}

/// An interval `[lo, hi]` guaranteed to contain the exact value of a
/// computation carried out in `fmt` — built by rounding the exact result
/// down and up. Used to sandwich MXU outputs in validation tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (rounded toward -inf).
    pub lo: f64,
    /// Upper bound (rounded toward +inf).
    pub hi: f64,
}

impl Interval {
    /// Enclose an exact real value in `fmt`'s grid.
    pub fn enclose(exact: f64, fmt: FloatFormat) -> Self {
        Interval {
            lo: round_with(exact, fmt, Rounding::TowardNegative),
            hi: round_with(exact, fmt, Rounding::TowardPositive),
        }
    }

    /// True iff `v` lies within the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interval width (0 when the exact value is representable).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FP16, FP32};

    #[test]
    fn toward_zero_truncates() {
        let x = 1.0 + 2.0f64.powi(-30); // needs 31 bits
        assert_eq!(round_with(x, FP32, Rounding::TowardZero), 1.0);
        assert_eq!(round_with(-x, FP32, Rounding::TowardZero), -1.0);
    }

    #[test]
    fn directed_modes_bracket_nearest() {
        let x = std::f64::consts::PI;
        let dn = round_with(x, FP32, Rounding::TowardNegative);
        let up = round_with(x, FP32, Rounding::TowardPositive);
        let ne = round_with(x, FP32, Rounding::NearestEven);
        assert!(dn <= ne && ne <= up);
        assert!(up > dn);
        assert_eq!(up, f64::from_bits((dn as f32).to_bits() as u64).max(up)); // up is the next grid point
    }

    #[test]
    fn exact_values_round_to_themselves_in_all_modes() {
        for mode in [
            Rounding::NearestEven,
            Rounding::TowardZero,
            Rounding::TowardPositive,
            Rounding::TowardNegative,
        ] {
            assert_eq!(round_with(1.5, FP16, mode), 1.5);
            assert_eq!(round_with(-0.25, FP16, mode), -0.25);
        }
    }

    #[test]
    fn directed_overflow() {
        let big = 1e39;
        assert_eq!(
            round_with(big, FP32, Rounding::TowardPositive),
            f64::INFINITY
        );
        assert_eq!(
            round_with(big, FP32, Rounding::TowardZero),
            FP32.max_finite()
        );
        assert_eq!(
            round_with(-big, FP32, Rounding::TowardNegative),
            f64::NEG_INFINITY
        );
        assert_eq!(
            round_with(-big, FP32, Rounding::TowardPositive),
            -FP32.max_finite()
        );
    }

    #[test]
    fn directed_underflow() {
        let tiny = 2.0f64.powi(-160); // below FP32 min subnormal
        assert_eq!(round_with(tiny, FP32, Rounding::TowardZero), 0.0);
        assert_eq!(
            round_with(tiny, FP32, Rounding::TowardPositive),
            FP32.min_positive_subnormal()
        );
        assert_eq!(round_with(-tiny, FP32, Rounding::TowardPositive), 0.0);
        assert_eq!(
            round_with(-tiny, FP32, Rounding::TowardNegative),
            -FP32.min_positive_subnormal()
        );
    }

    #[test]
    fn interval_encloses_and_is_tight() {
        let exact = 1.0f64 / 3.0;
        let iv = Interval::enclose(exact, FP32);
        assert!(iv.contains(exact));
        assert!(iv.contains(round_with(exact, FP32, Rounding::NearestEven)));
        // Width is exactly one FP32 ulp of 1/3.
        assert_eq!(iv.width(), 2.0f64.powi(-25));
        // Representable value: zero-width interval.
        let iv = Interval::enclose(0.5, FP32);
        assert_eq!(iv.width(), 0.0);
    }
}
