//! Software precision-recovery decompositions — the paper's baselines.
//!
//! Before M3XU, FP32 GEMM on low-precision MXUs was *emulated* in software
//! (§II-C, Table IV):
//!
//! * `cutlass_tensorop_sgemm`: each FP32 input splits into a TF32 "big"
//!   term and a TF32 "small" residual; 3 of the 4 cross-product GEMMs are
//!   issued (CUTLASS omits small·small for speed), leaving one-to-several
//!   bits of error.
//! * `EEHC_sgemm_fp32B` (Ma et al., ICS'22): each FP32 splits into three
//!   BF16 terms; three warp-level BF16 GEMMs approximate the product.
//!
//! These decompositions are implemented here *functionally* so the test
//! suite can measure their residual error against both the IEEE FP32
//! reference and M3XU's bit-exact result — quantifying the paper's claim
//! that software emulation "remains to have between one and several bits of
//! precision loss" while M3XU has none.

use crate::format::{FloatFormat, BF16, TF32};
use crate::softfloat::round_to_format;

/// A decomposition of one FP32 value into `N` lower-precision terms whose
/// sum approximates (for TF32: equals, when N=2) the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Terms<const N: usize> {
    /// Terms in descending magnitude; each is exactly representable in the
    /// target low-precision format.
    pub t: [f32; N],
}

/// Split an FP32 value into `(big, small)` TF32 terms:
/// `big = tf32(x)`, `small = tf32(x - big)`.
///
/// Because TF32 keeps 11 significand bits and FP32 has 24, the two terms
/// recover at most 22 bits — the residual `x - big - small` is generally
/// nonzero (up to 2 ulps of FP32), which is exactly why 3xTF32 software
/// emulation is not bit-exact.
pub fn split_tf32(x: f32) -> Terms<2> {
    let big = round_to_format(x as f64, TF32) as f32;
    let small = round_to_format((x as f64) - (big as f64), TF32) as f32;
    Terms { t: [big, small] }
}

/// Split an FP32 value into three BF16 terms (EEHC / Ma et al. style):
/// `b0 = bf16(x)`, `b1 = bf16(x - b0)`, `b2 = bf16(x - b0 - b1)`.
///
/// Three 8-bit significands recover up to 24 bits, but rounding at each
/// stage and the dropped cross terms in the 3-GEMM product leave residual
/// error.
pub fn split_bf16x3(x: f32) -> Terms<3> {
    let b0 = round_to_format(x as f64, BF16) as f32;
    let r1 = (x as f64) - (b0 as f64);
    let b1 = round_to_format(r1, BF16) as f32;
    let r2 = r1 - (b1 as f64);
    let b2 = round_to_format(r2, BF16) as f32;
    Terms { t: [b0, b1, b2] }
}

impl<const N: usize> Terms<N> {
    /// Reconstruct the (approximate) original value.
    pub fn sum(&self) -> f64 {
        self.t.iter().map(|&v| v as f64).sum()
    }

    /// Residual `x - sum(terms)` of the decomposition for input `x`.
    pub fn residual(&self, x: f32) -> f64 {
        x as f64 - self.sum()
    }
}

/// How many low-precision GEMM passes a software emulation issues, and
/// which cross-product terms it keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmulationScheme {
    /// 3xTF32 (CUTLASS `cutlass_tensorop_sgemm`): keeps big·big, big·small,
    /// small·big; omits small·small.
    Tf32X3,
    /// 4xTF32: all four cross products (the "perfect emulation" the paper
    /// notes CUTLASS skips for performance; still not bit-exact because the
    /// residual beyond 22 bits is lost at split time).
    Tf32X4,
    /// 3xBF16 (EEHC): keeps b0·b0, b0·b1, b1·b0.
    Bf16X3,
}

impl EmulationScheme {
    /// Number of low-precision GEMM passes the scheme issues per FP32 GEMM.
    pub fn gemm_passes(self) -> u32 {
        match self {
            EmulationScheme::Tf32X3 | EmulationScheme::Bf16X3 => 3,
            EmulationScheme::Tf32X4 => 4,
        }
    }

    /// The low-precision format the passes execute in.
    pub fn format(self) -> FloatFormat {
        match self {
            EmulationScheme::Tf32X3 | EmulationScheme::Tf32X4 => TF32,
            EmulationScheme::Bf16X3 => BF16,
        }
    }

    /// Emulate one scalar product `a * b` the way the scheme's GEMM would:
    /// the kept cross products are computed exactly (tensor-core multipliers
    /// produce exact products into FP32 accumulators) and summed in
    /// descending-weight order in `f64` (mimicking the FP32 accumulation of
    /// separate GEMM passes, which for a single product incurs no further
    /// rounding).
    pub fn emulate_product(self, a: f32, b: f32) -> f64 {
        match self {
            EmulationScheme::Tf32X3 => {
                let ta = split_tf32(a);
                let tb = split_tf32(b);
                let (ab, as_) = (ta.t[0] as f64, ta.t[1] as f64);
                let (bb, bs) = (tb.t[0] as f64, tb.t[1] as f64);
                ab * bb + ab * bs + as_ * bb
            }
            EmulationScheme::Tf32X4 => {
                let ta = split_tf32(a);
                let tb = split_tf32(b);
                let (ab, as_) = (ta.t[0] as f64, ta.t[1] as f64);
                let (bb, bs) = (tb.t[0] as f64, tb.t[1] as f64);
                ab * bb + ab * bs + as_ * bb + as_ * bs
            }
            EmulationScheme::Bf16X3 => {
                let ta = split_bf16x3(a);
                let tb = split_bf16x3(b);
                let a0 = ta.t[0] as f64;
                let a1 = ta.t[1] as f64;
                let b0 = tb.t[0] as f64;
                let b1 = tb.t[1] as f64;
                // EEHC keeps three warp-level GEMMs: a0b0, a0b1, a1b0.
                a0 * b0 + a0 * b1 + a1 * b0
            }
        }
    }

    /// Emulate a length-`k` dot product under the scheme, with FP32 rounding
    /// of each pass's accumulator (the separate GEMM passes each accumulate
    /// in FP32 on real hardware).
    pub fn emulate_dot(self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        match self {
            EmulationScheme::Tf32X3 | EmulationScheme::Tf32X4 => {
                let splits: Vec<(Terms<2>, Terms<2>)> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| (split_tf32(x), split_tf32(y)))
                    .collect();
                let pass = |fa: fn(&Terms<2>) -> f32, fb: fn(&Terms<2>) -> f32| -> f32 {
                    let mut acc = 0.0f32;
                    for (ta, tb) in &splits {
                        acc = fa(ta).mul_add(fb(tb), acc);
                    }
                    acc
                };
                let bb = pass(|t| t.t[0], |t| t.t[0]);
                let bs = pass(|t| t.t[0], |t| t.t[1]);
                let sb = pass(|t| t.t[1], |t| t.t[0]);
                let mut total = bs + sb; // low-order first
                if self == EmulationScheme::Tf32X4 {
                    let ss = pass(|t| t.t[1], |t| t.t[1]);
                    total += ss;
                }
                total + bb
            }
            EmulationScheme::Bf16X3 => {
                let splits: Vec<(Terms<3>, Terms<3>)> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| (split_bf16x3(x), split_bf16x3(y)))
                    .collect();
                let pass = |ia: usize, ib: usize| -> f32 {
                    let mut acc = 0.0f32;
                    for (ta, tb) in &splits {
                        acc = ta.t[ia].mul_add(tb.t[ib], acc);
                    }
                    acc
                };
                let p00 = pass(0, 0);
                let p01 = pass(0, 1);
                let p10 = pass(1, 0);
                (p01 + p10) + p00
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::ulp_distance_f32;

    #[test]
    fn tf32_split_terms_are_tf32_representable() {
        let t = split_tf32(std::f32::consts::PI);
        for &v in &t.t {
            assert_eq!(round_to_format(v as f64, TF32) as f32, v);
        }
    }

    #[test]
    fn bf16_split_terms_are_bf16_representable() {
        let t = split_bf16x3(std::f32::consts::PI);
        for &v in &t.t {
            assert_eq!(round_to_format(v as f64, BF16) as f32, v);
        }
    }

    #[test]
    fn tf32_split_recovers_22ish_bits() {
        let x = 1.2345678f32;
        let t = split_tf32(x);
        // Residual bounded by ~2^-22 of x.
        assert!(t.residual(x).abs() <= (x as f64).abs() * 2.0f64.powi(-21));
    }

    #[test]
    fn software_schemes_lose_bits_where_m3xu_is_exact() {
        // The paper: software emulation has "between one and several bits of
        // precision loss"; M3XU is bit-exact. Sweep dense-mantissa inputs and
        // require each software scheme to show error somewhere while M3XU
        // never does.
        let mut tf_inexact = 0u32;
        let mut bf_inexact = 0u32;
        let mut x = std::f32::consts::FRAC_1_SQRT_2;
        for _ in 0..100 {
            x = (x * 1.618_034).fract() + 0.25;
            let y = (x * 2.399).fract() + 0.5;
            let exact = (x as f64 * y as f64) as f32;

            let m3xu = crate::split::SplitProducts::of_fp32(x, y).total() as f32;
            assert_eq!(m3xu, exact, "M3XU product must be bit-exact for ({x},{y})");

            let e_tf =
                ulp_distance_f32(EmulationScheme::Tf32X3.emulate_product(x, y) as f32, exact);
            let e_bf =
                ulp_distance_f32(EmulationScheme::Bf16X3.emulate_product(x, y) as f32, exact);
            tf_inexact += (e_tf > 0) as u32;
            bf_inexact += (e_bf > 0) as u32;
            // Errors stay within "several bits" (3xBF16 drops the a1*b1 and
            // *-b2 cross terms, ~2^-16 relative, i.e. up to ~8 low bits).
            assert!(
                e_tf <= 16,
                "tf32x3 error too large: {e_tf} ulps for ({x},{y})"
            );
            assert!(
                e_bf <= 1024,
                "bf16x3 error too large: {e_bf} ulps for ({x},{y})"
            );
        }
        assert!(tf_inexact > 0, "tf32x3 emulation never erred — suspicious");
        assert!(bf_inexact > 0, "bf16x3 emulation never erred — suspicious");
    }

    #[test]
    fn tf32x4_beats_tf32x3_in_aggregate() {
        // The 4th (small·small) pass improves accuracy on average; on any
        // single input the rounding dice may land either way.
        let mut sum3 = 0.0f64;
        let mut sum4 = 0.0f64;
        let mut x = 0.7f32;
        for _ in 0..200 {
            x = (x * 1.618_034).fract() + 0.25;
            let y = (x * 0.917).fract() + 0.5;
            let exact = x as f64 * y as f64;
            sum3 += (EmulationScheme::Tf32X3.emulate_product(x, y) - exact).abs();
            sum4 += (EmulationScheme::Tf32X4.emulate_product(x, y) - exact).abs();
        }
        assert!(
            sum4 < sum3,
            "tf32x4 aggregate error {sum4} not below tf32x3 {sum3}"
        );
    }

    #[test]
    fn dot_product_emulation_runs() {
        let a: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..64).map(|i| (i as f32 * 0.73).cos()).collect();
        let reference: f32 = {
            let mut acc = 0.0f32;
            for i in 0..64 {
                acc = a[i].mul_add(b[i], acc);
            }
            acc
        };
        for scheme in [
            EmulationScheme::Tf32X3,
            EmulationScheme::Tf32X4,
            EmulationScheme::Bf16X3,
        ] {
            let got = scheme.emulate_dot(&a, &b);
            let err = (got - reference).abs() / reference.abs().max(1e-20);
            assert!(err < 1e-4, "{scheme:?} dot error {err}");
        }
    }

    #[test]
    fn pass_counts() {
        assert_eq!(EmulationScheme::Tf32X3.gemm_passes(), 3);
        assert_eq!(EmulationScheme::Tf32X4.gemm_passes(), 4);
        assert_eq!(EmulationScheme::Bf16X3.gemm_passes(), 3);
        assert_eq!(EmulationScheme::Tf32X3.format(), TF32);
        assert_eq!(EmulationScheme::Bf16X3.format(), BF16);
    }
}
