//! Error metrics: ULP distance and relative error.
//!
//! Used throughout the test suite and the numerics-validation harnesses to
//! quantify the paper's claim that M3XU "introduces no additional error
//! compared to conventional FP32 ALUs" while software emulation loses
//! "between one and several bits".

/// Map an `f32` onto the integer number line such that adjacent
/// representable floats map to adjacent integers (a total order matching
/// the IEEE-754 ordering, with -0 and +0 adjacent).
#[inline]
fn ordered_i64(x: f32) -> i64 {
    let bits = x.to_bits() as i32;
    if bits < 0 {
        // Negative floats have sign-magnitude bit patterns; flip them onto
        // the negative integers so -0.0 maps to 0 and -min_subnormal to -1.
        (i32::MIN as i64) - (bits as i64)
    } else {
        bits as i64
    }
}

/// Distance between two `f32` values in units-in-the-last-place: the number
/// of representable floats strictly between them, plus one if they differ.
/// Returns 0 iff bitwise equal (or both are the same zero), and
/// `u64::MAX` if either is NaN.
pub fn ulp_distance_f32(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    if a == b {
        // Covers +0 == -0.
        return 0;
    }
    let ia = ordered_i64(a);
    let ib = ordered_i64(b);
    ia.abs_diff(ib)
}

/// Same for `f64`.
pub fn ulp_distance_f64(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    if a == b {
        return 0;
    }
    let map = |x: f64| -> i128 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            (i64::MIN as i128) - (bits as i128)
        } else {
            bits as i128
        }
    };
    let d = map(a) - map(b);
    d.unsigned_abs().min(u64::MAX as u128) as u64
}

/// Relative error `|got - reference| / max(|reference|, floor)` computed in
/// `f64`. `floor` guards division by values near zero.
pub fn relative_error(got: f64, reference: f64, floor: f64) -> f64 {
    (got - reference).abs() / reference.abs().max(floor)
}

/// Summary statistics of element-wise error between two slices.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Maximum ULP distance observed.
    pub max_ulp: u64,
    /// Mean ULP distance.
    pub mean_ulp: f64,
    /// Maximum relative error.
    pub max_rel: f64,
    /// Root-mean-square relative error.
    pub rms_rel: f64,
    /// Number of elements compared.
    pub count: usize,
    /// Number of exactly (bitwise) matching elements.
    pub exact: usize,
}

impl ErrorStats {
    /// Compare `got` against `reference` element-wise.
    pub fn compare_f32(got: &[f32], reference: &[f32]) -> Self {
        assert_eq!(got.len(), reference.len());
        let mut s = ErrorStats {
            count: got.len(),
            ..Default::default()
        };
        if got.is_empty() {
            return s;
        }
        let mut ulp_sum = 0.0f64;
        let mut rel_sq_sum = 0.0f64;
        for (&g, &r) in got.iter().zip(reference) {
            let u = ulp_distance_f32(g, r);
            if u == 0 {
                s.exact += 1;
            }
            s.max_ulp = s.max_ulp.max(u);
            ulp_sum += u as f64;
            let rel = relative_error(g as f64, r as f64, f32::MIN_POSITIVE as f64);
            s.max_rel = s.max_rel.max(rel);
            rel_sq_sum += rel * rel;
        }
        s.mean_ulp = ulp_sum / got.len() as f64;
        s.rms_rel = (rel_sq_sum / got.len() as f64).sqrt();
        s
    }

    /// True iff every element matched bit-for-bit.
    pub fn all_exact(&self) -> bool {
        self.exact == self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_floats_are_one_ulp() {
        let x = 1.0f32;
        let y = f32::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_distance_f32(x, y), 1);
        assert_eq!(ulp_distance_f32(y, x), 1);
        assert_eq!(ulp_distance_f32(x, x), 0);
    }

    #[test]
    fn across_zero() {
        let pos = f32::from_bits(1); // smallest positive subnormal
        let neg = -pos;
        // pos and neg are two ulps apart (pos -> +0/-0 -> neg).
        assert_eq!(ulp_distance_f32(pos, neg), 2);
        assert_eq!(ulp_distance_f32(0.0, -0.0), 0);
        assert_eq!(ulp_distance_f32(pos, 0.0), 1);
        assert_eq!(ulp_distance_f32(neg, 0.0), 1);
    }

    #[test]
    fn nan_is_max() {
        assert_eq!(ulp_distance_f32(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance_f64(1.0, f64::NAN), u64::MAX);
    }

    #[test]
    fn f64_adjacent() {
        let x = std::f64::consts::PI;
        let y = f64::from_bits(x.to_bits() + 3);
        assert_eq!(ulp_distance_f64(x, y), 3);
    }

    #[test]
    fn stats_exactness() {
        let a = vec![1.0f32, 2.0, 3.0];
        let s = ErrorStats::compare_f32(&a, &a);
        assert!(s.all_exact());
        assert_eq!(s.max_ulp, 0);
        assert_eq!(s.count, 3);

        let b = vec![1.0f32, 2.0, f32::from_bits(3.0f32.to_bits() + 2)];
        let s = ErrorStats::compare_f32(&b, &a);
        assert!(!s.all_exact());
        assert_eq!(s.exact, 2);
        assert_eq!(s.max_ulp, 2);
    }

    #[test]
    fn relative_error_floor() {
        assert_eq!(relative_error(1.0, 0.0, 1.0), 1.0);
        assert!(relative_error(1.01, 1.0, 1e-30) - 0.01 < 1e-12);
    }
}
