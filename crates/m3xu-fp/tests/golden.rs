//! Golden-value tests: hard-coded bit patterns for the mantissa-split and
//! rounding edge cases the property suites only hit probabilistically —
//! subnormals, signed zero, infinities, NaN payloads, round-to-nearest-even
//! ties at both the FP32 and the 12-bit split-boundary precision, and
//! deep-underflow accumulation. Every expectation is a literal bit
//! pattern, so a regression cannot hide behind an approximate comparison.

use m3xu_fp::fixed::Kulisch;
use m3xu_fp::format::{FP32, M3XU_BUFFER};
use m3xu_fp::rounding::{round_with, Rounding};
use m3xu_fp::split::{
    join_fp32, split_fp32, SliceConfig, FP32_LOW_BITS, FP32_SLICES_EXACT, FP64_SLICES_EMULATED,
};
use m3xu_fp::{Conjugate, C32, C64};

/// `2^k` as an exact `f64` (valid down to the subnormal floor at -1074).
fn pow2(k: i32) -> f64 {
    if k >= -1022 {
        2.0f64.powi(k)
    } else {
        2.0f64.powi(-1000) * 2.0f64.powi(k + 1000)
    }
}

// ---- split_fp32 ---------------------------------------------------------

#[test]
fn split_subnormals_bit_exactly() {
    // Minimum positive subnormal: entirely inside the low 12 bits, so the
    // high half is +0 and the low half is the input, bit for bit.
    let min_sub = f32::from_bits(0x0000_0001);
    let (hi, lo) = split_fp32(min_sub);
    assert_eq!(hi.to_bits(), 0x0000_0000);
    assert_eq!(lo.to_bits(), 0x0000_0001);
    assert_eq!(join_fp32(hi, lo).to_bits(), min_sub.to_bits());

    // All twelve low mantissa bits set, nothing above: still (0, x).
    let low_full = f32::from_bits(0x0000_0FFF);
    let (hi, lo) = split_fp32(low_full);
    assert_eq!(hi.to_bits(), 0x0000_0000);
    assert_eq!(lo.to_bits(), 0x0000_0FFF);

    // First bit above the split boundary: clean (x, 0) split.
    let boundary = f32::from_bits(0x0000_1000);
    let (hi, lo) = split_fp32(boundary);
    assert_eq!(hi.to_bits(), 0x0000_1000);
    assert_eq!(lo.to_bits(), 0x0000_0000);

    // A subnormal straddling the boundary splits error-free into two
    // subnormals.
    let straddle = f32::from_bits(0x0000_1ABC);
    let (hi, lo) = split_fp32(straddle);
    assert_eq!(hi.to_bits(), 0x0000_1000);
    assert_eq!(lo.to_bits(), 0x0000_0ABC);
    assert_eq!((hi + lo).to_bits(), straddle.to_bits());
}

#[test]
fn split_signed_zero_and_infinities() {
    let (hi, lo) = split_fp32(0.0);
    assert_eq!(hi.to_bits(), 0x0000_0000);
    assert_eq!(lo.to_bits(), 0x0000_0000);

    // -0.0 keeps its sign in the high half.
    let (hi, lo) = split_fp32(-0.0);
    assert_eq!(hi.to_bits(), 0x8000_0000);
    assert_eq!(lo.to_bits(), 0x0000_0000);

    let (hi, lo) = split_fp32(f32::INFINITY);
    assert_eq!(hi.to_bits(), 0x7F80_0000);
    assert_eq!(lo.to_bits(), 0x0000_0000);
    let (hi, lo) = split_fp32(f32::NEG_INFINITY);
    assert_eq!(hi.to_bits(), 0xFF80_0000);
    assert_eq!(lo.to_bits(), 0x0000_0000);
}

#[test]
fn split_preserves_nan_payload_bits() {
    // A quiet NaN with a distinctive payload must come back bit-identical
    // in the high half (splitting must not canonicalise it).
    for bits in [
        0x7FC1_2345u32,
        0xFFC0_DEAD,
        0x7F81_0001, /* signalling */
    ] {
        let x = f32::from_bits(bits);
        let (hi, lo) = split_fp32(x);
        assert_eq!(hi.to_bits(), bits, "payload lost for {bits:#010x}");
        assert_eq!(lo.to_bits(), 0x0000_0000);
    }
}

#[test]
fn split_boundary_of_normal_values() {
    // 1.0 + 2^-12: the added bit is the top of the low half, so
    // hi == 1.0 exactly and lo == 2^-12 exactly.
    let x = f32::from_bits(0x3F80_0800);
    let (hi, lo) = split_fp32(x);
    assert_eq!(hi.to_bits(), 0x3F80_0000);
    assert_eq!(lo.to_bits(), 2.0f32.powi(-12).to_bits());
    assert_eq!((hi + lo).to_bits(), x.to_bits());

    // 1.0 + 2^-11: lowest bit of the *high* half; splits as (x, 0).
    let x = f32::from_bits(0x3F80_1000);
    let (hi, lo) = split_fp32(x);
    assert_eq!(hi.to_bits(), x.to_bits());
    assert_eq!(lo.to_bits(), 0x0000_0000);

    // Largest finite FP32: error-free split with a large low half.
    let x = f32::MAX;
    let (hi, lo) = split_fp32(x);
    assert_eq!((hi + lo).to_bits(), x.to_bits());
    assert_eq!(
        hi.to_bits() & ((1u32 << FP32_LOW_BITS) - 1),
        0,
        "high half must have clear low bits"
    );
}

// ---- N-slice decompositions (SliceConfig) ------------------------------

#[test]
fn n_slice_subnormals_reconstruct_bit_exactly() {
    // Subnormal patterns at every slice count: each slice is exact, and the
    // ascending-order re-sum returns the input bit for bit.
    for bits in [
        0x0000_0001u32,
        0x0000_0FFF,
        0x0000_1000,
        0x0000_1ABC,
        0x007F_FFFF,
    ] {
        let x = f32::from_bits(bits);
        for n in [2u32, 3, 4] {
            let s = SliceConfig::for_f32(n).split_f32(x);
            assert_eq!(
                s.total_f32().to_bits(),
                bits,
                "subnormal {bits:#010x} at n={n}"
            );
            // Sum of f32-rounded slices also reconstructs: every slice of a
            // 24-bit significand is itself FP32-representable.
            let resum: f32 = s.slices().iter().rev().map(|&v| v as f32).sum();
            assert_eq!(resum.to_bits(), bits, "f32 slice re-sum at n={n}");
        }
    }
}

#[test]
fn n_slice_two_slice_matches_classic_split_golden() {
    // The N=2 instance is the paper's 12+12 split, bit for bit.
    for bits in [
        0x3F80_0800u32,
        0x3F80_1000,
        0x0000_1ABC,
        0x8000_0000,
        0x7F7F_FFFF,
    ] {
        let x = f32::from_bits(bits);
        let (hi, lo) = split_fp32(x);
        let s = FP32_SLICES_EXACT.split_f32(x);
        assert_eq!((s.get(0) as f32).to_bits(), hi.to_bits());
        assert_eq!((s.get(1) as f32).to_bits(), lo.to_bits());
    }
}

#[test]
fn n_slice_nan_payloads_and_infinities() {
    for n in [2u32, 3, 4] {
        let cfg = SliceConfig::for_f32(n);
        // Quiet-NaN payloads survive in slice 0; the rest are zero.
        for bits in [0x7FC1_2345u32, 0xFFC0_DEAD] {
            let s = cfg.split_f32(f32::from_bits(bits));
            assert_eq!((s.get(0) as f32).to_bits(), bits, "payload at n={n}");
            for i in 1..n as usize {
                assert_eq!(s.get(i).to_bits(), 0);
            }
            assert_eq!(s.total_f32().to_bits(), bits);
        }
        // Infinities pass through slice 0 with sign.
        let s = cfg.split_f32(f32::INFINITY);
        assert_eq!(s.total_f32().to_bits(), 0x7F80_0000);
        let s = cfg.split_f32(f32::NEG_INFINITY);
        assert_eq!(s.total_f32().to_bits(), 0xFF80_0000);
    }
}

#[test]
fn n_slice_signed_zero() {
    for n in [2u32, 3, 4] {
        let cfg = SliceConfig::for_f32(n);
        let s = cfg.split_f32(-0.0);
        assert_eq!((s.get(0) as f32).to_bits(), 0x8000_0000, "n={n}");
        for i in 1..n as usize {
            assert_eq!((s.get(i) as f32).to_bits(), 0x0000_0000);
        }
        assert_eq!(s.total_f32().to_bits(), 0x8000_0000);
        let s = cfg.split_f32(0.0);
        assert_eq!(s.total_f32().to_bits(), 0x0000_0000);
    }
}

#[test]
fn n_slice_deep_underflow_reconstruction_through_kulisch() {
    // Deep-underflow accumulation: slice an input whose low slices are far
    // below the FP32 subnormal floor, push every slice through the exact
    // accumulator, and demand the drained value equals the input exactly.
    for n in [2u32, 3, 4] {
        let cfg = SliceConfig::for_f32(n);
        for bits in [0x0000_0001u32, 0x0000_0003, 0x0080_0001, 0x3F80_0001] {
            let x = f32::from_bits(bits);
            let mut acc = Kulisch::new();
            for &v in cfg.split_f32(x).slices() {
                acc.add_f64(v);
            }
            assert_eq!(acc.to_f32().to_bits(), bits, "n={n}, bits={bits:#010x}");
        }
    }
}

#[test]
fn fp64_slice_family_golden() {
    // The 5-slice FP64 configuration: widths 11,11,11,11,9 — all within
    // the 12-bit multiplier — and bit-exact reconstruction across the full
    // dynamic range including f64 subnormals.
    let cfg = FP64_SLICES_EMULATED;
    assert_eq!(
        (0..5).map(|i| cfg.slice_bits(i)).collect::<Vec<_>>(),
        vec![11, 11, 11, 11, 9]
    );
    for bits in [
        0x0000_0000_0000_0001u64, // min subnormal
        0x000F_FFFF_FFFF_FFFF,    // max subnormal
        0x0010_0000_0000_0000,    // min normal
        0x3FF0_0000_0000_0001,    // 1 + eps
        0x7FEF_FFFF_FFFF_FFFF,    // f64::MAX
        0x8000_0000_0000_0000,    // -0.0
        0xC000_0000_0000_0000,    // -2.0
    ] {
        let x = f64::from_bits(bits);
        let s = cfg.split_f64(x);
        assert_eq!(s.total().to_bits(), bits, "{bits:#018x}");
        let mut acc = Kulisch::new();
        for &v in s.slices() {
            acc.add_f64(v);
        }
        if x != 0.0 {
            assert_eq!(acc.to_f64().to_bits(), bits, "kulisch {bits:#018x}");
        }
    }
}

// ---- Kulisch round-to-nearest-even ties --------------------------------

#[test]
fn kulisch_rne_tie_at_fp32_rounds_to_even() {
    // 1 + 2^-24 sits exactly between 1.0 (mantissa 0, even) and
    // 1 + 2^-23 (mantissa 1, odd): ties-to-even keeps 1.0.
    let mut acc = Kulisch::new();
    acc.add_f64(1.0);
    acc.add_f64(pow2(-24));
    assert_eq!(acc.to_f32().to_bits(), 0x3F80_0000);

    // 1 + 3·2^-24 ties between mantissa 1 (odd) and 2 (even): goes up.
    let mut acc = Kulisch::new();
    acc.add_f64(1.0);
    acc.add_f64(3.0 * pow2(-24));
    assert_eq!(acc.to_f32().to_bits(), 0x3F80_0002);

    // Any sticky bit below the tie breaks it upward.
    let mut acc = Kulisch::new();
    acc.add_f64(1.0);
    acc.add_f64(pow2(-24));
    acc.add_f64(pow2(-90));
    assert_eq!(acc.to_f32().to_bits(), 0x3F80_0001);

    // 1 - 2^-25: tie between 1 - 2^-24 (odd) and 1.0 (even): up to 1.0.
    let mut acc = Kulisch::new();
    acc.add_f64(1.0);
    acc.sub_f64(pow2(-25));
    assert_eq!(acc.to_f32().to_bits(), 0x3F80_0000);

    // ... and with a sticky bit it stays below.
    let mut acc = Kulisch::new();
    acc.add_f64(1.0);
    acc.sub_f64(pow2(-25));
    acc.sub_f64(pow2(-90));
    assert_eq!(acc.to_f32().to_bits(), 0x3F7F_FFFF);
}

#[test]
fn kulisch_deep_underflow_golden() {
    // The minimum positive f64 subnormal (2^-1074) is held exactly and
    // survives the f64 round-trip...
    let mut acc = Kulisch::new();
    acc.add_f64(f64::from_bits(1));
    assert_eq!(acc.to_f64().to_bits(), 1);
    // ...but is a total underflow in FP32.
    assert_eq!(acc.to_f32().to_bits(), 0x0000_0000);
    let (v, flags) = acc.round_to_flagged(FP32);
    assert_eq!(v, 0.0);
    assert!(flags.underflow && flags.inexact);

    // 2^-150 is exactly half the least FP32 subnormal: tie to even (zero).
    let mut acc = Kulisch::new();
    acc.add_f64(pow2(-150));
    assert_eq!(acc.to_f32().to_bits(), 0x0000_0000);
    // A sticky bit rounds it up to the least subnormal instead.
    acc.add_f64(pow2(-400));
    assert_eq!(acc.to_f32().to_bits(), 0x0000_0001);

    // The least FP32 subnormal itself is exact.
    let mut acc = Kulisch::new();
    acc.add_f64(pow2(-149));
    assert_eq!(acc.to_f32().to_bits(), 0x0000_0001);

    // Negative tie mirrors to -0.0, preserving the sign bit.
    let mut acc = Kulisch::new();
    acc.sub_f64(pow2(-150));
    assert_eq!(acc.to_f32().to_bits(), 0x8000_0000);
}

#[test]
fn kulisch_exact_cancellation_of_split_products() {
    // A split multiplication re-accumulated term by term must cancel its
    // own FP64 total exactly — the error-free property at the heart of
    // Observation 1, checked through the accumulator.
    let a = f32::from_bits(0x4049_0FDB); // pi
    let b = f32::from_bits(0x402D_F854); // e
    let (ah, al) = split_fp32(a);
    let (bh, bl) = split_fp32(b);
    let mut acc = Kulisch::new();
    acc.add_product_f32(ah, bh);
    acc.add_product_f32(ah, bl);
    acc.add_product_f32(al, bh);
    acc.add_product_f32(al, bl);
    acc.sub_f64(a as f64 * b as f64);
    assert!(acc.is_zero(), "split products must reproduce a*b exactly");
}

// ---- ties at the 12-bit split boundary ---------------------------------

#[test]
fn rne_ties_at_the_split_boundary_precision() {
    // M3XU_BUFFER bookkeeping width: 12 explicit mantissa bits, so the
    // representable spacing at 1.0 is 2^-12 and ties sit at odd multiples
    // of 2^-13.
    assert_eq!(M3XU_BUFFER.mantissa_bits, FP32_LOW_BITS);

    // 1 + 2^-13: tie between 1.0 (even) and 1 + 2^-12 (odd) — stays 1.0.
    let v = round_with(1.0 + pow2(-13), M3XU_BUFFER, Rounding::NearestEven);
    assert_eq!(v.to_bits(), 1.0f64.to_bits());

    // 1 + 3·2^-13: tie between 1 + 2^-12 (odd) and 1 + 2^-11 (even) — up.
    let v = round_with(1.0 + 3.0 * pow2(-13), M3XU_BUFFER, Rounding::NearestEven);
    assert_eq!(v.to_bits(), (1.0 + pow2(-11)).to_bits());

    // A sticky bit below the tie point always rounds away from even.
    let v = round_with(
        1.0 + pow2(-13) + pow2(-40),
        M3XU_BUFFER,
        Rounding::NearestEven,
    );
    assert_eq!(v.to_bits(), (1.0 + pow2(-12)).to_bits());

    // Directed modes bracket the tie: toward zero truncates, toward
    // +inf rounds up — the interval the validation harness checks against.
    let x = 1.0 + pow2(-13);
    assert_eq!(
        round_with(x, M3XU_BUFFER, Rounding::TowardZero).to_bits(),
        1.0f64.to_bits()
    );
    assert_eq!(
        round_with(x, M3XU_BUFFER, Rounding::TowardPositive).to_bits(),
        (1.0 + pow2(-12)).to_bits()
    );
    assert_eq!(
        round_with(-x, M3XU_BUFFER, Rounding::TowardNegative).to_bits(),
        (-(1.0 + pow2(-12))).to_bits()
    );
}

// ---- conjugation bit behaviour -----------------------------------------
//
// op(X) = X^H packs through [`Conjugate`], whose contract is a pure
// IEEE-754 negation of the imaginary part: sign bit flips, every other
// bit — NaN payloads included — survives untouched. These goldens pin
// that contract so a "helpful" renormalising conjugate cannot sneak in.

#[test]
fn conjugate_preserves_nan_payload_bits_and_flips_only_the_sign() {
    // Quiet NaNs with distinctive payloads in both components.
    let z = C32::new(f32::from_bits(0x7FC0_1DEA), f32::from_bits(0xFFC0_BEEF));
    let c = z.conjugate();
    // The real part is untouched, bit for bit.
    assert_eq!(c.re.to_bits(), 0x7FC0_1DEA);
    // The imaginary NaN keeps its payload; only the sign bit flips.
    assert_eq!(c.im.to_bits(), 0x7FC0_BEEF);

    // A signalling NaN imaginary part is negated without being quieted.
    let z = C32::new(1.0, f32::from_bits(0x7F81_0001));
    assert_eq!(z.conjugate().im.to_bits(), 0xFF81_0001);

    // Double conjugation is a bitwise no-op, NaNs and all.
    let z = C32::new(f32::from_bits(0xFFC0_DEAD), f32::from_bits(0x7FC1_2345));
    let cc = z.conjugate().conjugate();
    assert_eq!(cc.re.to_bits(), z.re.to_bits());
    assert_eq!(cc.im.to_bits(), z.im.to_bits());

    // Same contract at f64 width.
    let z = C64::new(
        f64::from_bits(0x7FF8_DEAD_BEEF_0123),
        f64::from_bits(0xFFF8_0000_0000_1DEA),
    );
    let c = z.conjugate();
    assert_eq!(c.re.to_bits(), 0x7FF8_DEAD_BEEF_0123);
    assert_eq!(c.im.to_bits(), 0x7FF8_0000_0000_1DEA);
}

#[test]
fn conjugate_signed_zero_imaginary_golden() {
    // (x, -0.0)^H has a +0.0 imaginary part — and vice versa. The real
    // part's zero sign is never touched.
    let z = C32::new(-0.0, -0.0);
    let c = z.conjugate();
    assert_eq!(c.re.to_bits(), 0x8000_0000);
    assert_eq!(c.im.to_bits(), 0x0000_0000);
    let c = C32::new(2.5, 0.0).conjugate();
    assert_eq!(c.im.to_bits(), 0x8000_0000);

    // Subnormal and extreme-magnitude imaginary parts negate bit-exactly.
    for bits in [0x0000_0001u32, 0x0000_1ABC, 0x7F7F_FFFF, 0x0080_0000] {
        let z = C32::new(1.0, f32::from_bits(bits));
        assert_eq!(z.conjugate().im.to_bits(), bits | 0x8000_0000);
        let z = C32::new(1.0, f32::from_bits(bits | 0x8000_0000));
        assert_eq!(z.conjugate().im.to_bits(), bits);
    }

    // f64: -0.0 imaginary conjugates to +0.0 exactly.
    let c = C64::new(1.0, -0.0).conjugate();
    assert_eq!(c.im.to_bits(), 0x0000_0000_0000_0000);
}

#[test]
fn conjugate_is_bitwise_identity_for_real_types() {
    // op(X) = X^H on real matrices degenerates to X^T: `Conjugate` for
    // f32/f64 must be the identity on every bit pattern, NaNs and signed
    // zeros included.
    for bits in [0x7FC0_1DEAu32, 0x8000_0000, 0x0000_0001, 0xFF80_0000] {
        let x = f32::from_bits(bits);
        assert_eq!(x.conjugate().to_bits(), bits);
    }
    for bits in [0x7FF8_DEAD_BEEF_0123u64, 0x8000_0000_0000_0000] {
        let x = f64::from_bits(bits);
        assert_eq!(x.conjugate().to_bits(), bits);
    }
}
