//! Property-based tests for the floating-point substrate.
//!
//! These pin down the invariants every higher layer depends on:
//! round-to-format agrees with hardware casts, splits are error-free,
//! the Kulisch accumulator is exact, and ULP distance is a metric.

use m3xu_fp::decompose::{split_bf16x3, split_tf32, EmulationScheme};
use m3xu_fp::fixed::Kulisch;
use m3xu_fp::format::{BF16, FP16, FP32, TF32};
use m3xu_fp::softfloat::{decode, encode, round_to_format};
use m3xu_fp::split::{split_fp32, SplitProducts};
use m3xu_fp::ulp::{ulp_distance_f32, ulp_distance_f64};
use proptest::prelude::*;

/// Finite f32 values across the full range, including subnormals.
fn any_finite_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_filter_map("finite", |bits| {
        let x = f32::from_bits(bits);
        x.is_finite().then_some(x)
    })
}

/// Finite f64 values that fit in f32 range (common case for GEMM data).
fn any_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_filter_map("finite", |bits| {
        let x = f64::from_bits(bits);
        x.is_finite().then_some(x)
    })
}

proptest! {
    /// round_to_format(x, FP32) is identical to the hardware `as f32` cast.
    #[test]
    fn round_fp32_matches_hardware(x in any_finite_f64()) {
        let sw = round_to_format(x, FP32);
        let hw = x as f32;
        if hw.is_infinite() {
            prop_assert!(sw.is_infinite() && sw.is_sign_positive() == hw.is_sign_positive());
        } else {
            prop_assert_eq!(sw, hw as f64);
        }
    }

    /// Rounding is idempotent for every format.
    #[test]
    fn rounding_is_idempotent(x in any_finite_f64()) {
        for fmt in [FP16, BF16, TF32, FP32] {
            let once = round_to_format(x, fmt);
            let twice = round_to_format(once, fmt);
            prop_assert!(once.to_bits() == twice.to_bits(),
                "{} not idempotent for {:e}: {:e} vs {:e}", fmt, x, once, twice);
        }
    }

    /// Rounding is monotone: x <= y implies round(x) <= round(y).
    #[test]
    fn rounding_is_monotone(a in any_finite_f64(), b in any_finite_f64()) {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        for fmt in [FP16, BF16, TF32, FP32] {
            prop_assert!(round_to_format(x, fmt) <= round_to_format(y, fmt));
        }
    }

    /// encode/decode round-trips for arbitrary FP32 bit patterns.
    #[test]
    fn encode_decode_fp32_roundtrip(bits in any::<u32>()) {
        let v = decode(bits as u64, FP32);
        if v.is_nan() {
            prop_assert!(f32::from_bits(bits).is_nan());
        } else {
            prop_assert_eq!(v, f32::from_bits(bits) as f64);
            prop_assert_eq!(encode(v, FP32) as u32, bits);
        }
    }

    /// The FP32 split is error-free and the high part has a 12-bit significand.
    #[test]
    fn split_fp32_error_free(x in any_finite_f32()) {
        let (hi, lo) = split_fp32(x);
        prop_assert_eq!(hi + lo, x);
        prop_assert_eq!(hi.to_bits() & 0xfff, 0);
    }

    /// The four split products reconstruct the exact f64 product — the
    /// foundation of M3XU's bit-exactness claim.
    #[test]
    fn split_products_exact(a in any_finite_f32(), b in any_finite_f32()) {
        let p = SplitProducts::of_fp32(a, b);
        prop_assert_eq!(p.total(), a as f64 * b as f64);
        prop_assert_eq!(p.step1() + p.step2(), a as f64 * b as f64);
    }

    /// TF32 split: both terms representable; residual bounded by 2^-21 |x|.
    #[test]
    fn tf32_split_bounds(x in any_finite_f32()) {
        let t = split_tf32(x);
        for &v in &t.t {
            prop_assert!(v.is_nan() || round_to_format(v as f64, TF32) as f32 == v);
        }
        // Away from the underflow boundary (the small term itself must stay
        // representable: |small| ~ |x| * 2^-11 must exceed TF32's least
        // subnormal 2^-136), the residual is bounded by ~2^-21 |x|.
        if x.is_normal() && x.abs() > 2.0f32.powi(-100) {
            prop_assert!(t.residual(x).abs() <= (x as f64).abs() * 2.0f64.powi(-21));
        }
    }

    /// BF16x3 split terms are representable and improve with each term.
    #[test]
    fn bf16x3_split_bounds(x in any_finite_f32()) {
        let t = split_bf16x3(x);
        for &v in &t.t {
            prop_assert!(v.is_nan() || round_to_format(v as f64, BF16) as f32 == v);
        }
        if x.is_normal() && x.abs() > 1e-30 {
            let r1 = (x as f64 - t.t[0] as f64).abs();
            let r3 = t.residual(x).abs();
            prop_assert!(r3 <= r1 + f64::EPSILON * x.abs() as f64);
        }
    }

    /// M3XU's per-product path is bit-exact against FP32 for ALL finite
    /// inputs where the product doesn't overflow, while software emulation
    /// is allowed error.
    #[test]
    fn m3xu_product_always_exact(a in any_finite_f32(), b in any_finite_f32()) {
        let exact64 = a as f64 * b as f64;
        let exact = exact64 as f32;
        prop_assume!(exact.is_finite());
        let m3xu = SplitProducts::of_fp32(a, b).total() as f32;
        prop_assert_eq!(m3xu.to_bits(), exact.to_bits());
        // Software schemes stay within a few dozen ulps on data away from
        // the over/underflow boundaries (near them, their split terms
        // themselves under/overflow — another M3XU advantage).
        let moderate = |x: f32| x.is_normal() && x.abs() > 2.0f32.powi(-50) && x.abs() < 2.0f32.powi(50);
        if moderate(a) && moderate(b) && exact.is_normal() {
            let tf = EmulationScheme::Tf32X3.emulate_product(a, b) as f32;
            prop_assert!(ulp_distance_f32(tf, exact) <= 32);
        }
    }

    /// Kulisch accumulation of f64 values reproduces an exact reference
    /// built from i128 integer arithmetic on scaled dyadics.
    #[test]
    fn kulisch_sums_small_dyadics_exactly(vals in prop::collection::vec(-1000i32..1000, 1..50)) {
        let mut acc = Kulisch::new();
        let mut exact_num = 0i64; // value = exact_num / 256
        for &v in &vals {
            let x = v as f64 / 256.0;
            acc.add_f64(x);
            exact_num += v as i64;
        }
        prop_assert_eq!(acc.to_f64(), exact_num as f64 / 256.0);
    }

    /// Kulisch add/sub of the same values always returns to zero.
    #[test]
    fn kulisch_cancellation(xs in prop::collection::vec(any_finite_f64(), 1..30)) {
        let mut acc = Kulisch::new();
        for &x in &xs { acc.add_f64(x); }
        for &x in &xs { acc.sub_f64(x); }
        prop_assert!(acc.is_zero());
    }

    /// Kulisch to_f32 of a single product equals the correctly rounded product.
    #[test]
    fn kulisch_single_product_rounds_correctly(a in any_finite_f32(), b in any_finite_f32()) {
        let mut acc = Kulisch::new();
        acc.add_product_f32(a, b);
        let expect = ((a as f64) * (b as f64)) as f32;
        prop_assume!(expect.is_finite());
        prop_assert_eq!(acc.to_f32().to_bits(), expect.to_bits());
    }

    /// ULP distance is symmetric and satisfies the triangle inequality.
    #[test]
    fn ulp_is_a_metric(a in any_finite_f32(), b in any_finite_f32(), c in any_finite_f32()) {
        prop_assert_eq!(ulp_distance_f32(a, b), ulp_distance_f32(b, a));
        prop_assert_eq!(ulp_distance_f32(a, a), 0);
        let ab = ulp_distance_f32(a, b) as u128;
        let bc = ulp_distance_f32(b, c) as u128;
        let ac = ulp_distance_f32(a, c) as u128;
        prop_assert!(ac <= ab + bc);
    }

    /// Adjacent f64 values are exactly 1 ulp apart.
    #[test]
    fn ulp_f64_adjacency(x in any_finite_f64()) {
        let y = f64::from_bits(x.to_bits().wrapping_add(1));
        if y.is_finite() && !(x == 0.0 && y != 0.0 && y.is_sign_negative()) {
            // Skip the +0 -> smallest-negative wraparound artifact of raw
            // bit increment on sign-magnitude floats.
            if x.is_sign_negative() == y.is_sign_negative() {
                prop_assert_eq!(ulp_distance_f64(x, y), 1);
            }
        }
    }
}
