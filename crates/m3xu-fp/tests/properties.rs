//! Property-style tests for the floating-point substrate.
//!
//! These pin down the invariants every higher layer depends on:
//! round-to-format agrees with hardware casts, splits are error-free,
//! the Kulisch accumulator is exact, and ULP distance is a metric.
//!
//! Inputs are drawn deterministically from a seeded xorshift generator
//! over raw bit patterns, so the whole finite range — subnormals, huge
//! exponent spreads, signed zeros — is exercised reproducibly on every
//! run with no external test-framework dependency.

use m3xu_fp::decompose::{split_bf16x3, split_tf32, EmulationScheme};
use m3xu_fp::fixed::Kulisch;
use m3xu_fp::format::{BF16, FP16, FP32, TF32};
use m3xu_fp::softfloat::{decode, encode, round_to_format};
use m3xu_fp::split::{split_fp32, SplitProducts};
use m3xu_fp::ulp::{ulp_distance_f32, ulp_distance_f64};

const CASES: usize = 2000;

/// Deterministic xorshift64 bit-pattern generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Finite f32 values across the full range, including subnormals.
    fn finite_f32(&mut self) -> f32 {
        loop {
            let x = f32::from_bits(self.next_u32());
            if x.is_finite() {
                return x;
            }
        }
    }

    /// Finite f64 values across the full range, including subnormals.
    fn finite_f64(&mut self) -> f64 {
        loop {
            let x = f64::from_bits(self.next_u64());
            if x.is_finite() {
                return x;
            }
        }
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// round_to_format(x, FP32) is identical to the hardware `as f32` cast.
#[test]
fn round_fp32_matches_hardware() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let x = rng.finite_f64();
        let sw = round_to_format(x, FP32);
        let hw = x as f32;
        if hw.is_infinite() {
            assert!(sw.is_infinite() && sw.is_sign_positive() == hw.is_sign_positive());
        } else {
            assert_eq!(sw, hw as f64, "mismatch for {x:e}");
        }
    }
}

/// Rounding is idempotent for every format.
#[test]
fn rounding_is_idempotent() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let x = rng.finite_f64();
        for fmt in [FP16, BF16, TF32, FP32] {
            let once = round_to_format(x, fmt);
            let twice = round_to_format(once, fmt);
            assert!(
                once.to_bits() == twice.to_bits(),
                "{fmt} not idempotent for {x:e}: {once:e} vs {twice:e}"
            );
        }
    }
}

/// Rounding is monotone: x <= y implies round(x) <= round(y).
#[test]
fn rounding_is_monotone() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let (a, b) = (rng.finite_f64(), rng.finite_f64());
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        for fmt in [FP16, BF16, TF32, FP32] {
            assert!(
                round_to_format(x, fmt) <= round_to_format(y, fmt),
                "{fmt} not monotone on {x:e} <= {y:e}"
            );
        }
    }
}

/// encode/decode round-trips for arbitrary FP32 bit patterns.
#[test]
fn encode_decode_fp32_roundtrip() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let bits = rng.next_u32();
        let v = decode(bits as u64, FP32);
        if v.is_nan() {
            assert!(f32::from_bits(bits).is_nan());
        } else {
            assert_eq!(v, f32::from_bits(bits) as f64);
            assert_eq!(encode(v, FP32) as u32, bits);
        }
    }
}

/// The FP32 split is error-free and the high part has a 12-bit significand.
#[test]
fn split_fp32_error_free() {
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let x = rng.finite_f32();
        let (hi, lo) = split_fp32(x);
        assert_eq!(hi + lo, x, "split not exact for {x:e}");
        assert_eq!(
            hi.to_bits() & 0xfff,
            0,
            "high part keeps low bits for {x:e}"
        );
    }
}

/// The four split products reconstruct the exact f64 product — the
/// foundation of M3XU's bit-exactness claim.
#[test]
fn split_products_exact() {
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let (a, b) = (rng.finite_f32(), rng.finite_f32());
        let p = SplitProducts::of_fp32(a, b);
        assert_eq!(
            p.total(),
            a as f64 * b as f64,
            "total wrong for {a:e} * {b:e}"
        );
        assert_eq!(p.step1() + p.step2(), a as f64 * b as f64);
    }
}

/// TF32 split: both terms representable; residual bounded by 2^-21 |x|.
#[test]
fn tf32_split_bounds() {
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let x = rng.finite_f32();
        let t = split_tf32(x);
        for &v in &t.t {
            assert!(v.is_nan() || round_to_format(v as f64, TF32) as f32 == v);
        }
        // Away from the underflow boundary (the small term itself must stay
        // representable: |small| ~ |x| * 2^-11 must exceed TF32's least
        // subnormal 2^-136), the residual is bounded by ~2^-21 |x|.
        if x.is_normal() && x.abs() > 2.0f32.powi(-100) {
            assert!(t.residual(x).abs() <= (x as f64).abs() * 2.0f64.powi(-21));
        }
    }
}

/// BF16x3 split terms are representable and improve with each term.
#[test]
fn bf16x3_split_bounds() {
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let x = rng.finite_f32();
        let t = split_bf16x3(x);
        for &v in &t.t {
            assert!(v.is_nan() || round_to_format(v as f64, BF16) as f32 == v);
        }
        if x.is_normal() && x.abs() > 1e-30 {
            let r1 = (x as f64 - t.t[0] as f64).abs();
            let r3 = t.residual(x).abs();
            assert!(r3 <= r1 + f64::EPSILON * x.abs() as f64);
        }
    }
}

/// M3XU's per-product path is bit-exact against FP32 for ALL finite
/// inputs where the product doesn't overflow, while software emulation
/// is allowed error.
#[test]
fn m3xu_product_always_exact() {
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        let (a, b) = (rng.finite_f32(), rng.finite_f32());
        let exact64 = a as f64 * b as f64;
        let exact = exact64 as f32;
        if !exact.is_finite() {
            continue;
        }
        let m3xu = SplitProducts::of_fp32(a, b).total() as f32;
        assert_eq!(
            m3xu.to_bits(),
            exact.to_bits(),
            "m3xu product wrong for {a:e} * {b:e}"
        );
        // Software schemes stay within a few dozen ulps on data away from
        // the over/underflow boundaries (near them, their split terms
        // themselves under/overflow — another M3XU advantage).
        let moderate =
            |x: f32| x.is_normal() && x.abs() > 2.0f32.powi(-50) && x.abs() < 2.0f32.powi(50);
        if moderate(a) && moderate(b) && exact.is_normal() {
            let tf = EmulationScheme::Tf32X3.emulate_product(a, b) as f32;
            assert!(ulp_distance_f32(tf, exact) <= 32);
        }
    }
}

/// Kulisch accumulation of f64 values reproduces an exact reference
/// built from integer arithmetic on scaled dyadics.
#[test]
fn kulisch_sums_small_dyadics_exactly() {
    let mut rng = Rng::new(10);
    for _ in 0..200 {
        let len = rng.range(1, 50) as usize;
        let mut acc = Kulisch::new();
        let mut exact_num = 0i64; // value = exact_num / 256
        for _ in 0..len {
            let v = rng.range(-1000, 1000);
            acc.add_f64(v as f64 / 256.0);
            exact_num += v;
        }
        assert_eq!(acc.to_f64(), exact_num as f64 / 256.0);
    }
}

/// Kulisch add/sub of the same values always returns to zero.
#[test]
fn kulisch_cancellation() {
    let mut rng = Rng::new(11);
    for _ in 0..200 {
        let len = rng.range(1, 30) as usize;
        let xs: Vec<f64> = (0..len).map(|_| rng.finite_f64()).collect();
        let mut acc = Kulisch::new();
        for &x in &xs {
            acc.add_f64(x);
        }
        for &x in &xs {
            acc.sub_f64(x);
        }
        assert!(acc.is_zero());
    }
}

/// Kulisch to_f32 of a single product equals the correctly rounded product.
#[test]
fn kulisch_single_product_rounds_correctly() {
    let mut rng = Rng::new(12);
    for _ in 0..CASES {
        let (a, b) = (rng.finite_f32(), rng.finite_f32());
        let expect = ((a as f64) * (b as f64)) as f32;
        if !expect.is_finite() {
            continue;
        }
        let mut acc = Kulisch::new();
        acc.add_product_f32(a, b);
        assert_eq!(
            acc.to_f32().to_bits(),
            expect.to_bits(),
            "rounding wrong for {a:e} * {b:e}"
        );
    }
}

/// ULP distance is symmetric and satisfies the triangle inequality.
#[test]
fn ulp_is_a_metric() {
    let mut rng = Rng::new(13);
    for _ in 0..CASES {
        let (a, b, c) = (rng.finite_f32(), rng.finite_f32(), rng.finite_f32());
        assert_eq!(ulp_distance_f32(a, b), ulp_distance_f32(b, a));
        assert_eq!(ulp_distance_f32(a, a), 0);
        let ab = ulp_distance_f32(a, b) as u128;
        let bc = ulp_distance_f32(b, c) as u128;
        let ac = ulp_distance_f32(a, c) as u128;
        assert!(ac <= ab + bc);
    }
}

/// Adjacent f64 values are exactly 1 ulp apart.
#[test]
fn ulp_f64_adjacency() {
    let mut rng = Rng::new(14);
    for _ in 0..CASES {
        let x = rng.finite_f64();
        let y = f64::from_bits(x.to_bits().wrapping_add(1));
        // Skip the +0 -> smallest-negative wraparound artifact of raw
        // bit increment on sign-magnitude floats.
        if y.is_finite() && x.is_sign_negative() == y.is_sign_negative() {
            assert_eq!(ulp_distance_f64(x, y), 1);
        }
    }
}
