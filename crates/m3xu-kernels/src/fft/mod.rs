//! FFT substrate — the paper's first case study (§VI-C1, Fig. 6).
//!
//! Three implementations:
//!
//! * [`dft`] — the O(N²) reference DFT (ground truth for tests);
//! * [`radix2`] — a classic iterative radix-2 Cooley–Tukey FFT (the shape
//!   of a SIMT / cuFFT implementation);
//! * [`gemm_fft`] — the tcFFT formulation: four-step Cooley–Tukey whose
//!   inner small DFTs are **complex GEMMs** against the DFT matrix,
//!   executed on the M3XU's FP32C mode. This is what M3XU accelerates
//!   "directly … without approximations".
//!
//! [`perf`] holds the Fig. 6 performance model (cuFFT baseline, the
//! TF32-extended tcFFT, and M3XU).

pub mod fft2d;
pub mod perf;

use crate::context::{default_context, ClosureExecutor, GemmExecutor};
use m3xu_fp::complex::Complex;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::MmaStats;
use std::collections::HashMap;
use std::sync::Mutex;

/// Complex single-precision sample.
pub type C32 = Complex<f32>;

/// The O(N²) reference DFT (forward, unnormalised):
/// `X[k] = sum_j x[j] e^{-2πi jk / N}`, evaluated in f64 and rounded.
pub fn dft(x: &[C32]) -> Vec<C32> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for (j, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j as f64) * (k as f64) / n as f64;
                let (s, c) = ang.sin_cos();
                re += v.re as f64 * c - v.im as f64 * s;
                im += v.re as f64 * s + v.im as f64 * c;
            }
            Complex::new(re as f32, im as f32)
        })
        .collect()
}

/// Fallible [`radix2`]: rejects non-power-of-two lengths with
/// [`M3xuError::NonPowerOfTwoLength`] instead of panicking.
pub fn try_radix2(x: &[C32]) -> Result<Vec<C32>, M3xuError> {
    if x.is_empty() {
        // The 0-point transform is the (empty) identity.
        return Ok(Vec::new());
    }
    if !x.len().is_power_of_two() {
        return Err(M3xuError::NonPowerOfTwoLength {
            context: "radix2",
            len: x.len(),
        });
    }
    Ok(radix2_unchecked(x))
}

/// Iterative radix-2 Cooley–Tukey FFT (forward, unnormalised). `x.len()`
/// must be a power of two. This is the "CUDA-core" shaped implementation.
/// Panics on an invalid length; see [`try_radix2`] for the fallible form.
pub fn radix2(x: &[C32]) -> Vec<C32> {
    try_radix2(x).unwrap_or_else(|e| panic!("{e}"))
}

fn radix2_unchecked(x: &[C32]) -> Vec<C32> {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        // A 0- or 1-point transform is the identity (and the bit-reversal
        // shift below would overflow for n == 1).
        return x.to_vec();
    }
    let mut a: Vec<C32> = x.to_vec();
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            a.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        for start in (0..n).step_by(len) {
            for t in 0..len / 2 {
                let w64 = Complex::<f64>::cis(ang * t as f64);
                let w = Complex::new(w64.re as f32, w64.im as f32);
                let u = a[start + t];
                let v = a[start + t + len / 2] * w;
                a[start + t] = u + v;
                a[start + t + len / 2] = u - v;
            }
        }
        len <<= 1;
    }
    a
}

/// Fallible [`inverse_radix2`].
pub fn try_inverse_radix2(x: &[C32]) -> Result<Vec<C32>, M3xuError> {
    let n = x.len() as f32;
    let conj: Vec<C32> = x.iter().map(|z| z.conj()).collect();
    Ok(try_radix2(&conj)?
        .iter()
        .map(|z| z.conj().scale(1.0 / n))
        .collect())
}

/// Inverse FFT via conjugation: `ifft(x) = conj(fft(conj(x))) / N`.
/// Panics on an invalid length; see [`try_inverse_radix2`].
pub fn inverse_radix2(x: &[C32]) -> Vec<C32> {
    try_inverse_radix2(x).unwrap_or_else(|e| panic!("{e}"))
}

/// The `n x n` DFT matrix `F[k][j] = e^{-2πi jk / n}` (twiddles computed
/// in f64, rounded to FP32C once).
pub fn dft_matrix(n: usize) -> Matrix<C32> {
    Matrix::from_fn(n, n, |k, j| {
        let ang = -2.0 * std::f64::consts::PI * (j as f64) * (k as f64) / n as f64;
        let w = Complex::<f64>::cis(ang);
        Complex::new(w.re as f32, w.im as f32)
    })
}

/// Cached DFT matrices (shared across FFT calls / threads).
static DFT_CACHE: Mutex<Option<HashMap<usize, Matrix<C32>>>> = Mutex::new(None);

fn cached_dft_matrix(n: usize) -> Matrix<C32> {
    // Recover from lock poisoning: a panicking FFT call (e.g. through an
    // injected CGEMM driver) must not condemn every later caller in the
    // process to a `PoisonError` unwrap. The cache is a pure memo of
    // `dft_matrix(n)` — at worst a poisoned entry was never inserted, so
    // the data behind the lock is always valid.
    let mut guard = DFT_CACHE.lock().unwrap_or_else(|e| e.into_inner());
    let cache = guard.get_or_insert_with(HashMap::new);
    cache.entry(n).or_insert_with(|| dft_matrix(n)).clone()
}

/// The tcFFT-style radix used for the GEMM stages (a 16-point DFT maps
/// onto the MXU fragment shapes).
pub const GEMM_RADIX: usize = 16;

/// GEMM-formulated FFT (forward, unnormalised) on the M3XU FP32C mode.
///
/// Four-step Cooley–Tukey: with `N = N1 * N2`,
/// 1. the `N1`-point column DFTs are **one complex GEMM**
///    `F_{N1} (N1 x N1) x M (N1 x N2)` where `M[j1][j2] = x[j1*N2 + j2]`;
/// 2. twiddle `T[k1][j2] *= w_N^{k1 j2}`;
/// 3. each row is an `N2`-point FFT (recursion);
/// 4. output interleaves as `X[k1 + N1*k2]`.
///
/// Returns the spectrum and the accumulated M3XU MMA statistics.
/// Panics on an invalid length; see [`try_gemm_fft`] for the fallible
/// form.
pub fn gemm_fft(x: &[C32]) -> (Vec<C32>, MmaStats) {
    try_gemm_fft(x).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`gemm_fft`]: rejects non-power-of-two lengths with
/// [`M3xuError::NonPowerOfTwoLength`] instead of panicking. Executes on
/// the process-wide default context.
pub fn try_gemm_fft(x: &[C32]) -> Result<(Vec<C32>, MmaStats), M3xuError> {
    try_gemm_fft_on(default_context(), x)
}

/// [`gemm_fft`] on an explicit [`GemmExecutor`] — thread a metered
/// [`M3xuContext`](crate::context::M3xuContext) (or any custom driver)
/// through the whole Cooley–Tukey recursion.
pub fn try_gemm_fft_on<X: GemmExecutor>(
    exec: &X,
    x: &[C32],
) -> Result<(Vec<C32>, MmaStats), M3xuError> {
    if x.is_empty() {
        // The 0-point transform is the (empty) identity.
        return Ok((Vec::new(), MmaStats::default()));
    }
    if !x.len().is_power_of_two() {
        return Err(M3xuError::NonPowerOfTwoLength {
            context: "gemm_fft",
            len: x.len(),
        });
    }
    let mut stats = MmaStats::default();
    let out = gemm_fft_inner(x, exec, &mut stats)?;
    Ok((out, stats))
}

/// [`gemm_fft`] with a caller-supplied CGEMM driver. The benchmark
/// harness uses this to run the identical FFT decomposition over the
/// original per-fragment driver (`gemm::baseline::cgemm_c32`) and the
/// packed driver side by side. Panics on an invalid length; see
/// [`try_gemm_fft_with`].
pub fn gemm_fft_with<F>(x: &[C32], cgemm: F) -> (Vec<C32>, MmaStats)
where
    F: Fn(&Matrix<C32>, &Matrix<C32>, &Matrix<C32>) -> crate::gemm::GemmResult<C32>,
{
    try_gemm_fft_with(x, cgemm).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`gemm_fft_with`] — a compatibility wrapper that adapts the
/// bare closure into a [`ClosureExecutor`] and runs [`try_gemm_fft_on`].
pub fn try_gemm_fft_with<F>(x: &[C32], cgemm: F) -> Result<(Vec<C32>, MmaStats), M3xuError>
where
    F: Fn(&Matrix<C32>, &Matrix<C32>, &Matrix<C32>) -> crate::gemm::GemmResult<C32>,
{
    try_gemm_fft_on(&ClosureExecutor::new(cgemm), x)
}

fn gemm_fft_inner<X: GemmExecutor>(
    x: &[C32],
    exec: &X,
    stats: &mut MmaStats,
) -> Result<Vec<C32>, M3xuError> {
    let n = x.len();
    // Validated at the `try_gemm_fft_on` boundary; the recursion only
    // ever splits a power of two into `GEMM_RADIX * (n / GEMM_RADIX)`.
    debug_assert!(n.is_power_of_two());
    if n <= GEMM_RADIX {
        // Base case: one complex GEMM against the DFT matrix.
        let f = cached_dft_matrix(n);
        let v = Matrix::from_fn(n, 1, |j, _| x[j]);
        let c = Matrix::zeros(n, 1);
        let r = exec.try_cgemm_c32(&f, &v, &c)?;
        stats.merge(&r.stats);
        return Ok((0..n).map(|k| r.d.get(k, 0)).collect());
    }
    let n1 = GEMM_RADIX.min(n);
    let n2 = n / n1;

    // Step 1: column DFTs as a single N1 x N1 by N1 x N2 complex GEMM.
    let m = Matrix::from_fn(n1, n2, |j1, j2| x[j1 * n2 + j2]);
    let f = cached_dft_matrix(n1);
    let c = Matrix::zeros(n1, n2);
    let t = exec.try_cgemm_c32(&f, &m, &c)?;
    stats.merge(&t.stats);

    // Step 2: twiddle factors w_N^{k1 * j2}.
    let mut rows: Vec<Vec<C32>> = Vec::with_capacity(n1);
    for k1 in 0..n1 {
        let mut row: Vec<C32> = Vec::with_capacity(n2);
        for j2 in 0..n2 {
            let ang = -2.0 * std::f64::consts::PI * (k1 as f64) * (j2 as f64) / n as f64;
            let w64 = Complex::<f64>::cis(ang);
            let w = Complex::new(w64.re as f32, w64.im as f32);
            row.push(t.d.get(k1, j2) * w);
        }
        rows.push(row);
    }

    // Step 3: row FFTs (recursion), step 4: interleaved write-back.
    let mut out = vec![C32::ZERO; n];
    for (k1, row) in rows.iter().enumerate() {
        let sub = gemm_fft_inner(row, exec, stats)?;
        for (k2, &v) in sub.iter().enumerate() {
            out[k1 + n1 * k2] = v;
        }
    }
    Ok(out)
}

/// Maximum relative L2 error between two spectra (for accuracy tests).
pub fn spectrum_rel_error(got: &[C32], reference: &[C32]) -> f64 {
    assert_eq!(got.len(), reference.len());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (g, r) in got.iter().zip(reference) {
        let dr = g.re as f64 - r.re as f64;
        let di = g.im as f64 - r.im as f64;
        num += dr * dr + di * di;
        den += (r.re as f64).powi(2) + (r.im as f64).powi(2);
    }
    (num / den.max(1e-300)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, seed: u64) -> Vec<C32> {
        let m = Matrix::random_c32(n, 1, seed);
        (0..n).map(|i| m.get(i, 0)).collect()
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![C32::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        for v in dft(&x) {
            assert!((v.re - 1.0).abs() < 1e-6 && v.im.abs() < 1e-6);
        }
    }

    #[test]
    fn dft_of_pure_tone_is_a_spike() {
        let n = 16;
        let x: Vec<C32> = (0..n)
            .map(|j| {
                let w = Complex::<f64>::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64);
                Complex::new(w.re as f32, w.im as f32)
            })
            .collect();
        let s = dft(&x);
        assert!((s[3].re - n as f32).abs() < 1e-3);
        for (k, v) in s.iter().enumerate() {
            if k != 3 {
                assert!(v.abs() < 1e-3, "leak at bin {k}: {v}");
            }
        }
    }

    #[test]
    fn radix2_matches_dft() {
        for n in [2usize, 8, 64, 256] {
            let x = signal(n, n as u64);
            let err = spectrum_rel_error(&radix2(&x), &dft(&x));
            assert!(err < 1e-5, "n={n}: err={err}");
        }
    }

    #[test]
    fn radix2_inverse_roundtrip() {
        let x = signal(128, 7);
        let back = inverse_radix2(&radix2(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_fft_matches_dft_at_base_case() {
        let x = signal(16, 9);
        let (got, stats) = gemm_fft(&x);
        let err = spectrum_rel_error(&got, &dft(&x));
        assert!(err < 1e-6, "err={err}");
        assert!(stats.instructions > 0, "must have used the MXU");
    }

    #[test]
    fn gemm_fft_matches_dft_multi_level() {
        for n in [64usize, 256, 1024] {
            let x = signal(n, n as u64 + 1);
            let (got, _) = gemm_fft(&x);
            let err = spectrum_rel_error(&got, &dft(&x));
            assert!(err < 1e-5, "n={n}: err={err}");
        }
    }

    #[test]
    fn gemm_fft_accuracy_comparable_to_radix2() {
        // M3XU computes FP32C exactly per MMA, so the GEMM formulation
        // should be at least as accurate as the scalar radix-2 chain.
        let n = 4096;
        let x = signal(n, 33);
        let gold = dft(&x);
        let e_gemm = spectrum_rel_error(&gemm_fft(&x).0, &gold);
        let e_radix = spectrum_rel_error(&radix2(&x), &gold);
        assert!(e_gemm < e_radix * 4.0, "gemm {e_gemm} vs radix2 {e_radix}");
        assert!(e_gemm < 1e-5);
    }

    #[test]
    fn parsevals_theorem_holds() {
        let n = 256;
        let x = signal(n, 5);
        let (s, _) = gemm_fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr() as f64).sum();
        let freq_energy: f64 = s.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-5);
    }

    #[test]
    fn try_fft_entry_points_reject_non_power_of_two() {
        let x = signal(12, 3);
        for err in [
            try_radix2(&x).unwrap_err(),
            try_inverse_radix2(&x).unwrap_err(),
            try_gemm_fft(&x).map(|_| ()).unwrap_err(),
        ] {
            assert!(matches!(
                err,
                M3xuError::NonPowerOfTwoLength { len: 12, .. }
            ));
        }
    }

    #[test]
    fn dft_cache_recovers_from_lock_poisoning() {
        // Poison the cache mutex by panicking while holding its guard …
        let poisoner = std::thread::spawn(|| {
            let _guard = DFT_CACHE.lock().unwrap_or_else(|e| e.into_inner());
            panic!("poison the DFT cache on purpose");
        });
        assert!(poisoner.join().is_err());
        // … and the very next FFT must still succeed with a correct result.
        let x = signal(64, 21);
        let (got, _) = try_gemm_fft(&x).expect("gemm_fft after cache poisoning");
        let err = spectrum_rel_error(&got, &dft(&x));
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn dft_matrix_is_symmetric_unitary_scaled() {
        let f = dft_matrix(8);
        // F is symmetric: F[k][j] == F[j][k].
        for k in 0..8 {
            for j in 0..8 {
                let a = f.get(k, j);
                let b = f.get(j, k);
                assert!((a.re - b.re).abs() < 1e-7 && (a.im - b.im).abs() < 1e-7);
            }
        }
    }
}
