//! 2-D FFT on the M3XU — row FFTs then column FFTs, each a batch of
//! GEMM-formulated 1-D transforms (the image/signal-processing workloads
//! the paper's introduction motivates).

use super::{try_gemm_fft_on, C32};
use crate::context::{default_context, GemmExecutor};
use m3xu_fp::complex::Complex;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::MmaStats;

/// Forward 2-D FFT (unnormalised) of a `rows x cols` complex image.
/// Both dimensions must be powers of two. Panics on invalid dimensions;
/// see [`try_fft2d`] for the fallible form.
pub fn fft2d(image: &Matrix<C32>) -> (Matrix<C32>, MmaStats) {
    try_fft2d(image).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`fft2d`]: rejects a non-power-of-two row or column count
/// with [`M3xuError::NonPowerOfTwoLength`] instead of panicking.
/// Executes on the process-wide default context.
pub fn try_fft2d(image: &Matrix<C32>) -> Result<(Matrix<C32>, MmaStats), M3xuError> {
    try_fft2d_on(default_context(), image)
}

/// [`try_fft2d`] on an explicit [`GemmExecutor`]: every 1-D transform's
/// CGEMMs run through `exec`.
pub fn try_fft2d_on<X: GemmExecutor>(
    exec: &X,
    image: &Matrix<C32>,
) -> Result<(Matrix<C32>, MmaStats), M3xuError> {
    let (r, c) = (image.rows(), image.cols());
    // Validate both extents up front so a bad column count is reported
    // before any row work is spent.
    for (context, len) in [("fft2d(rows)", r), ("fft2d(cols)", c)] {
        if !len.is_power_of_two() {
            return Err(M3xuError::NonPowerOfTwoLength { context, len });
        }
    }
    let mut stats = MmaStats::default();
    // Row transforms.
    let mut tmp = Matrix::<C32>::zeros(r, c);
    for i in 0..r {
        let (row, s) = try_gemm_fft_on(exec, image.row(i))?;
        stats.merge(&s);
        for (j, v) in row.into_iter().enumerate() {
            tmp.set(i, j, v);
        }
    }
    // Column transforms.
    let mut out = Matrix::<C32>::zeros(r, c);
    let tt = tmp.transpose();
    for j in 0..c {
        let (col, s) = try_gemm_fft_on(exec, tt.row(j))?;
        stats.merge(&s);
        for (i, v) in col.into_iter().enumerate() {
            out.set(i, j, v);
        }
    }
    Ok((out, stats))
}

/// Inverse 2-D FFT (scaled by `1/(rows*cols)`). Panics on invalid
/// dimensions; see [`try_ifft2d`].
pub fn ifft2d(spectrum: &Matrix<C32>) -> Matrix<C32> {
    try_ifft2d(spectrum).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`ifft2d`]. Executes on the process-wide default context.
pub fn try_ifft2d(spectrum: &Matrix<C32>) -> Result<Matrix<C32>, M3xuError> {
    try_ifft2d_on(default_context(), spectrum)
}

/// [`try_ifft2d`] on an explicit [`GemmExecutor`].
pub fn try_ifft2d_on<X: GemmExecutor>(
    exec: &X,
    spectrum: &Matrix<C32>,
) -> Result<Matrix<C32>, M3xuError> {
    let (r, c) = (spectrum.rows(), spectrum.cols());
    let conj = Matrix::from_fn(r, c, |i, j| spectrum.get(i, j).conj());
    let (f, _) = try_fft2d_on(exec, &conj)?;
    let scale = 1.0 / (r * c) as f32;
    Ok(Matrix::from_fn(r, c, |i, j| {
        f.get(i, j).conj().scale(scale)
    }))
}

/// Reference 2-D DFT in f64 (for tests; O(N⁴) — keep it small).
pub fn dft2d_reference(image: &Matrix<C32>) -> Matrix<C32> {
    let (r, c) = (image.rows(), image.cols());
    Matrix::from_fn(r, c, |ki, kj| {
        let mut re = 0.0f64;
        let mut im = 0.0f64;
        for i in 0..r {
            for j in 0..c {
                let ang = -2.0
                    * std::f64::consts::PI
                    * (ki as f64 * i as f64 / r as f64 + kj as f64 * j as f64 / c as f64);
                let (s, co) = ang.sin_cos();
                let v = image.get(i, j);
                re += v.re as f64 * co - v.im as f64 * s;
                im += v.re as f64 * s + v.im as f64 * co;
            }
        }
        Complex::new(re as f32, im as f32)
    })
}

/// Frequency-domain low-pass filter: zero every bin whose (wrapped)
/// frequency index exceeds `cutoff` in either dimension, then invert.
pub fn lowpass(image: &Matrix<C32>, cutoff: usize) -> Matrix<C32> {
    let (r, c) = (image.rows(), image.cols());
    let (mut f, _) = fft2d(image);
    for i in 0..r {
        for j in 0..c {
            let fi = i.min(r - i);
            let fj = j.min(c - j);
            if fi > cutoff || fj > cutoff {
                f.set(i, j, C32::ZERO);
            }
        }
    }
    ifft2d(&f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(r: usize, c: usize, seed: u64) -> Matrix<C32> {
        Matrix::random_c32(r, c, seed)
    }

    #[test]
    fn matches_reference_dft2d() {
        let img = image(8, 16, 1);
        let (got, stats) = fft2d(&img);
        let gold = dft2d_reference(&img);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..8 {
            for j in 0..16 {
                let d = got.get(i, j) - gold.get(i, j);
                num += d.norm_sqr() as f64;
                den += gold.get(i, j).norm_sqr() as f64;
            }
        }
        assert!((num / den).sqrt() < 1e-5);
        assert!(stats.instructions > 0);
    }

    #[test]
    fn roundtrip() {
        let img = image(16, 16, 2);
        let (f, _) = fft2d(&img);
        let back = ifft2d(&f);
        for i in 0..16 {
            for j in 0..16 {
                let d = back.get(i, j) - img.get(i, j);
                assert!(d.abs() < 1e-4, "({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut img = Matrix::<C32>::zeros(8, 8);
        img.set(0, 0, Complex::new(1.0, 0.0));
        let (f, _) = fft2d(&img);
        for i in 0..8 {
            for j in 0..8 {
                assert!((f.get(i, j).re - 1.0).abs() < 1e-5);
                assert!(f.get(i, j).im.abs() < 1e-5);
            }
        }
    }

    #[test]
    fn try_fft2d_rejects_non_power_of_two_extents() {
        let bad_rows = image(6, 8, 4);
        assert!(matches!(
            try_fft2d(&bad_rows).map(|_| ()).unwrap_err(),
            M3xuError::NonPowerOfTwoLength { len: 6, .. }
        ));
        let bad_cols = image(8, 12, 5);
        assert!(matches!(
            try_fft2d(&bad_cols).map(|_| ()).unwrap_err(),
            M3xuError::NonPowerOfTwoLength { len: 12, .. }
        ));
        assert!(matches!(
            try_ifft2d(&bad_cols).map(|_| ()).unwrap_err(),
            M3xuError::NonPowerOfTwoLength { len: 12, .. }
        ));
    }

    #[test]
    fn lowpass_preserves_dc_and_removes_checkerboard() {
        // DC + Nyquist checkerboard; a tight low-pass keeps only DC.
        let img = Matrix::from_fn(8, 8, |i, j| {
            let checker = if (i + j) % 2 == 0 { 1.0f32 } else { -1.0 };
            Complex::new(2.0 + checker, 0.0)
        });
        let filtered = lowpass(&img, 1);
        for i in 0..8 {
            for j in 0..8 {
                assert!((filtered.get(i, j).re - 2.0).abs() < 1e-4, "({i},{j})");
            }
        }
    }
}
