//! Fig. 6: end-to-end FFT performance — M3XU vs cuFFT vs TF32-tcFFT.
//!
//! All three engines execute a staged Stockham-style FFT over HBM-resident
//! data; what differs is who does the butterfly math and how many
//! global-memory passes the stage fusion needs:
//!
//! * **cuFFT** (SIMT): fuses up to 4096 points (12 bits) per shared-memory
//!   pass; the strided global transposes between passes degrade its
//!   achieved bandwidth as N grows (a well-documented cuFFT behaviour).
//! * **M3XU FFT**: radix-16 stages are complex GEMMs on the M3XU's FP32C
//!   mode (Corollary 3 throughput); three radix-16 stages fuse per
//!   shared-memory pass, and the GEMM formulation streams contiguously
//!   (high bandwidth efficiency).
//! * **tcFFT extended to TF32** (§VI-C1's fair-comparison baseline): the
//!   same GEMM structure, but each complex GEMM costs 3 TF32 passes and
//!   streams the split term matrices — it loses the memory-efficiency
//!   advantage, which is why the paper finds it "does not improve
//!   performance over cuFFT".

use m3xu_gpu::GpuConfig;

/// The Fig. 6 size sweep: 2^8 … 2^24 points.
pub fn fig6_sizes() -> Vec<usize> {
    (8..=24).step_by(2).map(|b| 1usize << b).collect()
}

/// One FFT engine's modelled execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftEngine {
    /// cuFFT on CUDA cores (the Fig. 6 baseline).
    CuFft,
    /// tcFFT extended to TF32 tensor cores.
    TcFftTf32,
    /// The M3XU FP32C GEMM formulation.
    M3xu,
}
impl m3xu_json::ToJson for FftEngine {
    fn to_json(&self) -> m3xu_json::Json {
        m3xu_json::Json::Str(format!("{self:?}"))
    }
}

/// Total points per workload: each Fig. 6 size runs as a batch of
/// transforms totalling 2^26 points (throughput evaluation, as in tcFFT),
/// so kernel-launch costs amortise identically across engines.
pub const BATCH_POINTS: f64 = (1u64 << 26) as f64;

/// Bytes of one complex-to-complex pass over the whole batch.
fn pass_bytes() -> f64 {
    2.0 * 8.0 * BATCH_POINTS
}

/// Modelled wall-clock seconds for a batch of length-`n` C2C FFTs
/// totalling [`BATCH_POINTS`] points.
pub fn fft_time(engine: FftEngine, n: usize, gpu: &GpuConfig) -> f64 {
    let log2n = (n as f64).log2();
    let hbm = gpu.hbm_gbs * 1e9;
    match engine {
        FftEngine::CuFft => {
            // 4096-point shared-memory fusion; strided inter-pass
            // transposes cost bandwidth efficiency as N grows.
            let passes = (log2n / 12.0).ceil();
            // Strided inter-pass transposes and twiddle re-reads degrade
            // cuFFT's achieved bandwidth as transform length grows.
            let eff = (0.62 - 0.012 * (log2n - 8.0)).max(0.40);
            let mem = passes * pass_bytes() / (hbm * eff);
            let flops = 5.0 * BATCH_POINTS * log2n;
            let compute = flops / (gpu.at_experiment_clock(gpu.fp32_simt_tflops) * 1e12 * 0.6);
            mem.max(compute) + passes * gpu.launch_overhead_s
        }
        FftEngine::M3xu => {
            // Radix-16 GEMM stages; 3 stages (4096 points) fuse per pass.
            let stages = (log2n / 4.0).ceil();
            let passes = (stages / 3.0).ceil();
            // 8 real flops per complex MAC x 16 MACs per point per stage.
            let flops = 8.0 * 16.0 * BATCH_POINTS * stages;
            let rate = gpu.at_experiment_clock(gpu.m3xu_fp32c_real_tflops()) * 1e12 * 0.94;
            let compute = flops / rate;
            // The GEMM formulation streams contiguous fragments.
            let mem = passes * pass_bytes() / (hbm * 0.85);
            mem.max(compute) + passes * gpu.launch_overhead_s
        }
        FftEngine::TcFftTf32 => {
            // Same GEMM structure, 3 TF32 passes per complex GEMM (12 real
            // GEMMs), plus split-term streaming (1.8x the bytes).
            let stages = (log2n / 4.0).ceil();
            let passes = (stages / 3.0).ceil();
            let flops = 3.0 * 8.0 * 16.0 * BATCH_POINTS * stages;
            let rate = gpu.at_experiment_clock(gpu.tf32_tc_tflops) * 1e12 * 0.90;
            let compute = flops / rate;
            let mem = passes * pass_bytes() * 1.8 / (hbm * 0.85);
            // Decoupling pass over the data.
            let decouple = pass_bytes() / hbm;
            mem.max(compute) + decouple + (passes + 1.0) * gpu.launch_overhead_s
        }
    }
}

/// One Fig. 6 point: speedups of each engine over cuFFT.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// FFT length.
    pub n: usize,
    /// tcFFT-TF32 speedup over cuFFT.
    pub tcfft_tf32: f64,
    /// M3XU speedup over cuFFT.
    pub m3xu: f64,
}
m3xu_json::impl_to_json!(Fig6Point {
    n,
    tcfft_tf32,
    m3xu
});

/// The full Fig. 6 sweep.
pub fn figure6(gpu: &GpuConfig) -> Vec<Fig6Point> {
    fig6_sizes()
        .into_iter()
        .map(|n| {
            let base = fft_time(FftEngine::CuFft, n, gpu);
            Fig6Point {
                n,
                tcfft_tf32: base / fft_time(FftEngine::TcFftTf32, n, gpu),
                m3xu: base / fft_time(FftEngine::M3xu, n, gpu),
            }
        })
        .collect()
}

/// Render Fig. 6 as aligned text.
pub fn render_figure6(points: &[Fig6Point]) -> String {
    let mut out = format!("{:>10} {:>12} {:>12}\n", "N", "tcFFT-TF32", "M3XU");
    for p in points {
        out.push_str(&format!(
            "{:>10} {:>12.2} {:>12.2}\n",
            p.n, p.tcfft_tf32, p.m3xu
        ));
    }
    let mean: f64 = points.iter().map(|p| p.m3xu).sum::<f64>() / points.len() as f64;
    let max = points.iter().map(|p| p.m3xu).fold(f64::MIN, f64::max);
    out.push_str(&format!("M3XU mean {mean:.2}x, max {max:.2}x over cuFFT\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuConfig {
        GpuConfig::a100_40gb()
    }

    /// Fig. 6 headline: M3XU up to ~1.99x and ~1.52x average over cuFFT.
    #[test]
    fn m3xu_fft_headline() {
        let f = figure6(&gpu());
        let mean: f64 = f.iter().map(|p| p.m3xu).sum::<f64>() / f.len() as f64;
        let max = f.iter().map(|p| p.m3xu).fold(f64::MIN, f64::max);
        assert!((1.3..1.8).contains(&mean), "mean = {mean}");
        assert!((1.7..2.1).contains(&max), "max = {max}");
    }

    /// Fig. 6: tcFFT-TF32 does not improve over cuFFT.
    #[test]
    fn tcfft_tf32_no_improvement() {
        let f = figure6(&gpu());
        for p in &f {
            assert!(
                p.tcfft_tf32 < 1.15,
                "tcFFT-TF32 at n={}: {}",
                p.n,
                p.tcfft_tf32
            );
        }
    }

    /// Speedup grows with size (memory-pass advantage dominates at scale).
    #[test]
    fn m3xu_speedup_grows_with_n() {
        let f = figure6(&gpu());
        assert!(f.last().unwrap().m3xu > f.first().unwrap().m3xu);
    }

    #[test]
    fn longer_transforms_cost_more_per_point() {
        // Fixed total points: longer transforms need more passes/stages.
        let g = gpu();
        let t1 = fft_time(FftEngine::CuFft, 1 << 12, &g);
        let t2 = fft_time(FftEngine::CuFft, 1 << 24, &g);
        assert!(t2 > t1 * 1.5, "t(2^24)={t2} vs t(2^12)={t1}");
    }

    #[test]
    fn render_mentions_all_sizes() {
        let g = gpu();
        let txt = render_figure6(&figure6(&g));
        assert!(txt.contains("16777216")); // 2^24
        assert!(txt.contains("256"));
    }
}
