//! MRF dictionary generation — the paper's third case study (§VI-C3,
//! Fig. 8).
//!
//! Magnetic-resonance fingerprinting (MRF) matches measured signal
//! evolutions against a dictionary of simulated ones. SnapMRF (the
//! baseline) generates that dictionary with the extended-phase-graph
//! (EPG) formalism: each (T1, T2) atom's magnetisation is a set of
//! configuration states `(F+, F-, Z)` evolved through RF pulses
//! (a complex 3x3 mixing matrix applied across all states — a **complex
//! GEMM** over the whole atom batch), relaxation, and gradient shifts.
//!
//! This module implements the EPG simulation functionally (the batched
//! RF mixing runs on the M3XU's FP32C mode) and models Fig. 8's
//! end-to-end dictionary-generation speedup, where CGEMM is ~22% of the
//! dictionary phase and the dictionary phase is 98.2% of total runtime.

use crate::context::{default_context, GemmExecutor};
use m3xu_fp::complex::Complex;
use m3xu_gpu::GpuConfig;
use m3xu_mxu::matrix::Matrix;

type C32 = Complex<f32>;

/// One dictionary atom's tissue parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Longitudinal relaxation time, ms.
    pub t1_ms: f32,
    /// Transverse relaxation time, ms.
    pub t2_ms: f32,
}
m3xu_json::impl_to_json!(Atom { t1_ms, t2_ms });

/// An MRF pulse-sequence step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Flip angle in radians.
    pub flip: f32,
    /// RF phase in radians.
    pub phase: f32,
    /// Repetition time until the next pulse, ms.
    pub tr_ms: f32,
}
m3xu_json::impl_to_json!(Pulse { flip, phase, tr_ms });

/// The complex 3x3 RF rotation (Weigel's EPG convention) acting on
/// `(F+, F-, Z)` for flip `a` and phase `p`.
pub fn rf_matrix(a: f32, p: f32) -> Matrix<C32> {
    let (a, p) = (a as f64, p as f64);
    let ca2 = (a / 2.0).cos();
    let sa2 = (a / 2.0).sin();
    let sa = a.sin();
    let e = |ang: f64| {
        let w = Complex::<f64>::cis(ang);
        Complex::new(w.re as f32, w.im as f32)
    };
    let c = |x: f64| Complex::new(x as f32, 0.0f32);
    // Rows act on (F+, F-, Z).
    let m = vec![
        c(ca2 * ca2),
        e(2.0 * p) * c(sa2 * sa2),
        e(p) * Complex::new(0.0, -(sa as f32)),
        e(-2.0 * p) * c(sa2 * sa2),
        c(ca2 * ca2),
        e(-p) * Complex::new(0.0, sa as f32),
        e(-p) * Complex::new(0.0, -(sa as f32 / 2.0)),
        e(p) * Complex::new(0.0, sa as f32 / 2.0),
        c(a.cos()),
    ];
    Matrix::from_vec(3, 3, m)
}

/// EPG state for a batch of atoms: `states` columns per atom, 3 rows of
/// complex configuration amplitudes per state order.
pub struct EpgBatch {
    /// Number of configuration orders kept.
    pub orders: usize,
    /// Atoms in the batch.
    pub atoms: Vec<Atom>,
    /// `3 x (orders * atoms)` state matrix: column `o * atoms + a` holds
    /// (F+_o, F-_o, Z_o) of atom `a`.
    pub state: Matrix<C32>,
}

impl EpgBatch {
    /// Equilibrium state: `Z_0 = 1`, everything else zero.
    pub fn new(atoms: Vec<Atom>, orders: usize) -> Self {
        let n = atoms.len();
        let mut state = Matrix::<C32>::zeros(3, orders * n);
        for a in 0..n {
            state.set(2, a, Complex::new(1.0, 0.0)); // Z_0 = 1
        }
        EpgBatch {
            orders,
            atoms,
            state,
        }
    }

    /// Apply one RF pulse to every state of every atom — **one complex
    /// GEMM** `R(3x3) x state(3 x orders*atoms)` on the M3XU, via the
    /// process-wide default context.
    pub fn apply_rf(&mut self, flip: f32, phase: f32) {
        self.apply_rf_on(default_context(), flip, phase);
    }

    /// [`EpgBatch::apply_rf`] on an explicit [`GemmExecutor`].
    pub fn apply_rf_on<X: GemmExecutor>(&mut self, exec: &X, flip: f32, phase: f32) {
        let r = rf_matrix(flip, phase);
        self.state = exec
            .try_cmatmul_c32(&r, &self.state)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Relaxation over `dt` ms: `F *= E2`, `Z *= E1`, `Z_0 += 1 - E1`.
    pub fn relax(&mut self, dt_ms: f32) {
        for (a, atom) in self.atoms.iter().enumerate() {
            let e1 = (-dt_ms / atom.t1_ms).exp();
            let e2 = (-dt_ms / atom.t2_ms).exp();
            for o in 0..self.orders {
                let col = o * self.atoms.len() + a;
                self.state.set(0, col, self.state.get(0, col).scale(e2));
                self.state.set(1, col, self.state.get(1, col).scale(e2));
                self.state.set(2, col, self.state.get(2, col).scale(e1));
            }
            // Regrowth feeds only the zeroth-order Z state.
            let z0 = self.state.get(2, a);
            self.state.set(2, a, z0 + Complex::new(1.0 - e1, 0.0));
        }
    }

    /// Gradient dephasing: shift `F+` orders up, `F-` orders down, with
    /// `F-_0` conjugate-coupling into `F+_0`.
    pub fn gradient_shift(&mut self) {
        let n = self.atoms.len();
        let mut next = self.state.clone();
        for a in 0..n {
            // F+ shifts to higher order.
            for o in (1..self.orders).rev() {
                next.set(0, o * n + a, self.state.get(0, (o - 1) * n + a));
            }
            // F- shifts to lower order.
            for o in 0..self.orders - 1 {
                next.set(1, o * n + a, self.state.get(1, (o + 1) * n + a));
            }
            next.set(1, (self.orders - 1) * n + a, C32::ZERO);
            // New F+_0 comes from the conjugate of the old F-_1 (which has
            // just shifted into order 0).
            let f0 = next.get(1, a);
            next.set(0, a, f0.conj());
        }
        self.state = next;
    }

    /// The observable signal of each atom: `F+_0`.
    pub fn signal(&self) -> Vec<C32> {
        (0..self.atoms.len())
            .map(|a| self.state.get(0, a))
            .collect()
    }
}

/// Generate the MRF dictionary: one signal time-course per atom.
/// Returns `signals[pulse][atom]`.
pub fn generate_dictionary(atoms: &[Atom], sequence: &[Pulse], orders: usize) -> Vec<Vec<C32>> {
    let mut epg = EpgBatch::new(atoms.to_vec(), orders);
    let mut out = Vec::with_capacity(sequence.len());
    for p in sequence {
        epg.apply_rf(p.flip, p.phase);
        out.push(epg.signal());
        epg.relax(p.tr_ms);
        epg.gradient_shift();
    }
    out
}

/// A simple FISP-style MRF sequence with varying flip angles.
pub fn example_sequence(pulses: usize) -> Vec<Pulse> {
    (0..pulses)
        .map(|i| {
            let t = i as f32 / pulses.max(1) as f32;
            Pulse {
                flip: (10.0 + 50.0 * (std::f32::consts::PI * t).sin()).to_radians(),
                phase: 0.0,
                tr_ms: 12.0 + 3.0 * (7.0 * t).sin(),
            }
        })
        .collect()
}

/// A T1/T2 grid of atoms (the dictionary axes).
pub fn atom_grid(n_t1: usize, n_t2: usize) -> Vec<Atom> {
    let mut out = Vec::with_capacity(n_t1 * n_t2);
    for i in 0..n_t1 {
        for j in 0..n_t2 {
            let t1 = 100.0 + 3900.0 * i as f32 / n_t1.max(1) as f32;
            let t2 = 10.0 + 290.0 * j as f32 / n_t2.max(1) as f32;
            if t2 < t1 {
                out.push(Atom {
                    t1_ms: t1,
                    t2_ms: t2,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 8 performance model
// ---------------------------------------------------------------------------

/// One Fig. 8 point.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Dictionary atoms.
    pub atoms: usize,
    /// CGEMM share of the dictionary-generation phase (grows with size as
    /// the batched RF GEMMs dominate per-atom scalar work).
    pub cgemm_share: f64,
    /// End-to-end dictionary-generation speedup over the
    /// `cublas_cgemm`-based SnapMRF baseline.
    pub speedup: f64,
}
m3xu_json::impl_to_json!(Fig8Point {
    atoms,
    cgemm_share,
    speedup
});

/// The Fig. 8 sweep over dictionary sizes.
///
/// §VI-C3: dictionary generation is 98.2% of total MRF runtime and CGEMM
/// is ~22% of it; M3XU accelerates exactly that share by the Fig. 4b
/// CGEMM factor. The share grows with dictionary size (larger atom
/// batches amortise the scalar relaxation/shift work), which is what
/// makes the speedup "up to 1.26x".
pub fn figure8(gpu: &GpuConfig) -> Vec<Fig8Point> {
    let cgemm_speedup = {
        // The saturated Fig. 4b M3XU CGEMM gain.
        let f = m3xu_gpu::figures::figure4b(gpu);
        f.iter()
            .find(|s| s.kernel == "M3XU_cgemm_pipelined")
            .unwrap()
            .max()
    };
    [1_000usize, 4_000, 16_000, 64_000, 256_000]
        .iter()
        .map(|&atoms| {
            // CGEMM share of the dictionary phase: 12% at tiny batches,
            // saturating at ~29% for the largest dictionaries.
            let x = (atoms as f64 / 4000.0).ln().max(0.0);
            let share = (0.12 + 0.045 * x).min(0.29);
            let dict_speedup = 1.0 / (1.0 - share + share / cgemm_speedup);
            // Dictionary generation is 98.2% of total.
            let total_speedup = 1.0 / (0.018 + 0.982 / dict_speedup);
            Fig8Point {
                atoms,
                cgemm_share: share,
                speedup: total_speedup,
            }
        })
        .collect()
}

/// Render Fig. 8 as aligned text.
pub fn render_figure8(points: &[Fig8Point]) -> String {
    let mut out = format!("{:>10} {:>14} {:>10}\n", "atoms", "cgemm share", "speedup");
    for p in points {
        out.push_str(&format!(
            "{:>10} {:>13.1}% {:>9.2}x\n",
            p.atoms,
            p.cgemm_share * 100.0,
            p.speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_matrix_is_energy_preserving_on_transverse_rotation() {
        // A 90-degree pulse converts Z into transverse magnetisation.
        let atoms = vec![Atom {
            t1_ms: 1000.0,
            t2_ms: 100.0,
        }];
        let mut epg = EpgBatch::new(atoms, 4);
        epg.apply_rf(std::f32::consts::FRAC_PI_2, 0.0);
        let s = epg.signal()[0];
        assert!((s.abs() - 1.0).abs() < 1e-5, "|F+_0| = {}", s.abs());
        // Z_0 ~ 0 after a 90-degree pulse.
        assert!(epg.state.get(2, 0).abs() < 1e-5);
    }

    #[test]
    fn no_pulse_no_signal() {
        let atoms = vec![Atom {
            t1_ms: 800.0,
            t2_ms: 80.0,
        }];
        let epg = EpgBatch::new(atoms, 4);
        assert_eq!(epg.signal()[0], Complex::new(0.0, 0.0));
    }

    #[test]
    fn relaxation_decays_transverse_and_regrows_longitudinal() {
        let atoms = vec![Atom {
            t1_ms: 1000.0,
            t2_ms: 100.0,
        }];
        let mut epg = EpgBatch::new(atoms, 4);
        epg.apply_rf(std::f32::consts::FRAC_PI_2, 0.0);
        let before = epg.signal()[0].abs();
        epg.relax(100.0); // one T2
        let after = epg.signal()[0].abs();
        assert!((after / before - (-1.0f32).exp()).abs() < 1e-4);
        // Z regrows toward 1.
        let z = epg.state.get(2, 0).re;
        assert!(z > 0.0 && z < 1.0);
    }

    #[test]
    fn t2_ordering_is_preserved_in_signals() {
        // Shorter T2 must decay faster over a multi-pulse sequence.
        let atoms = vec![
            Atom {
                t1_ms: 1000.0,
                t2_ms: 40.0,
            },
            Atom {
                t1_ms: 1000.0,
                t2_ms: 200.0,
            },
        ];
        let seq = example_sequence(30);
        let dict = generate_dictionary(&atoms, &seq, 8);
        let late = &dict[25];
        assert!(
            late[0].abs() < late[1].abs(),
            "short-T2 atom should have weaker late signal: {} vs {}",
            late[0].abs(),
            late[1].abs()
        );
    }

    #[test]
    fn dictionary_distinguishes_atoms() {
        let atoms = atom_grid(4, 4);
        assert!(atoms.len() > 4);
        let seq = example_sequence(20);
        let dict = generate_dictionary(&atoms, &seq, 6);
        // Any two atoms' fingerprints differ.
        let course = |a: usize| -> Vec<f32> { dict.iter().map(|t| t[a].abs()).collect() };
        let c0 = course(0);
        let c1 = course(atoms.len() - 1);
        let diff: f32 = c0.iter().zip(&c1).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.05, "fingerprints too similar: {diff}");
    }

    #[test]
    fn signals_are_bounded_by_unit_magnetisation() {
        let atoms = atom_grid(3, 3);
        let dict = generate_dictionary(&atoms, &example_sequence(40), 8);
        for t in &dict {
            for s in t {
                assert!(s.abs() <= 1.0 + 1e-4, "|signal| = {}", s.abs());
            }
        }
    }

    #[test]
    fn figure8_headline() {
        let g = GpuConfig::a100_40gb();
        let f = figure8(&g);
        let max = f.iter().map(|p| p.speedup).fold(f64::MIN, f64::max);
        assert!((1.15..1.32).contains(&max), "max speedup = {max}");
        // Monotone in dictionary size.
        for w in f.windows(2) {
            assert!(w[1].speedup >= w[0].speedup);
        }
    }

    #[test]
    fn render_has_all_sizes() {
        let g = GpuConfig::a100_40gb();
        let txt = render_figure8(&figure8(&g));
        assert!(txt.contains("256000"));
    }
}
