//! Convolution backward passes (dgrad / wgrad) on the M3XU — the GEMMs
//! that §VI-C2's "M3XU reveals 3.6x speedup for a backward pass" refers
//! to. Both gradients lower to GEMMs exactly like the forward pass:
//!
//! * **wgrad** `dW = dY · im2col(X)ᵀ` — the same column matrix as the
//!   forward, multiplied from the other side;
//! * **dgrad** `dX = col2im(Wᵀ · dY)` — the transposed filter bank times
//!   the output gradient, scattered back through the im2col mapping.
//!
//! Correctness is pinned by finite-difference gradient checks against the
//! forward convolution.

use crate::context::{default_context, GemmExecutor};
use crate::conv2d::{im2col, ConvSpec, Tensor3};
use crate::gemm::GemmPrecision;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::MmaStats;

/// Filter gradient `dW` (shape `out_ch x in_ch*k*k`) for loss gradient
/// `dy` (shape `out_ch x oh x ow`). Panics on invalid arguments; see
/// [`try_conv2d_wgrad`] for the fallible form.
pub fn conv2d_wgrad(
    precision: GemmPrecision,
    x: &Tensor3,
    dy: &Tensor3,
    spec: ConvSpec,
) -> (Matrix<f32>, MmaStats) {
    try_conv2d_wgrad(precision, x, dy, spec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`conv2d_wgrad`]: validates the spec and the `dy` spatial
/// shape against the forward pass's output extents. Executes on the
/// process-wide default context.
pub fn try_conv2d_wgrad(
    precision: GemmPrecision,
    x: &Tensor3,
    dy: &Tensor3,
    spec: ConvSpec,
) -> Result<(Matrix<f32>, MmaStats), M3xuError> {
    try_conv2d_wgrad_on(default_context(), precision, x, dy, spec)
}

/// [`try_conv2d_wgrad`] on an explicit [`GemmExecutor`].
pub fn try_conv2d_wgrad_on<X: GemmExecutor>(
    exec: &X,
    precision: GemmPrecision,
    x: &Tensor3,
    dy: &Tensor3,
    spec: ConvSpec,
) -> Result<(Matrix<f32>, MmaStats), M3xuError> {
    spec.validate(x.h, x.w)?;
    let oh = spec.out_extent(x.h);
    let ow = spec.out_extent(x.w);
    if (dy.h, dy.w) != (oh, ow) {
        return Err(M3xuError::ShapeMismatch {
            context: "conv2d_wgrad(dy): spatial shape must match forward output",
            expected: (oh, ow),
            got: (dy.h, dy.w),
        });
    }
    let cols = im2col(x, spec); // (in_ch*k*k) x (oh*ow)
    let dy_m = Matrix::from_fn(dy.c, oh * ow, |o, p| dy.get(o, p / ow, p % ow));
    let c = Matrix::zeros(dy.c, cols.rows());
    let r = exec.try_gemm_f32(precision, &dy_m, &cols.transpose(), &c)?;
    Ok((r.d, r.stats))
}

/// Bias gradient: per-output-channel sum of `dy`.
pub fn conv2d_bgrad(dy: &Tensor3) -> Vec<f32> {
    (0..dy.c)
        .map(|o| {
            let mut s = 0.0f32;
            for h in 0..dy.h {
                for w in 0..dy.w {
                    s += dy.get(o, h, w);
                }
            }
            s
        })
        .collect()
}

/// Input gradient `dX` for loss gradient `dy`. Panics on invalid
/// arguments; see [`try_conv2d_dgrad`] for the fallible form.
pub fn conv2d_dgrad(
    precision: GemmPrecision,
    filters: &Matrix<f32>,
    dy: &Tensor3,
    in_shape: (usize, usize, usize),
    spec: ConvSpec,
) -> (Tensor3, MmaStats) {
    try_conv2d_dgrad(precision, filters, dy, in_shape, spec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`conv2d_dgrad`]: validates the spec, the `dy` shape and the
/// filter-bank shape against the stated input shape. Executes on the
/// process-wide default context.
pub fn try_conv2d_dgrad(
    precision: GemmPrecision,
    filters: &Matrix<f32>,
    dy: &Tensor3,
    in_shape: (usize, usize, usize),
    spec: ConvSpec,
) -> Result<(Tensor3, MmaStats), M3xuError> {
    try_conv2d_dgrad_on(default_context(), precision, filters, dy, in_shape, spec)
}

/// [`try_conv2d_dgrad`] on an explicit [`GemmExecutor`].
pub fn try_conv2d_dgrad_on<X: GemmExecutor>(
    exec: &X,
    precision: GemmPrecision,
    filters: &Matrix<f32>,
    dy: &Tensor3,
    in_shape: (usize, usize, usize),
    spec: ConvSpec,
) -> Result<(Tensor3, MmaStats), M3xuError> {
    let (in_ch, ih, iw) = in_shape;
    spec.validate(ih, iw)?;
    let oh = spec.out_extent(ih);
    let ow = spec.out_extent(iw);
    if (dy.h, dy.w) != (oh, ow) {
        return Err(M3xuError::ShapeMismatch {
            context: "conv2d_dgrad(dy): spatial shape must match forward output",
            expected: (oh, ow),
            got: (dy.h, dy.w),
        });
    }
    let patch = in_ch * spec.kernel * spec.kernel;
    if filters.rows() != dy.c || filters.cols() != patch {
        return Err(M3xuError::ShapeMismatch {
            context: "conv2d_dgrad(filters): expected out_ch x (in_ch * k * k)",
            expected: (dy.c, patch),
            got: (filters.rows(), filters.cols()),
        });
    }

    // dCols = Wᵀ (in_ch*k*k x out_ch) · dY (out_ch x oh*ow).
    let dy_m = Matrix::from_fn(dy.c, oh * ow, |o, p| dy.get(o, p / ow, p % ow));
    let c = Matrix::zeros(filters.cols(), oh * ow);
    let r = exec.try_gemm_f32(precision, &filters.transpose(), &dy_m, &c)?;

    // col2im: scatter-add each column entry back to its input position —
    // the exact adjoint of the im2col gather.
    let mut dx = Tensor3::zeros(in_ch, ih, iw);
    for row in 0..filters.cols() {
        let ci = row / (spec.kernel * spec.kernel);
        let kh = (row / spec.kernel) % spec.kernel;
        let kw = row % spec.kernel;
        for p in 0..oh * ow {
            let out_y = p / ow;
            let out_x = p % ow;
            let in_y = out_y * spec.stride + kh;
            let in_x = out_x * spec.stride + kw;
            if in_y < spec.padding
                || in_x < spec.padding
                || in_y - spec.padding >= ih
                || in_x - spec.padding >= iw
            {
                continue;
            }
            let (y, xx) = (in_y - spec.padding, in_x - spec.padding);
            dx.set(ci, y, xx, dx.get(ci, y, xx) + r.d.get(row, p));
        }
    }
    Ok((dx, r.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv2d::conv2d;

    /// Scalar loss: sum of all outputs weighted by a fixed mask (so the
    /// loss gradient w.r.t. the output is the mask itself).
    fn loss(x: &Tensor3, f: &Matrix<f32>, bias: &[f32], spec: ConvSpec, mask: &Tensor3) -> f64 {
        let (y, _) = conv2d(GemmPrecision::M3xuFp32, x, f, bias, spec);
        y.as_slice()
            .iter()
            .zip(mask.as_slice())
            .map(|(&a, &m)| a as f64 * m as f64)
            .sum()
    }

    fn setup() -> (Tensor3, Matrix<f32>, Vec<f32>, ConvSpec, Tensor3) {
        let spec = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let x = Tensor3::random(2, 5, 5, 11);
        let f = Matrix::<f32>::random(3, 2 * 9, 12);
        let bias = vec![0.1, -0.2, 0.05];
        let oh = spec.out_extent(5);
        let mask = Tensor3::random(3, oh, oh, 13);
        (x, f, bias, spec, mask)
    }

    #[test]
    fn wgrad_matches_finite_differences() {
        let (x, f, bias, spec, mask) = setup();
        let dy = mask.clone();
        let (dw, stats) = conv2d_wgrad(GemmPrecision::M3xuFp32, &x, &dy, spec);
        assert!(stats.instructions > 0);
        let eps = 1e-2f32;
        // Check a scattering of filter weights.
        for &(o, idx) in &[(0usize, 0usize), (1, 7), (2, 17), (0, 9)] {
            let mut fp = f.clone();
            fp.set(o, idx, f.get(o, idx) + eps);
            let mut fm = f.clone();
            fm.set(o, idx, f.get(o, idx) - eps);
            let num = (loss(&x, &fp, &bias, spec, &mask) - loss(&x, &fm, &bias, spec, &mask))
                / (2.0 * eps as f64);
            let ana = dw.get(o, idx) as f64;
            assert!(
                (num - ana).abs() <= 1e-3 * ana.abs().max(1.0),
                "dW[{o}][{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn dgrad_matches_finite_differences() {
        let (x, f, bias, spec, mask) = setup();
        let dy = mask.clone();
        let (dx, _) = conv2d_dgrad(GemmPrecision::M3xuFp32, &f, &dy, (2, 5, 5), spec);
        let eps = 1e-2f32;
        for &(c, h, w) in &[(0usize, 0usize, 0usize), (1, 2, 3), (0, 4, 4), (1, 1, 0)] {
            let mut xp = x.clone();
            xp.set(c, h, w, x.get(c, h, w) + eps);
            let mut xm = x.clone();
            xm.set(c, h, w, x.get(c, h, w) - eps);
            let num = (loss(&xp, &f, &bias, spec, &mask) - loss(&xm, &f, &bias, spec, &mask))
                / (2.0 * eps as f64);
            let ana = dx.get(c, h, w) as f64;
            assert!(
                (num - ana).abs() <= 1e-3 * ana.abs().max(1.0),
                "dX[{c}][{h}][{w}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn bgrad_sums_channels() {
        let dy = Tensor3::from_fn(2, 2, 2, |c, h, w| (c * 100 + h * 10 + w) as f32);
        let db = conv2d_bgrad(&dy);
        assert_eq!(
            db,
            vec![0.0 + 1.0 + 10.0 + 11.0, 100.0 + 101.0 + 110.0 + 111.0]
        );
    }

    #[test]
    fn dgrad_with_stride_two() {
        // Shapes must be consistent for strided convs too.
        let spec = ConvSpec {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let x = Tensor3::random(1, 8, 8, 14);
        let f = Matrix::<f32>::random(2, 9, 15);
        let (y, _) = conv2d(GemmPrecision::M3xuFp32, &x, &f, &[0.0, 0.0], spec);
        let dy = Tensor3::from_fn(y.c, y.h, y.w, |_, _, _| 1.0);
        let (dx, _) = conv2d_dgrad(GemmPrecision::M3xuFp32, &f, &dy, (1, 8, 8), spec);
        assert_eq!((dx.c, dx.h, dx.w), (1, 8, 8));
        assert!(dx.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn try_grads_reject_mismatched_dy() {
        let spec = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let x = Tensor3::random(2, 5, 5, 20);
        let f = Matrix::<f32>::random(3, 18, 21);
        let bad_dy = Tensor3::zeros(3, 4, 4); // forward output is 5x5
        assert!(matches!(
            try_conv2d_wgrad(GemmPrecision::M3xuFp32, &x, &bad_dy, spec).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            try_conv2d_dgrad(GemmPrecision::M3xuFp32, &f, &bad_dy, (2, 5, 5), spec).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
        // Filter bank inconsistent with the stated input channel count.
        let dy = Tensor3::zeros(3, 5, 5);
        assert!(matches!(
            try_conv2d_dgrad(GemmPrecision::M3xuFp32, &f, &dy, (4, 5, 5), spec).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn gradients_are_zero_for_zero_dy() {
        let spec = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let x = Tensor3::random(2, 4, 4, 16);
        let f = Matrix::<f32>::random(2, 18, 17);
        let dy = Tensor3::zeros(2, 4, 4);
        let (dw, _) = conv2d_wgrad(GemmPrecision::M3xuFp32, &x, &dy, spec);
        assert!(dw.as_slice().iter().all(|&v| v == 0.0));
        let (dx, _) = conv2d_dgrad(GemmPrecision::M3xuFp32, &f, &dy, (2, 4, 4), spec);
        assert!(dx.as_slice().iter().all(|&v| v == 0.0));
    }
}
