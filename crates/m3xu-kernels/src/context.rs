//! The execution context: one object that owns the worker-pool policy,
//! the reusable packed-operand scratch arena, and an always-on counter
//! sink for every kernel in this crate.
//!
//! The paper's evaluation (§V-B1) is instruction-count arithmetic — M3XU
//! FP32 issues exactly 2x, and FP32C exactly 4x, the MMAs of the FP16
//! kernel of the same shape. [`M3xuContext`] makes those counts an
//! observable artifact of *functional* execution: every GEMM routed
//! through a context records its MMA instructions and steps per mode,
//! fragment and tile counts, operand traffic bytes, and per-phase wall
//! time into [`ExecStats`], which `m3xu_gpu`'s `validate` module can then
//! check against the analytical kernel model for the same problem.
//!
//! Every kernel module lowers to the two GEMM flavours of the
//! [`GemmExecutor`] trait, so a context (or any custom executor) can be
//! threaded through the FFT recursion, the convolution lowerings, the CG
//! solver, and the rest via the `*_on` entry points. The module-level
//! free functions remain as thin wrappers over the process-wide
//! [`default_context`], which resolves `M3XU_THREADS` exactly once.

use crate::blas3::{self, Side};
use crate::gemm::{self, GemmPrecision, GemmResult};
use crate::pool::{self, WorkerPool};
use crate::{conv2d, conv_grad, fft, knn, poly, solver};
use m3xu_fp::complex::Complex;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::fault::{FaultPlan, FaultSummary};
use m3xu_mxu::matrix::{MatOp, Matrix, MirrorView, OpView, Triangle};
use m3xu_mxu::mma::MmaStats;
use m3xu_mxu::modes::MxuMode;
use m3xu_mxu::packed::PackedStorage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type C32 = Complex<f32>;

/// Number of execution modes the per-mode counter arrays cover.
pub(crate) const MODE_COUNT: usize = MxuMode::ALL.len();

/// Index of `mode` into per-mode counter arrays — the declaration order
/// of [`MxuMode::ALL`].
fn mode_index(mode: MxuMode) -> usize {
    match mode {
        MxuMode::Fp16 => 0,
        MxuMode::Bf16 => 1,
        MxuMode::Tf32 => 2,
        MxuMode::M3xuFp32 => 3,
        MxuMode::M3xuFp32Fast => 4,
        MxuMode::M3xuFp32c => 5,
        MxuMode::M3xuFp64 => 6,
        MxuMode::M3xuFp64Emu => 7,
        MxuMode::M3xuFp64c => 8,
    }
}

/// One GEMM's worth of accounting, recorded in a single sink visit.
pub(crate) struct GemmSample {
    /// Mode the GEMM executed in.
    pub mode: MxuMode,
    /// Whole-GEMM MMA statistics (instructions, steps, lane products).
    pub stats: MmaStats,
    /// Output tiles sharded across the pool.
    pub tiles: u64,
    /// Fragments issued (one MMA instruction each).
    pub fragments: u64,
    /// A/B operand bytes at the mode's storage width.
    pub operand_bytes: u64,
    /// Wall time decoding operands into packed planes, ns.
    pub pack_ns: u64,
    /// Wall time executing fragments across the pool, ns.
    pub exec_ns: u64,
}

#[derive(Default)]
struct ModeCounters {
    instructions: AtomicU64,
    steps: AtomicU64,
    lane_products: AtomicU64,
}

/// The live counter sink: relaxed atomic adds, visited once per GEMM (not
/// per fragment), so instrumentation stays near-zero-cost on the hot path.
#[derive(Default)]
pub(crate) struct ExecCounters {
    gemm_calls: AtomicU64,
    tiles: AtomicU64,
    fragments: AtomicU64,
    operand_bytes: AtomicU64,
    pack_ns: AtomicU64,
    exec_ns: AtomicU64,
    faults_detected: AtomicU64,
    faults_corrected: AtomicU64,
    fault_retries: AtomicU64,
    per_mode: [ModeCounters; MODE_COUNT],
}

impl ExecCounters {
    pub(crate) fn record(&self, s: &GemmSample) {
        self.gemm_calls.fetch_add(1, Ordering::Relaxed);
        self.tiles.fetch_add(s.tiles, Ordering::Relaxed);
        self.fragments.fetch_add(s.fragments, Ordering::Relaxed);
        self.operand_bytes
            .fetch_add(s.operand_bytes, Ordering::Relaxed);
        self.pack_ns.fetch_add(s.pack_ns, Ordering::Relaxed);
        self.exec_ns.fetch_add(s.exec_ns, Ordering::Relaxed);
        let m = &self.per_mode[mode_index(s.mode)];
        m.instructions
            .fetch_add(s.stats.instructions, Ordering::Relaxed);
        m.steps.fetch_add(s.stats.steps, Ordering::Relaxed);
        m.lane_products
            .fetch_add(s.stats.lane_products, Ordering::Relaxed);
    }

    /// Record one checked-driver invocation's fault telemetry.
    pub(crate) fn record_faults(&self, s: &FaultSummary) {
        self.faults_detected
            .fetch_add(s.detected, Ordering::Relaxed);
        self.faults_corrected
            .fetch_add(s.corrected, Ordering::Relaxed);
        self.fault_retries.fetch_add(s.retries, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ExecStats {
        let mut per_mode = [MmaStats::default(); MODE_COUNT];
        for (i, m) in self.per_mode.iter().enumerate() {
            per_mode[i] = MmaStats {
                instructions: m.instructions.load(Ordering::Relaxed),
                steps: m.steps.load(Ordering::Relaxed),
                lane_products: m.lane_products.load(Ordering::Relaxed),
            };
        }
        ExecStats {
            gemm_calls: self.gemm_calls.load(Ordering::Relaxed),
            tiles: self.tiles.load(Ordering::Relaxed),
            fragments: self.fragments.load(Ordering::Relaxed),
            operand_bytes: self.operand_bytes.load(Ordering::Relaxed),
            pack_ns: self.pack_ns.load(Ordering::Relaxed),
            exec_ns: self.exec_ns.load(Ordering::Relaxed),
            faults_detected: self.faults_detected.load(Ordering::Relaxed),
            faults_corrected: self.faults_corrected.load(Ordering::Relaxed),
            fault_retries: self.fault_retries.load(Ordering::Relaxed),
            per_mode,
        }
    }

    fn reset(&self) {
        self.gemm_calls.store(0, Ordering::Relaxed);
        self.tiles.store(0, Ordering::Relaxed);
        self.fragments.store(0, Ordering::Relaxed);
        self.operand_bytes.store(0, Ordering::Relaxed);
        self.pack_ns.store(0, Ordering::Relaxed);
        self.exec_ns.store(0, Ordering::Relaxed);
        self.faults_detected.store(0, Ordering::Relaxed);
        self.faults_corrected.store(0, Ordering::Relaxed);
        self.fault_retries.store(0, Ordering::Relaxed);
        for m in &self.per_mode {
            m.instructions.store(0, Ordering::Relaxed);
            m.steps.store(0, Ordering::Relaxed);
            m.lane_products.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time snapshot of a context's execution counters.
///
/// All counters are cumulative since the context's construction (or its
/// last [`M3xuContext::reset_stats`]); subtract two snapshots with
/// [`ExecStats::delta_since`] to meter one region of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Top-level GEMM driver invocations recorded.
    pub gemm_calls: u64,
    /// Output tiles sharded across the worker pool.
    pub tiles: u64,
    /// MMA fragments issued (one MMA instruction each).
    pub fragments: u64,
    /// Bytes of A/B operand traffic at each mode's storage width — the
    /// quantity behind the paper's rule (c) 2x / 4x traffic ratios.
    pub operand_bytes: u64,
    /// Wall time spent decoding operands into packed planes, ns.
    pub pack_ns: u64,
    /// Wall time spent executing fragments across the pool, ns.
    pub exec_ns: u64,
    /// ABFT checksum mismatches (plus lost pool epochs) detected by the
    /// checked drivers ([`m3xu_mxu::fault::FaultSummary::detected`]).
    pub faults_detected: u64,
    /// Detected faults subsequently repaired by re-execution.
    pub faults_corrected: u64,
    /// Tile re-executions plus epoch re-submissions the checked drivers
    /// performed.
    pub fault_retries: u64,
    per_mode: [MmaStats; MODE_COUNT],
}

impl ExecStats {
    /// MMA statistics recorded for one mode.
    pub fn mode(&self, mode: MxuMode) -> MmaStats {
        self.per_mode[mode_index(mode)]
    }

    /// MMA statistics summed over every mode.
    pub fn total(&self) -> MmaStats {
        let mut t = MmaStats::default();
        for m in &self.per_mode {
            t.merge(m);
        }
        t
    }

    /// Element-wise sum of two snapshots — the aggregation a sharded
    /// service uses to present N per-shard contexts as one counter set
    /// (Σ shard `ExecStats` is what per-tenant accounting reconciles
    /// against).
    pub fn merged(&self, other: &ExecStats) -> ExecStats {
        let mut per_mode = [MmaStats::default(); MODE_COUNT];
        for (i, d) in per_mode.iter_mut().enumerate() {
            *d = self.per_mode[i];
            d.merge(&other.per_mode[i]);
        }
        ExecStats {
            gemm_calls: self.gemm_calls + other.gemm_calls,
            tiles: self.tiles + other.tiles,
            fragments: self.fragments + other.fragments,
            operand_bytes: self.operand_bytes + other.operand_bytes,
            pack_ns: self.pack_ns + other.pack_ns,
            exec_ns: self.exec_ns + other.exec_ns,
            faults_detected: self.faults_detected + other.faults_detected,
            faults_corrected: self.faults_corrected + other.faults_corrected,
            fault_retries: self.fault_retries + other.fault_retries,
            per_mode,
        }
    }

    /// Element-wise saturating difference `self - earlier`: the activity
    /// between two snapshots of the same (monotone) counter set.
    pub fn delta_since(&self, earlier: &ExecStats) -> ExecStats {
        let mut per_mode = [MmaStats::default(); MODE_COUNT];
        for (i, d) in per_mode.iter_mut().enumerate() {
            *d = self.per_mode[i].delta_since(&earlier.per_mode[i]);
        }
        ExecStats {
            gemm_calls: self.gemm_calls.saturating_sub(earlier.gemm_calls),
            tiles: self.tiles.saturating_sub(earlier.tiles),
            fragments: self.fragments.saturating_sub(earlier.fragments),
            operand_bytes: self.operand_bytes.saturating_sub(earlier.operand_bytes),
            pack_ns: self.pack_ns.saturating_sub(earlier.pack_ns),
            exec_ns: self.exec_ns.saturating_sub(earlier.exec_ns),
            faults_detected: self.faults_detected.saturating_sub(earlier.faults_detected),
            faults_corrected: self
                .faults_corrected
                .saturating_sub(earlier.faults_corrected),
            fault_retries: self.fault_retries.saturating_sub(earlier.fault_retries),
            per_mode,
        }
    }
}

/// Reusable packed-operand storage: capacity survives across GEMMs so
/// repeated runs through one context stop visiting the allocator for
/// their entry *and* value planes (the f32 mirrors the SIMD row kernels
/// read).
#[derive(Default)]
struct OperandArena {
    a: PackedStorage,
    b: PackedStorage,
}

enum ContextPool {
    /// Share the lazily-built process-wide pool.
    Global,
    /// A pool owned by (and sized for) this context alone.
    Owned(WorkerPool),
}

/// A single execution object for the functional kernels: worker pool,
/// thread-count policy, packed-operand scratch arena, and the always-on
/// [`ExecStats`] counter sink.
///
/// `M3XU_THREADS` is resolved exactly once — at pool construction — so
/// the parallelism of a context cannot change mid-run. The process-wide
/// [`default_context`] backs every module-level free function; build a
/// private context (e.g. [`M3xuContext::with_threads`]) to meter one
/// workload in isolation.
///
/// ```
/// use m3xu_kernels::context::M3xuContext;
/// use m3xu_kernels::gemm::GemmPrecision;
/// use m3xu_mxu::matrix::Matrix;
/// use m3xu_mxu::modes::MxuMode;
///
/// let ctx = M3xuContext::with_threads(2);
/// let a = Matrix::<f32>::random(64, 64, 1);
/// let b = Matrix::<f32>::random(64, 64, 2);
/// let c = Matrix::<f32>::zeros(64, 64);
/// ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
/// let stats = ctx.stats();
/// // 8x8 tiles, k/2 chunks: (64/8) * (64/8) * (64/2) fragments.
/// assert_eq!(stats.mode(MxuMode::M3xuFp32).instructions, 8 * 8 * 32);
/// assert_eq!(stats.fragments, 8 * 8 * 32);
/// ```
pub struct M3xuContext {
    pool: ContextPool,
    threads: usize,
    counters: ExecCounters,
    arena: Mutex<OperandArena>,
    /// Armed fault-injection plan. `None` (the production default when
    /// `M3XU_FAULT_SEED` is unset) keeps the unchecked drivers on the hot
    /// path — no checksum work, bit-identical to a plan-free build.
    fault: Option<Arc<FaultPlan>>,
}

impl M3xuContext {
    /// A context sharing the process-wide worker pool (whose size is
    /// `M3XU_THREADS` when set, resolved once at first use). The fault
    /// plan, if any, resolves from `M3XU_FAULT_SEED` / `M3XU_FAULT_RATE`
    /// — once, here, mirroring the thread policy.
    pub fn new() -> Self {
        M3xuContext {
            threads: pool::global().size(),
            pool: ContextPool::Global,
            counters: ExecCounters::default(),
            arena: Mutex::new(OperandArena::default()),
            fault: FaultPlan::from_env().map(Arc::new),
        }
    }

    /// A context with its own worker pool of `threads` threads (minimum
    /// 1), independent of `M3XU_THREADS` and the process-wide pool.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        M3xuContext {
            pool: ContextPool::Owned(WorkerPool::new(threads)),
            threads,
            counters: ExecCounters::default(),
            arena: Mutex::new(OperandArena::default()),
            fault: FaultPlan::from_env().map(Arc::new),
        }
    }

    /// Arm this context with an explicit fault-injection plan, overriding
    /// whatever the environment resolved. FP32 / FP32C GEMMs then run the
    /// ABFT-checked self-healing driver; every other engine is untouched.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The armed fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// Worker threads this context executes on — fixed at construction.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool GEMMs sharded through this context run on.
    pub(crate) fn pool(&self) -> &WorkerPool {
        match &self.pool {
            ContextPool::Global => pool::global(),
            ContextPool::Owned(p) => p,
        }
    }

    pub(crate) fn counters(&self) -> &ExecCounters {
        &self.counters
    }

    /// Borrow the packed-operand scratch buffers. A contended arena (two
    /// GEMMs in flight on one context) falls back to fresh allocations
    /// rather than serialising the callers.
    pub(crate) fn take_scratch(&self) -> (PackedStorage, PackedStorage) {
        match self.arena.try_lock() {
            Ok(mut g) => (std::mem::take(&mut g.a), std::mem::take(&mut g.b)),
            Err(_) => (PackedStorage::default(), PackedStorage::default()),
        }
    }

    /// Return scratch to the arena, keeping the larger capacity (keyed on
    /// the entry plane — the value planes scale with it).
    pub(crate) fn put_scratch(&self, a: PackedStorage, b: PackedStorage) {
        if let Ok(mut g) = self.arena.try_lock() {
            if a.entries.capacity() > g.a.entries.capacity() {
                g.a = a;
            }
            if b.entries.capacity() > g.b.entries.capacity() {
                g.b = b;
            }
        }
    }

    /// Execute `f(0), f(1), ..., f(tasks - 1)` on this context's worker
    /// pool — the batching seam service layers build on: a scheduler can
    /// fold many *small* requests into one pool epoch by making each task
    /// execute a whole request inline. A GEMM issued from inside a task
    /// (e.g. [`M3xuContext::try_gemm_f32`]) runs inline on that worker by
    /// the pool's reentrancy contract, bit-identical to a direct call.
    pub fn run_tasks<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        self.pool().run(tasks, f);
    }

    /// Snapshot the cumulative execution counters.
    ///
    /// # Relaxed-ordering caveat
    ///
    /// All counters — including the [`ExecStats::pack_ns`] /
    /// [`ExecStats::exec_ns`] wall-time sums — are maintained with
    /// `Relaxed` atomic adds and loaded field-by-field here. Each counter
    /// is individually monotone, but a snapshot taken while other threads
    /// are recording may mix fields from different in-flight GEMMs (e.g.
    /// observe a call's `pack_ns` before its `exec_ns` lands). Snapshot
    /// deltas over a quiesced context are exact; under concurrency treat a
    /// single snapshot as a consistent *lower bound* per field, not a
    /// cross-field transaction. Note also that the wall-time sums add up
    /// *per-call* elapsed times: concurrent GEMMs overlap in real time, so
    /// `pack_ns + exec_ns` can exceed the wall-clock span of the workload.
    pub fn stats(&self) -> ExecStats {
        self.counters.snapshot()
    }

    /// Zero the execution counters.
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    // ---- GEMM family ---------------------------------------------------

    /// Fallible tiled real GEMM `D = A·B + C` in `precision`, counted
    /// into this context's [`ExecStats`].
    pub fn try_gemm_f32(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        gemm::try_gemm_f32_ctx(self, precision, a, b, c)
    }

    /// [`M3xuContext::try_gemm_f32`], panicking on invalid shapes.
    pub fn gemm_f32(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> GemmResult<f32> {
        self.try_gemm_f32(precision, a, b, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible tiled FP32C GEMM `D = A·B + C`, counted into this
    /// context's [`ExecStats`].
    pub fn try_cgemm_c32(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        gemm::try_cgemm_c32_ctx(self, a, b, c)
    }

    /// [`M3xuContext::try_cgemm_c32`], panicking on invalid shapes.
    pub fn cgemm_c32(&self, a: &Matrix<C32>, b: &Matrix<C32>, c: &Matrix<C32>) -> GemmResult<C32> {
        self.try_cgemm_c32(a, b, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`M3xuContext::try_gemm_f32`] with fault telemetry: additionally
    /// returns the [`FaultSummary`] of this one invocation. Every f32
    /// precision is covered — the expected checksums read the packed
    /// buffer entries, so quantising narrow modes verify exactly — and
    /// with no armed plan the production driver runs and the summary is
    /// zero.
    pub fn try_gemm_f32_faulted(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
        gemm::try_gemm_f32_faulted_ctx(self, precision, a, b, c)
    }

    /// [`M3xuContext::try_cgemm_c32`] with fault telemetry; see
    /// [`M3xuContext::try_gemm_f32_faulted`].
    pub fn try_cgemm_c32_faulted(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        c: &Matrix<C32>,
    ) -> Result<(GemmResult<C32>, FaultSummary), M3xuError> {
        gemm::try_cgemm_c32_faulted_ctx(self, a, b, c)
    }

    /// [`M3xuContext::try_gemm_f64`] with fault telemetry; see
    /// [`M3xuContext::try_gemm_f32_faulted`].
    pub fn try_gemm_f64_faulted(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        c: &Matrix<f64>,
    ) -> Result<(GemmResult<f64>, FaultSummary), M3xuError> {
        gemm::try_gemm_f64_faulted_ctx(self, precision, a, b, c)
    }

    /// Fallible tiled emulated-FP64 GEMM `D = A·B + C`, counted into this
    /// context's [`ExecStats`]. Only [`GemmPrecision::Fp64Emulated`] is
    /// accepted; every other precision returns
    /// [`M3xuError::ModeMismatch`].
    pub fn try_gemm_f64(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        c: &Matrix<f64>,
    ) -> Result<GemmResult<f64>, M3xuError> {
        gemm::try_gemm_f64_ctx(self, precision, a, b, c)
    }

    /// [`M3xuContext::try_gemm_f64`], panicking on invalid shapes or
    /// precision.
    pub fn gemm_f64(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        c: &Matrix<f64>,
    ) -> GemmResult<f64> {
        self.try_gemm_f64(precision, a, b, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible emulated-FP64 `A·B` with a zero `C`.
    pub fn try_matmul_f64(
        &self,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<Matrix<f64>, M3xuError> {
        let c = Matrix::zeros(a.rows(), b.cols());
        Ok(self.try_gemm_f64(GemmPrecision::Fp64Emulated, a, b, &c)?.d)
    }

    /// Fallible `A·B` with a zero `C`.
    pub fn try_matmul_f32(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
    ) -> Result<Matrix<f32>, M3xuError> {
        let c = Matrix::zeros(a.rows(), b.cols());
        Ok(self.try_gemm_f32(precision, a, b, &c)?.d)
    }

    /// Fallible complex `A·B` with a zero `C`.
    pub fn try_cmatmul_c32(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
    ) -> Result<Matrix<C32>, M3xuError> {
        let c = Matrix::zeros(a.rows(), b.cols());
        Ok(self.try_cgemm_c32(a, b, &c)?.d)
    }

    // ---- BLAS-3 family -------------------------------------------------

    /// Fallible op-GEMM `D = alpha·op(A)·op(B) + beta·C` on an f32
    /// engine; `op = N`, `alpha = 1`, `beta = 1` is bit-identical to
    /// [`M3xuContext::try_gemm_f32`]. Counted into this context's
    /// [`ExecStats`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_op_f32(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f32>,
        op_b: MatOp,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        blas3::try_gemm_op_f32_ctx(self, precision, op_a, a, op_b, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_gemm_op_f32`] with fault telemetry; see
    /// [`M3xuContext::try_gemm_f32_faulted`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_op_f32_faulted(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f32>,
        op_b: MatOp,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
        blas3::try_gemm_op_f32_faulted_ctx(self, precision, op_a, a, op_b, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_gemm_op_f32`], panicking on invalid shapes or
    /// precision.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_op_f32(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f32>,
        op_b: MatOp,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> GemmResult<f32> {
        self.try_gemm_op_f32(precision, op_a, a, op_b, b, alpha, beta, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible complex op-GEMM `D = alpha·op(A)·op(B) + beta·C` on the
    /// FP32C engine (`op` may conjugate); counted into this context's
    /// [`ExecStats`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_cgemm_op_c32(
        &self,
        op_a: MatOp,
        a: &Matrix<C32>,
        op_b: MatOp,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        blas3::try_cgemm_op_c32_ctx(self, op_a, a, op_b, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_cgemm_op_c32`] with fault telemetry; see
    /// [`M3xuContext::try_gemm_f32_faulted`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_cgemm_op_c32_faulted(
        &self,
        op_a: MatOp,
        a: &Matrix<C32>,
        op_b: MatOp,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<(GemmResult<C32>, FaultSummary), M3xuError> {
        blas3::try_cgemm_op_c32_faulted_ctx(self, op_a, a, op_b, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_cgemm_op_c32`], panicking on invalid shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn cgemm_op_c32(
        &self,
        op_a: MatOp,
        a: &Matrix<C32>,
        op_b: MatOp,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> GemmResult<C32> {
        self.try_cgemm_op_c32(op_a, a, op_b, b, alpha, beta, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible emulated-FP64 op-GEMM; only
    /// [`GemmPrecision::Fp64Emulated`] is accepted.
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_op_f64(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f64>,
        op_b: MatOp,
        b: &Matrix<f64>,
        alpha: f64,
        beta: f64,
        c: &Matrix<f64>,
    ) -> Result<GemmResult<f64>, M3xuError> {
        blas3::try_gemm_op_f64_ctx(self, precision, op_a, a, op_b, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_gemm_op_f64`] with fault telemetry; see
    /// [`M3xuContext::try_gemm_f32_faulted`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_op_f64_faulted(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f64>,
        op_b: MatOp,
        b: &Matrix<f64>,
        alpha: f64,
        beta: f64,
        c: &Matrix<f64>,
    ) -> Result<(GemmResult<f64>, FaultSummary), M3xuError> {
        blas3::try_gemm_op_f64_faulted_ctx(self, precision, op_a, a, op_b, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_gemm_op_f64`], panicking on invalid shapes or
    /// precision.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_op_f64(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f64>,
        op_b: MatOp,
        b: &Matrix<f64>,
        alpha: f64,
        beta: f64,
        c: &Matrix<f64>,
    ) -> GemmResult<f64> {
        self.try_gemm_op_f64(precision, op_a, a, op_b, b, alpha, beta, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible SYRK `C := alpha·op(A)·op(A)^T + beta·C`, scheduling (and
    /// writing) only the output tiles intersecting `tri` — the other
    /// triangle of `C` passes through byte-for-byte untouched, and the
    /// recorded [`ExecStats`] reflect the ~2x tile saving.
    #[allow(clippy::too_many_arguments)]
    pub fn try_syrk_f32(
        &self,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        blas3::try_syrk_f32_ctx(self, precision, tri, op_a, a, alpha, beta, c)
    }

    /// [`M3xuContext::try_syrk_f32`] with fault telemetry — verification
    /// prices only the `T(T+1)/2` scheduled triangular tiles; see
    /// [`M3xuContext::try_gemm_f32_faulted`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_syrk_f32_faulted(
        &self,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
        blas3::try_syrk_f32_faulted_ctx(self, precision, tri, op_a, a, alpha, beta, c)
    }

    /// [`M3xuContext::try_syrk_f32`], panicking on invalid shapes or
    /// precision.
    #[allow(clippy::too_many_arguments)]
    pub fn syrk_f32(
        &self,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> GemmResult<f32> {
        self.try_syrk_f32(precision, tri, op_a, a, alpha, beta, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible HERK `C := alpha·op(A)·op(A)^H + beta·C` with real
    /// `alpha`/`beta` on the FP32C engine, writing only the `tri`
    /// triangle; diagonal entries are exactly real on output. `op_a` must
    /// be [`MatOp::N`] or [`MatOp::H`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_herk_c32(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        blas3::try_herk_c32_ctx(self, tri, op_a, a, alpha, beta, c)
    }

    /// [`M3xuContext::try_herk_c32`] with fault telemetry; see
    /// [`M3xuContext::try_syrk_f32_faulted`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_herk_c32_faulted(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<C32>,
    ) -> Result<(GemmResult<C32>, FaultSummary), M3xuError> {
        blas3::try_herk_c32_faulted_ctx(self, tri, op_a, a, alpha, beta, c)
    }

    /// [`M3xuContext::try_herk_c32`], panicking on invalid shapes or op.
    pub fn herk_c32(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<C32>,
    ) -> GemmResult<C32> {
        self.try_herk_c32(tri, op_a, a, alpha, beta, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible SYMM `C := alpha·sym(A)·B + beta·C` (or `B·sym(A)` on
    /// [`Side::Right`]), expanding the `tri`-stored triangle of the
    /// square matrix `A` on the fly — the opposite triangle of `A` is
    /// never read.
    #[allow(clippy::too_many_arguments)]
    pub fn try_symm_f32(
        &self,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        blas3::try_symm_f32_ctx(self, precision, side, tri, a, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_symm_f32`] with fault telemetry; see
    /// [`M3xuContext::try_gemm_f32_faulted`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_symm_f32_faulted(
        &self,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
        blas3::try_symm_f32_faulted_ctx(self, precision, side, tri, a, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_symm_f32`], panicking on invalid shapes or
    /// precision.
    #[allow(clippy::too_many_arguments)]
    pub fn symm_f32(
        &self,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> GemmResult<f32> {
        self.try_symm_f32(precision, side, tri, a, b, alpha, beta, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible HEMM: the Hermitian counterpart of
    /// [`M3xuContext::try_symm_f32`] on the FP32C engine (the mirror
    /// conjugates across the diagonal and reads diagonal entries as
    /// real).
    #[allow(clippy::too_many_arguments)]
    pub fn try_hemm_c32(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        blas3::try_hemm_c32_ctx(self, side, tri, a, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_hemm_c32`] with fault telemetry; see
    /// [`M3xuContext::try_gemm_f32_faulted`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_hemm_c32_faulted(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<(GemmResult<C32>, FaultSummary), M3xuError> {
        blas3::try_hemm_c32_faulted_ctx(self, side, tri, a, b, alpha, beta, c)
    }

    /// [`M3xuContext::try_hemm_c32`], panicking on invalid shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn hemm_c32(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> GemmResult<C32> {
        self.try_hemm_c32(side, tri, a, b, alpha, beta, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    // ---- Kernel conveniences -------------------------------------------

    /// GEMM-formulated FFT on this context (see [`fft::try_gemm_fft`]).
    pub fn try_gemm_fft(&self, x: &[C32]) -> Result<(Vec<C32>, MmaStats), M3xuError> {
        fft::try_gemm_fft_on(self, x)
    }

    /// 2-D FFT on this context (see [`fft::fft2d::try_fft2d`]).
    pub fn try_fft2d(&self, image: &Matrix<C32>) -> Result<(Matrix<C32>, MmaStats), M3xuError> {
        fft::fft2d::try_fft2d_on(self, image)
    }

    /// im2col convolution on this context (see [`conv2d::try_conv2d`]).
    pub fn try_conv2d(
        &self,
        precision: GemmPrecision,
        x: &conv2d::Tensor3,
        filters: &Matrix<f32>,
        bias: &[f32],
        spec: conv2d::ConvSpec,
    ) -> Result<(conv2d::Tensor3, MmaStats), M3xuError> {
        conv2d::try_conv2d_on(self, precision, x, filters, bias, spec)
    }

    /// Convolution weight gradient (see [`conv_grad::try_conv2d_wgrad`]).
    pub fn try_conv2d_wgrad(
        &self,
        precision: GemmPrecision,
        x: &conv2d::Tensor3,
        dy: &conv2d::Tensor3,
        spec: conv2d::ConvSpec,
    ) -> Result<(Matrix<f32>, MmaStats), M3xuError> {
        conv_grad::try_conv2d_wgrad_on(self, precision, x, dy, spec)
    }

    /// Convolution data gradient (see [`conv_grad::try_conv2d_dgrad`]).
    pub fn try_conv2d_dgrad(
        &self,
        precision: GemmPrecision,
        filters: &Matrix<f32>,
        dy: &conv2d::Tensor3,
        in_shape: (usize, usize, usize),
        spec: conv2d::ConvSpec,
    ) -> Result<(conv2d::Tensor3, MmaStats), M3xuError> {
        conv_grad::try_conv2d_dgrad_on(self, precision, filters, dy, in_shape, spec)
    }

    /// GEMM-formulated k-NN search (see [`knn::try_knn_gemm`]).
    pub fn try_knn_gemm(
        &self,
        precision: GemmPrecision,
        refs: &Matrix<f32>,
        queries: &Matrix<f32>,
        k: usize,
    ) -> Result<knn::KnnResult, M3xuError> {
        knn::try_knn_gemm_on(self, precision, refs, queries, k)
    }

    /// FFT-based integer polynomial product (see [`poly::try_poly_mul_int`]).
    pub fn try_poly_mul_int(
        &self,
        a: &[i64],
        b: &[i64],
    ) -> Result<(Vec<i64>, MmaStats), M3xuError> {
        poly::try_poly_mul_int_on(self, a, b)
    }

    /// FFT-based cyclic convolution (see [`poly::try_cyclic_convolution`]).
    pub fn try_cyclic_convolution(&self, a: &[f32], b: &[f32]) -> Result<Vec<f32>, M3xuError> {
        poly::try_cyclic_convolution_on(self, a, b)
    }

    /// Conjugate-gradient solve (see [`solver::try_conjugate_gradient`]).
    pub fn try_conjugate_gradient(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &[f32],
        tol: f64,
        max_iter: usize,
    ) -> Result<solver::CgResult, M3xuError> {
        solver::try_conjugate_gradient_on(self, precision, a, b, tol, max_iter)
    }
}

impl Default for M3xuContext {
    fn default() -> Self {
        M3xuContext::new()
    }
}

/// The process-wide default context, built lazily on first use — the
/// execution object behind every module-level free function. Resolving it
/// once means `M3XU_THREADS` is parsed a single time per process.
pub fn default_context() -> &'static M3xuContext {
    static CTX: OnceLock<M3xuContext> = OnceLock::new();
    CTX.get_or_init(M3xuContext::new)
}

/// A driver for the two GEMM flavours every kernel in this crate lowers
/// to. [`M3xuContext`] is the canonical implementation; the trait exists
/// so higher-level kernels (FFT, conv, CG, …) can be threaded over any
/// execution strategy — a metered context, the baseline driver via
/// [`ClosureExecutor`], or a test double.
pub trait GemmExecutor {
    /// Fallible tiled real GEMM `D = A·B + C` in `precision`.
    fn try_gemm_f32(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError>;

    /// Fallible tiled FP32C GEMM `D = A·B + C`.
    fn try_cgemm_c32(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError>;

    /// Fallible tiled emulated-FP64 GEMM `D = A·B + C`. Executors without
    /// a double-precision engine inherit this default, which rejects the
    /// request with [`M3xuError::ModeMismatch`] instead of silently
    /// degrading precision.
    fn try_gemm_f64(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        c: &Matrix<f64>,
    ) -> Result<GemmResult<f64>, M3xuError> {
        let _ = (a, b, c);
        Err(M3xuError::ModeMismatch {
            context: "GemmExecutor::try_gemm_f64",
            got: precision.mode(),
        })
    }

    /// Fallible `A·B` with a zero `C`.
    fn try_matmul_f32(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
    ) -> Result<Matrix<f32>, M3xuError> {
        let c = Matrix::zeros(a.rows(), b.cols());
        Ok(self.try_gemm_f32(precision, a, b, &c)?.d)
    }

    /// Fallible complex `A·B` with a zero `C`.
    fn try_cmatmul_c32(&self, a: &Matrix<C32>, b: &Matrix<C32>) -> Result<Matrix<C32>, M3xuError> {
        let c = Matrix::zeros(a.rows(), b.cols());
        Ok(self.try_cgemm_c32(a, b, &c)?.d)
    }

    /// Fallible op-GEMM `D = alpha·op(A)·op(B) + beta·C` on an f32
    /// engine. The default materializes the views and scalar folds (alpha
    /// before quantisation, beta into the `C` seed — the same fold order
    /// as the packed driver, so results stay bit-compatible with
    /// [`M3xuContext`]'s view-iterating implementation) and delegates to
    /// [`GemmExecutor::try_gemm_f32`].
    #[allow(clippy::too_many_arguments)]
    fn try_gemm_op_f32(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f32>,
        op_b: MatOp,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        let am = fold_op_f32(a, op_a, alpha);
        let bm = fold_op_f32(b, op_b, 1.0);
        let cm = fold_beta_f32(c, beta);
        self.try_gemm_f32(precision, &am, &bm, &cm)
    }

    /// Fallible complex op-GEMM `D = alpha·op(A)·op(B) + beta·C`; default
    /// materializes and delegates to [`GemmExecutor::try_cgemm_c32`].
    #[allow(clippy::too_many_arguments)]
    fn try_cgemm_op_c32(
        &self,
        op_a: MatOp,
        a: &Matrix<C32>,
        op_b: MatOp,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        let am = fold_op_c32(a, op_a, alpha);
        let bm = fold_op_c32(b, op_b, Complex::<f32>::ONE);
        let cm = fold_beta_c32(c, beta);
        self.try_cgemm_c32(&am, &bm, &cm)
    }

    /// Fallible emulated-FP64 op-GEMM; default materializes and delegates
    /// to [`GemmExecutor::try_gemm_f64`] (which executors without a
    /// double-precision engine reject).
    #[allow(clippy::too_many_arguments)]
    fn try_gemm_op_f64(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f64>,
        op_b: MatOp,
        b: &Matrix<f64>,
        alpha: f64,
        beta: f64,
        c: &Matrix<f64>,
    ) -> Result<GemmResult<f64>, M3xuError> {
        let am = fold_op_f64(a, op_a, alpha);
        let bm = fold_op_f64(b, op_b, 1.0);
        let cm = fold_beta_f64(c, beta);
        self.try_gemm_f64(precision, &am, &bm, &cm)
    }

    /// Fallible SYRK `C := alpha·op(A)·op(A)^T + beta·C` over one
    /// triangle. No default fallback: the contract that the unreferenced
    /// triangle of `C` passes through untouched needs triangular output
    /// scheduling, so executors without it reject with
    /// [`M3xuError::ModeMismatch`].
    #[allow(clippy::too_many_arguments)]
    fn try_syrk_f32(
        &self,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        let _ = (tri, op_a, a, alpha, beta, c);
        Err(M3xuError::ModeMismatch {
            context: "GemmExecutor::try_syrk_f32",
            got: precision.mode(),
        })
    }

    /// Fallible HERK `C := alpha·op(A)·op(A)^H + beta·C` over one
    /// triangle; like [`GemmExecutor::try_syrk_f32`], executors without
    /// triangular output scheduling reject.
    #[allow(clippy::too_many_arguments)]
    fn try_herk_c32(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        let _ = (tri, op_a, a, alpha, beta, c);
        Err(M3xuError::ModeMismatch {
            context: "GemmExecutor::try_herk_c32",
            got: MxuMode::M3xuFp32c,
        })
    }

    /// Fallible SYMM with a triangle-stored symmetric `A`; default
    /// expands the mirror and delegates to
    /// [`GemmExecutor::try_gemm_op_f32`].
    #[allow(clippy::too_many_arguments)]
    fn try_symm_f32(
        &self,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        if a.rows() != a.cols() {
            return Err(M3xuError::ShapeMismatch {
                context: "symm(A): A must be square",
                expected: (a.rows(), a.rows()),
                got: (a.rows(), a.cols()),
            });
        }
        let sym = MirrorView::new(a, tri, false).materialize();
        match side {
            Side::Left => {
                self.try_gemm_op_f32(precision, MatOp::N, &sym, MatOp::N, b, alpha, beta, c)
            }
            Side::Right => {
                self.try_gemm_op_f32(precision, MatOp::N, b, MatOp::N, &sym, alpha, beta, c)
            }
        }
    }

    /// Fallible HEMM with a triangle-stored Hermitian `A`; default
    /// expands the mirror and delegates to
    /// [`GemmExecutor::try_cgemm_op_c32`].
    #[allow(clippy::too_many_arguments)]
    fn try_hemm_c32(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        if a.rows() != a.cols() {
            return Err(M3xuError::ShapeMismatch {
                context: "hemm(A): A must be square",
                expected: (a.rows(), a.rows()),
                got: (a.rows(), a.cols()),
            });
        }
        let herm = MirrorView::new(a, tri, true).materialize();
        match side {
            Side::Left => self.try_cgemm_op_c32(MatOp::N, &herm, MatOp::N, b, alpha, beta, c),
            Side::Right => self.try_cgemm_op_c32(MatOp::N, b, MatOp::N, &herm, alpha, beta, c),
        }
    }
}

/// `op(X)` materialized with `alpha` folded elementwise — the same values
/// in the same order the view-iterating packers produce (`alpha == 1`
/// skips the multiply bitwise, mirroring the packed driver).
///
/// The `s * x` operand order matches the packed scale exactly; `*v *=`
/// would flip it (visible in both-NaN payload selection), hence the
/// lint allowances here and in the other fold helpers.
#[allow(clippy::assign_op_pattern)]
fn fold_op_f32(x: &Matrix<f32>, op: MatOp, alpha: f32) -> Matrix<f32> {
    let mut m = OpView::new(x, op).materialize();
    if alpha.to_bits() != 1.0f32.to_bits() {
        for v in m.as_mut_slice() {
            *v = alpha * *v;
        }
    }
    m
}

/// `beta·C` folded elementwise: `beta == 1` clones, `beta == +0.0` never
/// reads `C`'s values — the packed driver's seed semantics.
#[allow(clippy::assign_op_pattern)]
fn fold_beta_f32(c: &Matrix<f32>, beta: f32) -> Matrix<f32> {
    if beta.to_bits() == 0.0f32.to_bits() {
        return Matrix::zeros(c.rows(), c.cols());
    }
    let mut m = c.clone();
    if beta.to_bits() != 1.0f32.to_bits() {
        for v in m.as_mut_slice() {
            *v = beta * *v;
        }
    }
    m
}

/// Complex counterpart of [`fold_op_f32`].
fn fold_op_c32(x: &Matrix<C32>, op: MatOp, alpha: C32) -> Matrix<C32> {
    let mut m = OpView::new(x, op).materialize();
    let unit = alpha.re.to_bits() == 1.0f32.to_bits() && alpha.im.to_bits() == 0.0f32.to_bits();
    if !unit {
        for v in m.as_mut_slice() {
            *v = alpha * *v;
        }
    }
    m
}

/// Complex counterpart of [`fold_beta_f32`].
fn fold_beta_c32(c: &Matrix<C32>, beta: C32) -> Matrix<C32> {
    if beta.re.to_bits() == 0.0f32.to_bits() && beta.im.to_bits() == 0.0f32.to_bits() {
        return Matrix::zeros(c.rows(), c.cols());
    }
    let mut m = c.clone();
    let unit = beta.re.to_bits() == 1.0f32.to_bits() && beta.im.to_bits() == 0.0f32.to_bits();
    if !unit {
        for v in m.as_mut_slice() {
            *v = beta * *v;
        }
    }
    m
}

/// f64 counterpart of [`fold_op_f32`].
#[allow(clippy::assign_op_pattern)]
fn fold_op_f64(x: &Matrix<f64>, op: MatOp, alpha: f64) -> Matrix<f64> {
    let mut m = OpView::new(x, op).materialize();
    if alpha.to_bits() != 1.0f64.to_bits() {
        for v in m.as_mut_slice() {
            *v = alpha * *v;
        }
    }
    m
}

/// f64 counterpart of [`fold_beta_f32`].
#[allow(clippy::assign_op_pattern)]
fn fold_beta_f64(c: &Matrix<f64>, beta: f64) -> Matrix<f64> {
    if beta.to_bits() == 0.0f64.to_bits() {
        return Matrix::zeros(c.rows(), c.cols());
    }
    let mut m = c.clone();
    if beta.to_bits() != 1.0f64.to_bits() {
        for v in m.as_mut_slice() {
            *v = beta * *v;
        }
    }
    m
}

impl GemmExecutor for M3xuContext {
    fn try_gemm_f32(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        M3xuContext::try_gemm_f32(self, precision, a, b, c)
    }

    fn try_cgemm_c32(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        M3xuContext::try_cgemm_c32(self, a, b, c)
    }

    fn try_gemm_f64(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        c: &Matrix<f64>,
    ) -> Result<GemmResult<f64>, M3xuError> {
        M3xuContext::try_gemm_f64(self, precision, a, b, c)
    }

    fn try_gemm_op_f32(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f32>,
        op_b: MatOp,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        M3xuContext::try_gemm_op_f32(self, precision, op_a, a, op_b, b, alpha, beta, c)
    }

    fn try_cgemm_op_c32(
        &self,
        op_a: MatOp,
        a: &Matrix<C32>,
        op_b: MatOp,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        M3xuContext::try_cgemm_op_c32(self, op_a, a, op_b, b, alpha, beta, c)
    }

    fn try_gemm_op_f64(
        &self,
        precision: GemmPrecision,
        op_a: MatOp,
        a: &Matrix<f64>,
        op_b: MatOp,
        b: &Matrix<f64>,
        alpha: f64,
        beta: f64,
        c: &Matrix<f64>,
    ) -> Result<GemmResult<f64>, M3xuError> {
        M3xuContext::try_gemm_op_f64(self, precision, op_a, a, op_b, b, alpha, beta, c)
    }

    fn try_syrk_f32(
        &self,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        M3xuContext::try_syrk_f32(self, precision, tri, op_a, a, alpha, beta, c)
    }

    fn try_herk_c32(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        M3xuContext::try_herk_c32(self, tri, op_a, a, alpha, beta, c)
    }

    fn try_symm_f32(
        &self,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        M3xuContext::try_symm_f32(self, precision, side, tri, a, b, alpha, beta, c)
    }

    fn try_hemm_c32(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        M3xuContext::try_hemm_c32(self, side, tri, a, b, alpha, beta, c)
    }
}

/// Adapts a bare CGEMM closure to [`GemmExecutor`] — the compatibility
/// shim behind [`fft::gemm_fft_with`], which benchmarks use to run the
/// identical FFT decomposition over alternative complex-GEMM drivers
/// (e.g. [`gemm::baseline::cgemm_c32`]). Real-GEMM requests delegate to
/// the [`default_context`]; only the complex path is customised.
pub struct ClosureExecutor<F> {
    cgemm: F,
}

impl<F> ClosureExecutor<F>
where
    F: Fn(&Matrix<C32>, &Matrix<C32>, &Matrix<C32>) -> GemmResult<C32>,
{
    /// Wrap a CGEMM closure.
    pub fn new(cgemm: F) -> Self {
        ClosureExecutor { cgemm }
    }
}

impl<F> GemmExecutor for ClosureExecutor<F>
where
    F: Fn(&Matrix<C32>, &Matrix<C32>, &Matrix<C32>) -> GemmResult<C32>,
{
    fn try_gemm_f32(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        default_context().try_gemm_f32(precision, a, b, c)
    }

    fn try_cgemm_c32(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        Ok((self.cgemm)(a, b, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_record_per_mode_and_reset() {
        let ctx = M3xuContext::with_threads(2);
        let a = Matrix::<f32>::random(16, 8, 1);
        let b = Matrix::<f32>::random(8, 16, 2);
        let c = Matrix::<f32>::zeros(16, 16);
        let r = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        let s = ctx.stats();
        assert_eq!(s.gemm_calls, 1);
        assert_eq!(s.mode(MxuMode::M3xuFp32), r.stats);
        assert_eq!(s.total(), r.stats);
        assert_eq!(s.mode(MxuMode::Fp16), MmaStats::default());
        // 16x16 output in 8x8 tiles, k=8 in 2-wide chunks.
        assert_eq!(s.tiles, 4);
        assert_eq!(s.fragments, 4 * 4);
        // Rule (c) traffic: (m*k + k*n) elements at 4 bytes in FP32.
        assert_eq!(s.operand_bytes, ((16 * 8 + 8 * 16) * 4) as u64);
        ctx.reset_stats();
        assert_eq!(ctx.stats(), ExecStats::default());
    }

    #[test]
    fn delta_since_meters_an_interval() {
        let ctx = M3xuContext::with_threads(1);
        let a = Matrix::random_c32(8, 4, 3);
        let b = Matrix::random_c32(4, 8, 4);
        let c = Matrix::random_c32(8, 8, 5);
        ctx.cgemm_c32(&a, &b, &c);
        let mid = ctx.stats();
        ctx.cgemm_c32(&a, &b, &c);
        let end = ctx.stats();
        let delta = end.delta_since(&mid);
        assert_eq!(delta.gemm_calls, 1);
        assert_eq!(delta.mode(MxuMode::M3xuFp32c), mid.mode(MxuMode::M3xuFp32c));
    }

    #[test]
    fn context_gemm_bit_identical_to_free_function() {
        let ctx = M3xuContext::with_threads(3);
        let a = Matrix::<f32>::random(37, 19, 7);
        let b = Matrix::<f32>::random(19, 23, 8);
        let c = Matrix::<f32>::random(37, 23, 9);
        let via_ctx = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        let via_free = gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_eq!(via_ctx.d, via_free.d);
        assert_eq!(via_ctx.stats, via_free.stats);
    }

    #[test]
    fn arena_reuse_stays_bit_identical() {
        // Repeated GEMMs of different shapes through one context reuse the
        // packed-operand arena; results must not depend on that.
        let ctx = M3xuContext::with_threads(2);
        for &(m, k, n) in &[(16, 16, 16), (9, 7, 17), (33, 5, 12), (16, 16, 16)] {
            let a = Matrix::<f32>::random(m, k, (m + k) as u64);
            let b = Matrix::<f32>::random(k, n, (k + n) as u64);
            let c = Matrix::<f32>::random(m, n, (m + n) as u64);
            let got = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
            let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
            for (x, y) in got.d.as_slice().iter().zip(want.d.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn closure_executor_customises_only_the_complex_path() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let exec = ClosureExecutor::new(|a: &Matrix<C32>, b: &Matrix<C32>, c: &Matrix<C32>| {
            calls.fetch_add(1, Ordering::Relaxed);
            gemm::baseline::cgemm_c32(a, b, c)
        });
        let a = Matrix::random_c32(4, 4, 11);
        let b = Matrix::random_c32(4, 4, 12);
        let c = Matrix::random_c32(4, 4, 13);
        let r = exec.try_cgemm_c32(&a, &b, &c).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(r.d, gemm::baseline::cgemm_c32(&a, &b, &c).d);
    }

    #[test]
    fn default_context_threads_fixed_once() {
        let t1 = default_context().threads();
        let t2 = default_context().threads();
        assert!(t1 >= 1);
        assert_eq!(t1, t2);
    }
}
