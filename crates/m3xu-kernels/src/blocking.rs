//! Cache-aware `K`-blocking for the tiled GEMM drivers.
//!
//! The packed pipeline reads the `B` operand's k-major value plane once
//! per output-row band; without blocking, a large GEMM streams the whole
//! `k x n` plane through the cache for every band of 8 output rows. The
//! drivers therefore split the reduction into a two-level hierarchy:
//!
//! * an **L2 epoch** of `kc2` reduction steps — one pool dispatch per
//!   epoch, so the `kc2 x n` slice of `B`'s value plane stays L2-resident
//!   while every output tile of the grid consumes it;
//! * an **L1 panel** of `kc1` steps inside each tile task — the slice of
//!   `B` feeding one 8-column tile (`kc1 x 8` values) and the matching
//!   `A` row segments stay L1-resident across the tile's 8 output rows.
//!
//! Panel sizes derive from the detected cache sizes (sysfs, with
//! conservative fallbacks), target half of each level, and are rounded to
//! fragment-depth multiples so every panel boundary is also a rounding
//! boundary — blocking changes traversal order *between* fragment chunks,
//! never the arithmetic inside one, which is what keeps the drivers
//! bit-identical to the unblocked loop. `M3XU_KC1` / `M3XU_KC2` override
//! the derived sizes (in reduction elements, before rounding).

use std::sync::OnceLock;

/// Fallback data-cache sizes (bytes) when detection fails: small enough
/// to be safe on anything this runs on.
const L1_FALLBACK: usize = 32 * 1024;
const L2_FALLBACK: usize = 1024 * 1024;

/// Detected (L1d, L2) data-cache sizes in bytes, resolved once.
fn cache_sizes() -> (usize, usize) {
    static SIZES: OnceLock<(usize, usize)> = OnceLock::new();
    *SIZES.get_or_init(|| {
        let (mut l1, mut l2) = (None, None);
        for idx in 0..8 {
            let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
            let read = |f: &str| std::fs::read_to_string(format!("{base}/{f}"));
            let Ok(level) = read("level") else { break };
            // Instruction-only caches don't hold operand planes.
            if matches!(read("type").as_deref().map(str::trim), Ok("Instruction")) {
                continue;
            }
            let size = read("size").ok().and_then(|s| parse_size(s.trim()));
            match (level.trim(), size) {
                ("1", Some(s)) => l1 = Some(s),
                ("2", Some(s)) => l2 = Some(s),
                _ => {}
            }
        }
        (l1.unwrap_or(L1_FALLBACK), l2.unwrap_or(L2_FALLBACK))
    })
}

/// Parse a sysfs cache size string (`"48K"`, `"2048K"`, `"1M"`).
fn parse_size(s: &str) -> Option<usize> {
    if let Some(k) = s.strip_suffix(['K', 'k']) {
        k.parse::<usize>().ok().map(|v| v * 1024)
    } else if let Some(m) = s.strip_suffix(['M', 'm']) {
        m.parse::<usize>().ok().map(|v| v * 1024 * 1024)
    } else {
        s.parse::<usize>().ok()
    }
}

/// An env override in reduction elements, if set and positive.
fn env_override(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
}

/// The resolved two-level reduction blocking for one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KPlan {
    /// L1 panel depth (reduction elements) — a multiple of the fragment
    /// depth, so panel edges stay rounding-chunk edges.
    pub kc1: usize,
    /// L2 epoch depth — a multiple of `kc1`.
    pub kc2: usize,
}

impl KPlan {
    /// Derive the blocking for a `k`-deep reduction over `n` output
    /// columns with `val_bytes`-wide value-plane elements, chunked at
    /// fragment depth `frag_k`.
    pub fn new(frag_k: usize, k: usize, n: usize, val_bytes: usize) -> KPlan {
        assert!(frag_k > 0, "fragment depth must be positive");
        let k = k.max(1);
        let (l1, l2) = cache_sizes();
        // L1 panel: the 8-column B slice (8 * kc1 * val_bytes) plus the A
        // row segment should fill about half of L1d.
        let kc1 = env_override("M3XU_KC1").unwrap_or(l1 / 2 / (8 * val_bytes).max(1));
        // L2 epoch: the full-width B slice (n * kc2 * val_bytes) should
        // fill about half of L2.
        let kc2 = env_override("M3XU_KC2").unwrap_or(l2 / 2 / (n.max(1) * val_bytes).max(1));
        // Round to fragment-depth multiples and clamp into [frag_k, k]:
        // every panel boundary must be a rounding boundary, and a panel
        // never needs to exceed the whole reduction.
        let round = |v: usize| (v / frag_k).max(1) * frag_k;
        let kc1 = round(kc1).min(round(k + frag_k - 1));
        // kc2 is a multiple of kc1 so L1 panels never straddle an epoch.
        let kc2 = (kc2 / kc1).max(1) * kc1;
        KPlan { kc1, kc2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_fragment_aligned_and_ordered() {
        for (frag_k, k, n, vb) in [
            (2, 512, 512, 4),
            (4, 1000, 33, 4),
            (1, 7, 8, 8),
            (2, 1, 1, 4),
            (4, 4096, 4096, 4),
        ] {
            let p = KPlan::new(frag_k, k, n, vb);
            assert_eq!(p.kc1 % frag_k, 0, "{p:?}");
            assert_eq!(p.kc2 % p.kc1, 0, "{p:?}");
            assert!(p.kc1 >= frag_k && p.kc2 >= p.kc1, "{p:?}");
        }
    }

    #[test]
    fn parse_size_handles_sysfs_suffixes() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("2M"), Some(2 * 1024 * 1024));
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn detection_always_yields_positive_sizes() {
        let (l1, l2) = cache_sizes();
        assert!(l1 >= 4 * 1024 && l2 >= 64 * 1024, "l1={l1} l2={l2}");
    }
}
