//! # m3xu-kernels — application substrates of the M3XU reproduction
//!
//! Everything the paper's evaluation runs *on top of* the MXU:
//!
//! * [`gemm`] — CUTLASS-style tiled FP32 GEMM / FP32C CGEMM drivers over
//!   the functional M3XU, parallelised across output tiles;
//! * [`blas3`] — the full BLAS-3 surface on the same packed pipeline:
//!   `op(X)` operands, alpha/beta accumulate, SYMM/HEMM, and
//!   triangular-scheduled SYRK/HERK;
//! * [`conv2d`] — im2col convolution (the Fig. 7 CNNs' compute core);
//! * [`fft`] — reference DFT, radix-2 FFT, the tcFFT-style GEMM
//!   formulation on FP32C, and the Fig. 6 performance model;
//! * [`dnn`] — CNN layer inventories + the Fig. 7 training-latency model,
//!   and a real MLP trained end-to-end on M3XU GEMMs;
//! * [`mrf`] — extended-phase-graph MRF dictionary generation with
//!   batched complex-GEMM RF mixing, and the Fig. 8 model;
//! * [`knn`] — GEMM-formulated K-nearest neighbours and the Fig. 9
//!   heatmap model;
//! * [`poly`] — exact integer polynomial multiplication via the M3XU FFT
//!   (the introduction's security/NTT-style workload);
//! * [`quantum`] — quantum-circuit state-vector simulation on FP32C
//!   GEMMs (the introduction's quantum workload);
//! * [`solver`] — conjugate-gradient solves whose convergence separates
//!   true FP32 from TF32 (the introduction's scientific workloads);
//! * [`conv_grad`] — convolution backward passes (dgrad/wgrad), the GEMMs
//!   behind §VI-C2's 3.6x backward speedup;
//! * [`faulty`] — the [`FaultyExecutor`] chaos seam: fault injection plus
//!   ABFT-checked self-healing execution over any of the above.
//!
//! All of them execute through [`context::M3xuContext`] — one object
//! owning the worker pool, the packed-operand scratch arena, and the
//! always-on [`context::ExecStats`] instruction/traffic counters that
//! `m3xu_gpu`'s analytical model is cross-validated against. The free
//! functions above are thin wrappers over the process-wide
//! [`context::default_context`].

#![warn(missing_docs)]

pub mod blas3;
pub mod blocking;
pub mod context;
pub mod conv2d;
pub mod conv_grad;
pub mod dnn;
pub mod faulty;
pub mod fft;
pub mod gemm;
pub mod knn;
pub mod mrf;
pub mod poly;
pub mod pool;
pub mod quantum;
pub mod solver;

pub use blas3::{
    cgemm_op_c32, gemm_op_f32, gemm_op_f64, hemm_c32, herk_c32, symm_f32, syrk_f32,
    try_cgemm_op_c32, try_gemm_op_f32, try_gemm_op_f64, try_hemm_c32, try_herk_c32, try_symm_f32,
    try_syrk_f32, Side,
};
pub use context::{default_context, ClosureExecutor, ExecStats, GemmExecutor, M3xuContext};
pub use faulty::FaultyExecutor;
pub use gemm::{
    cgemm_c32, cgemm_c32_on, cmatmul_c32, gemm_f32, gemm_f32_on, matmul_f32, try_cgemm_c32,
    try_cgemm_c32_on, try_cmatmul_c32, try_gemm_f32, try_gemm_f32_on, try_matmul_f32,
    GemmPrecision, GemmResult,
};
pub use m3xu_mxu::error::M3xuError;
pub use m3xu_mxu::fault::{FaultPlan, FaultSummary};
pub use pool::WorkerPool;
