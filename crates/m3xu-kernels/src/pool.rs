//! A persistent worker pool for the GEMM drivers.
//!
//! The seed drivers spawned a fresh scoped thread team on *every* GEMM
//! call. That is fine for one big multiplication, but the FFT and MRF
//! kernels issue thousands of small CGEMMs, where thread spawn/join
//! dominates the actual fragment work. [`WorkerPool`] is built once (see
//! [`global`]) and reused: workers park on a condvar between calls, and
//! each [`WorkerPool::run`] distributes a task range over them with one
//! atomic counter — no allocation, no spawning.
//!
//! Sizing: `M3XU_THREADS` overrides the worker count (`0` means inline
//! execution on the caller, i.e. a pool of size 1; unparseable values are
//! ignored with a one-time warning); the default is
//! [`std::thread::available_parallelism`]. A pool of size 1 executes
//! inline on the caller.
//!
//! Reentrancy: a task that submits to a pool from inside a pool task (the
//! nested-GEMM pattern) executes the nested run inline on its own thread
//! — see [`WorkerPool::run`].
//!
//! Supervision: the submitter's completion wait doubles as a supervisor.
//! If an epoch does not drain within a short interval, the pool scans for
//! workers whose threads have *exited* (a crash that unwound past the
//! per-task `catch_unwind`, or an injected death), writes off their
//! `active` slots so the epoch terminates with the usual task-panic error
//! instead of wedging forever, and spawns replacement workers that join
//! from the next epoch on. Task-level self-healing (re-execution) is the
//! ABFT driver's job, not the pool's: pool tasks are not idempotent in
//! general, so the pool never re-runs anything on its own.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the submitter waits on the done condvar before scanning for
/// dead workers. Purely a liveness bound: a healthy epoch is unaffected.
const SUPERVISE_INTERVAL: Duration = Duration::from_millis(50);

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads GEMM drivers should use, from the `M3XU_THREADS`
/// environment variable:
///
/// * a positive integer — that many threads;
/// * `0` — inline execution on the caller (a pool of size 1), matching
///   DESIGN.md's "degrades to inline execution" contract;
/// * unset — the machine's available parallelism;
/// * anything else — the available-parallelism default, after a one-time
///   `stderr` warning (a silently ignored override is how a mis-deployed
///   service ends up oversubscribed).
pub fn configured_threads() -> usize {
    static WARN: Once = Once::new();
    match std::env::var("M3XU_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(0) => 1,
            Ok(n) => n,
            Err(_) => {
                WARN.call_once(|| {
                    eprintln!(
                        "m3xu: ignoring unparseable M3XU_THREADS={s:?}; \
                         using available parallelism"
                    );
                });
                default_parallelism()
            }
        },
        Err(std::env::VarError::NotPresent) => default_parallelism(),
        Err(std::env::VarError::NotUnicode(_)) => {
            WARN.call_once(|| {
                eprintln!("m3xu: ignoring non-unicode M3XU_THREADS; using available parallelism");
            });
            default_parallelism()
        }
    }
}

/// The process-wide pool the GEMM drivers submit to, built on first use
/// with [`configured_threads`] threads.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(configured_threads()))
}

/// A type-erased pointer to the job closure of the current epoch. Only
/// dereferenced between job post and the submitter's `active == 0` wait,
/// while the closure is guaranteed alive on the submitter's stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pool's epoch protocol bounds its lifetime to the `run` call.
unsafe impl Send for JobPtr {}

#[derive(Default)]
struct PoolState {
    job: Option<JobPtr>,
    tasks: usize,
    epoch: u64,
    /// Workers that have not yet finished the current epoch. Set to the
    /// full worker count *at post time* so the submitter can never observe
    /// completion before a slow worker has even woken up.
    active: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Serialises submitters: held for a `run`'s whole epoch, so a second
    /// thread submitting concurrently waits instead of corrupting
    /// [`PoolState`]. Same-thread reentrancy never reaches this lock —
    /// nested runs are detected first and executed inline.
    submit: Mutex<()>,
    /// Workers wait here for a new epoch (or shutdown).
    job_cv: Condvar,
    /// The submitter waits here for `active == 0`.
    done_cv: Condvar,
    /// Next unclaimed task index of the current epoch.
    next: AtomicUsize,
    /// Fault-injection hook: each pending unit makes one worker thread
    /// exit abruptly (no unwinding, no `active` decrement) at its next
    /// task-claim point, simulating a crashed worker the supervisor must
    /// recover from. See [`WorkerPool::inject_worker_death`].
    die: AtomicUsize,
}

/// Claim one pending injected death, if any.
fn take_death(shared: &Shared) -> bool {
    let mut cur = shared.die.load(Ordering::Relaxed);
    while cur > 0 {
        match shared
            .die
            .compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(c) => cur = c,
        }
    }
    false
}

thread_local! {
    /// True while this thread is executing a pool task (of any pool).
    /// [`WorkerPool::run`] checks it to divert nested submissions to
    /// inline execution: a nested GEMM issued from inside a pooled task
    /// would otherwise re-post on a pool whose epoch it is itself part
    /// of, corrupting the state machine or deadlocking.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker for "this thread is inside a pool task": restores the
/// previous value even if the task panics.
struct InTaskGuard(bool);

impl InTaskGuard {
    fn enter() -> InTaskGuard {
        let prev = IN_POOL_TASK.get();
        IN_POOL_TASK.set(true);
        InTaskGuard(prev)
    }
}

impl Drop for InTaskGuard {
    fn drop(&mut self) {
        IN_POOL_TASK.set(self.0);
    }
}

/// Recover a mutex guard even if another thread panicked while holding
/// the lock. Pool state is panic-consistent: tasks run under
/// `catch_unwind`, and the epoch protocol's updates are all single-field
/// writes, so the data behind a poisoned lock is still valid.
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

/// A fixed team of worker threads executing `Fn(task_index)` jobs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Worker join handles. Behind a mutex because the supervisor scan
    /// (inside `run`'s completion wait) reaps dead workers and spawns
    /// replacements. Lock order: `state` before `workers`.
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl WorkerPool {
    /// Build a pool that executes jobs on `threads` threads total: the
    /// calling thread participates, so `threads - 1` workers are spawned
    /// (none for `threads <= 1`, which runs jobs inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            submit: Mutex::new(()),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            die: AtomicUsize::new(0),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, 0))
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// Total threads (workers + the participating caller).
    pub fn size(&self) -> usize {
        self.threads
    }

    /// Fault-injection hook: make `n` worker threads exit abruptly at
    /// their next task-claim point — no unwinding, no bookkeeping, as if
    /// the OS killed them. The supervisor detects the dead workers,
    /// terminates the epoch with the usual task-panic error, and spawns
    /// replacements. A no-op on an inline pool (`size() <= 1`), which has
    /// no workers to kill.
    pub fn inject_worker_death(&self, n: usize) {
        self.shared.die.fetch_add(n, Ordering::Relaxed);
    }

    /// Execute `f(0), f(1), ..., f(tasks - 1)` across the pool, returning
    /// once all tasks have finished. Tasks are claimed dynamically from an
    /// atomic counter, so uneven task costs balance automatically. Panics
    /// in `f` propagate to the caller after the epoch drains.
    ///
    /// `run` is reentrancy-safe: a task that itself submits to a pool
    /// (this one or any other) executes the nested job inline on its own
    /// thread. Reposting from inside an epoch the thread is part of would
    /// corrupt the epoch state machine or deadlock; inline execution is
    /// bit-identical because tasks are independent by contract. Distinct
    /// threads submitting concurrently serialise on an internal lock.
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        if IN_POOL_TASK.get() {
            // Nested submission from inside a pool task: run inline. The
            // flag is already set, so deeper nesting stays inline too.
            run_inline(tasks, &f);
            return;
        }
        if self.threads <= 1 {
            let _in_task = InTaskGuard::enter();
            run_inline(tasks, &f);
            return;
        }
        // One submitting thread at a time; held until the epoch drains.
        let _submit = recover(self.shared.submit.lock());
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the pointer is only dereferenced by workers between the
        // job post below and the `active == 0` wait, during which `f` is
        // alive on this stack frame.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
                as *const _
        });
        {
            let mut st = recover(self.shared.state.lock());
            self.shared.next.store(0, Ordering::Relaxed);
            st.job = Some(ptr);
            st.tasks = tasks;
            st.epoch += 1;
            st.active = self.threads - 1;
            self.shared.job_cv.notify_all();
        }
        // The caller is a full team member: drain the counter too.
        let mut caller_panic = None;
        {
            let _in_task = InTaskGuard::enter();
            loop {
                let t = self.shared.next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks {
                    break;
                }
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(t))) {
                    caller_panic = Some(p);
                    // Keep draining: the workers share the counter, and the
                    // job pointer must stay posted until they all finish.
                }
            }
        }
        let worker_panicked = {
            let mut st = recover(self.shared.state.lock());
            while st.active > 0 {
                let (g, timeout) = self
                    .shared
                    .done_cv
                    .wait_timeout(st, SUPERVISE_INTERVAL)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
                if timeout.timed_out() && st.active > 0 {
                    self.supervise(&mut st);
                }
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        if let Some(p) = caller_panic {
            resume_unwind(p);
        }
        if worker_panicked {
            panic!("a worker-pool task panicked");
        }
    }

    /// The supervisor scan, run while the completion wait is overdue:
    /// reap workers whose threads exited without reporting (crashed or
    /// injected deaths), release their `active` slots so the epoch can
    /// terminate, flag the epoch as panicked (their claimed tasks may be
    /// lost), and spawn replacements pinned to the *current* epoch so they
    /// only pick up work from the next one.
    fn supervise(&self, st: &mut PoolState) {
        let mut workers = recover(self.workers.lock());
        let mut dead = 0;
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                let _ = workers.swap_remove(i).join();
                dead += 1;
            } else {
                i += 1;
            }
        }
        if dead > 0 {
            st.panicked = true;
            st.active = st.active.saturating_sub(dead);
            for _ in 0..dead {
                let shared = Arc::clone(&self.shared);
                let epoch = st.epoch;
                workers.push(std::thread::spawn(move || worker_loop(&shared, epoch)));
            }
        }
    }
}

/// Inline execution with the same panic semantics as a pooled epoch:
/// every task runs (a panicking task does not abort its siblings), and
/// the first panic propagates after the batch drains.
fn run_inline<F: Fn(usize) + Sync>(tasks: usize, f: &F) {
    let mut first_panic = None;
    for t in 0..tasks {
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(t))) {
            first_panic.get_or_insert(p);
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = recover(self.shared.state.lock());
            st.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for h in recover(self.workers.lock()).drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, start_epoch: u64) {
    let mut seen_epoch = start_epoch;
    loop {
        let (job, tasks) = {
            let mut st = recover(shared.state.lock());
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break (job, st.tasks);
                    }
                }
                st = recover(shared.job_cv.wait(st));
            }
        };
        let mut panicked = false;
        {
            let _in_task = InTaskGuard::enter();
            loop {
                if take_death(shared) {
                    // Injected abrupt death: exit without decrementing
                    // `active`, exactly like a crashed thread. The
                    // submitter's supervisor scan recovers the epoch.
                    return;
                }
                let t = shared.next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks {
                    break;
                }
                // SAFETY: `job` stays valid until the submitter sees
                // `active == 0`, which cannot happen before this loop exits.
                let f = unsafe { &*job.0 };
                if catch_unwind(AssertUnwindSafe(|| f(t))).is_err() {
                    panicked = true;
                }
            }
        }
        let mut st = recover(shared.state.lock());
        st.panicked |= panicked;
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1, 2, 4, 9] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.size(), threads);
            let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
            pool.run(hits.len(), |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "task {t} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_epochs() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(10, |t| {
                sum.fetch_add(t as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 100 * 45);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(0, |_| panic!("must not run"));
    }

    #[test]
    fn task_panic_propagates() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |t| {
                if t == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool must survive a panicking epoch.
        let sum = AtomicU64::new(0);
        pool.run(4, |t| {
            sum.fetch_add(t as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn nested_run_on_same_pool_executes_inline() {
        // Before the thread-local guard this deadlocked or corrupted
        // PoolState in release builds (the old guard was a debug_assert).
        let pool = WorkerPool::new(4);
        let outer = AtomicU64::new(0);
        let inner = AtomicU64::new(0);
        pool.run(8, |_| {
            outer.fetch_add(1, Ordering::Relaxed);
            pool.run(16, |t| {
                inner.fetch_add(t as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert_eq!(inner.load(Ordering::Relaxed), 8 * (16 * 17 / 2));
        // The pool must still be healthy for subsequent epochs.
        let sum = AtomicU64::new(0);
        pool.run(4, |t| {
            sum.fetch_add(t as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn deeply_nested_and_cross_pool_runs_complete() {
        let a = WorkerPool::new(3);
        let b = WorkerPool::new(2);
        let count = AtomicU64::new(0);
        a.run(4, |_| {
            b.run(4, |_| {
                a.run(2, |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 4 * 4 * 2);
    }

    #[test]
    fn concurrent_submitters_serialise_safely() {
        let pool = WorkerPool::new(4);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        pool.run(10, |t| {
                            sum.fetch_add(t as u64, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4 * 25 * 45);
    }

    #[test]
    fn inline_panic_runs_all_tasks_before_propagating() {
        // The inline paths (size-1 pool, nested runs) must have the same
        // panic semantics as a pooled epoch: drain every task, then
        // propagate — not abort the batch at the first panic.
        let pool = WorkerPool::new(1);
        let ran = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(5, |t| {
                ran.fetch_add(1, Ordering::Relaxed);
                if t == 1 {
                    panic!("inline boom");
                }
            });
        }));
        assert!(caught.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 5, "siblings must still run");

        // Same contract on the nested-inline path.
        let pool = WorkerPool::new(4);
        let inner_ran = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, |_| {
                pool.run(4, |u| {
                    inner_ran.fetch_add(1, Ordering::Relaxed);
                    if u == 2 {
                        panic!("nested inline boom");
                    }
                });
            });
        }));
        assert!(caught.is_err());
        assert_eq!(inner_ran.load(Ordering::Relaxed), 2 * 4);
    }

    #[test]
    fn supervisor_recovers_from_abrupt_worker_death() {
        for threads in [2, 4] {
            let pool = WorkerPool::new(threads);
            pool.inject_worker_death(1);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.run(64, |_| {});
            }));
            assert!(
                caught.is_err(),
                "a lost worker must surface as the epoch's panic error ({threads} threads)"
            );
            // The replacement worker serves subsequent epochs: every task
            // still runs exactly once.
            let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
            pool.run(hits.len(), |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {t} ({threads} threads)");
            }
        }
    }

    #[test]
    fn inject_death_is_a_noop_on_inline_pools() {
        let pool = WorkerPool::new(1);
        pool.inject_worker_death(3);
        let sum = AtomicU64::new(0);
        pool.run(4, |t| {
            sum.fetch_add(t as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn nested_run_survives_panicking_sibling_epoch() {
        // A panic inside a nested inline run propagates like any task
        // panic, and the pool stays usable afterwards.
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |t| {
                pool.run(2, |u| {
                    if t == 2 && u == 1 {
                        panic!("nested boom");
                    }
                });
            });
        }));
        assert!(caught.is_err());
        let sum = AtomicU64::new(0);
        pool.run(3, |t| {
            sum.fetch_add(t as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 3);
    }
}
