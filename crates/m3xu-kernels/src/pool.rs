//! A persistent worker pool for the GEMM drivers.
//!
//! The seed drivers spawned a fresh scoped thread team on *every* GEMM
//! call. That is fine for one big multiplication, but the FFT and MRF
//! kernels issue thousands of small CGEMMs, where thread spawn/join
//! dominates the actual fragment work. [`WorkerPool`] is built once (see
//! [`global`]) and reused: workers park on a condvar between calls, and
//! each [`WorkerPool::run`] distributes a task range over them with one
//! atomic counter — no allocation, no spawning.
//!
//! Sizing: `M3XU_THREADS` overrides the worker count; the default is
//! [`std::thread::available_parallelism`]. A pool of size 1 executes
//! inline on the caller.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// The number of threads GEMM drivers should use: the `M3XU_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn configured_threads() -> usize {
    std::env::var("M3XU_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The process-wide pool the GEMM drivers submit to, built on first use
/// with [`configured_threads`] threads.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(configured_threads()))
}

/// A type-erased pointer to the job closure of the current epoch. Only
/// dereferenced between job post and the submitter's `active == 0` wait,
/// while the closure is guaranteed alive on the submitter's stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pool's epoch protocol bounds its lifetime to the `run` call.
unsafe impl Send for JobPtr {}

#[derive(Default)]
struct PoolState {
    job: Option<JobPtr>,
    tasks: usize,
    epoch: u64,
    /// Workers that have not yet finished the current epoch. Set to the
    /// full worker count *at post time* so the submitter can never observe
    /// completion before a slow worker has even woken up.
    active: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    job_cv: Condvar,
    /// The submitter waits here for `active == 0`.
    done_cv: Condvar,
    /// Next unclaimed task index of the current epoch.
    next: AtomicUsize,
}

/// A fixed team of worker threads executing `Fn(task_index)` jobs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Build a pool that executes jobs on `threads` threads total: the
    /// calling thread participates, so `threads - 1` workers are spawned
    /// (none for `threads <= 1`, which runs jobs inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total threads (workers + the participating caller).
    pub fn size(&self) -> usize {
        self.threads
    }

    /// Execute `f(0), f(1), ..., f(tasks - 1)` across the pool, returning
    /// once all tasks have finished. Tasks are claimed dynamically from an
    /// atomic counter, so uneven task costs balance automatically. Panics
    /// in `f` propagate to the caller after the epoch drains.
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        if self.handles.is_empty() {
            for t in 0..tasks {
                f(t);
            }
            return;
        }
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the pointer is only dereferenced by workers between the
        // job post below and the `active == 0` wait, during which `f` is
        // alive on this stack frame.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
                as *const _
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.job.is_none(), "WorkerPool::run is not reentrant");
            self.shared.next.store(0, Ordering::Relaxed);
            st.job = Some(ptr);
            st.tasks = tasks;
            st.epoch += 1;
            st.active = self.handles.len();
            self.shared.job_cv.notify_all();
        }
        // The caller is a full team member: drain the counter too.
        let mut caller_panic = None;
        loop {
            let t = self.shared.next.fetch_add(1, Ordering::Relaxed);
            if t >= tasks {
                break;
            }
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(t))) {
                caller_panic = Some(p);
                // Keep draining: the workers share the counter, and the
                // job pointer must stay posted until they all finish.
            }
        }
        let worker_panicked = {
            let mut st = self.shared.state.lock().unwrap();
            while st.active > 0 {
                st = self.shared.done_cv.wait(st).unwrap();
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        if let Some(p) = caller_panic {
            resume_unwind(p);
        }
        if worker_panicked {
            panic!("a worker-pool task panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, tasks) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break (job, st.tasks);
                    }
                }
                st = shared.job_cv.wait(st).unwrap();
            }
        };
        let mut panicked = false;
        loop {
            let t = shared.next.fetch_add(1, Ordering::Relaxed);
            if t >= tasks {
                break;
            }
            // SAFETY: `job` stays valid until the submitter sees
            // `active == 0`, which cannot happen before this loop exits.
            let f = unsafe { &*job.0 };
            if catch_unwind(AssertUnwindSafe(|| f(t))).is_err() {
                panicked = true;
            }
        }
        let mut st = shared.state.lock().unwrap();
        st.panicked |= panicked;
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1, 2, 4, 9] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.size(), threads);
            let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
            pool.run(hits.len(), |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "task {t} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_epochs() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(10, |t| {
                sum.fetch_add(t as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 100 * 45);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(0, |_| panic!("must not run"));
    }

    #[test]
    fn task_panic_propagates() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |t| {
                if t == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool must survive a panicking epoch.
        let sum = AtomicU64::new(0);
        pool.run(4, |t| {
            sum.fetch_add(t as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
