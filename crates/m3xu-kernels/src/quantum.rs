//! Quantum-circuit state-vector simulation — the §I complex-GEMM workload
//! ("simulating quantum computing needs complex matrix multiplications to
//! represent qubits and their operations").
//!
//! A library-grade version of the `quantum_sim` example: gates build
//! full-register unitaries and every application is a batched FP32C GEMM
//! on the M3XU. Unitarity is exactly the property that exposes complex
//! arithmetic error, so the tests double as numerics validation.

use crate::context::{default_context, GemmExecutor};
use m3xu_fp::complex::Complex;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::matrix::Matrix;

type C32 = Complex<f32>;

/// Common single- and two-qubit gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Z-rotation by `theta`.
    Rz(f32),
}

impl Gate {
    /// The gate's 2x2 unitary.
    pub fn matrix(self) -> Matrix<C32> {
        let s = std::f32::consts::FRAC_1_SQRT_2;
        let c = |re: f32, im: f32| Complex::new(re, im);
        let m = match self {
            Gate::H => vec![c(s, 0.0), c(s, 0.0), c(s, 0.0), c(-s, 0.0)],
            Gate::X => vec![c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0)],
            Gate::Y => vec![c(0.0, 0.0), c(0.0, -1.0), c(0.0, 1.0), c(0.0, 0.0)],
            Gate::Z => vec![c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(-1.0, 0.0)],
            Gate::S => vec![c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(0.0, 1.0)],
            Gate::T => {
                vec![
                    c(1.0, 0.0),
                    c(0.0, 0.0),
                    c(0.0, 0.0),
                    C32::cis(std::f32::consts::FRAC_PI_4),
                ]
            }
            Gate::Rz(theta) => {
                vec![
                    C32::cis(-theta / 2.0),
                    c(0.0, 0.0),
                    c(0.0, 0.0),
                    C32::cis(theta / 2.0),
                ]
            }
        };
        Matrix::from_vec(2, 2, m)
    }
}

/// An `n`-qubit register simulated by full state-vector evolution.
#[derive(Debug)]
pub struct QuantumRegister {
    n: usize,
    /// `2^n x 1` amplitude vector.
    state: Matrix<C32>,
    /// Total FP32C GEMM MMA instructions issued.
    pub mma_instructions: u64,
}

/// Kronecker product.
fn kron(a: &Matrix<C32>, b: &Matrix<C32>) -> Matrix<C32> {
    Matrix::from_fn(a.rows() * b.rows(), a.cols() * b.cols(), |i, j| {
        a.get(i / b.rows(), j / b.cols()) * b.get(i % b.rows(), j % b.cols())
    })
}

/// The largest register the full state-vector simulation accepts
/// (`2^n` amplitudes; every gate is a dense `2^n x 2^n` unitary).
pub const MAX_QUBITS: usize = 10;

impl QuantumRegister {
    /// `|0...0>` on `n` qubits. Panics on an out-of-range `n`; see
    /// [`QuantumRegister::try_new`] for the fallible form.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`QuantumRegister::new`]: `n` must lie in
    /// `1..=`[`MAX_QUBITS`] (the state vector is `2^n` amplitudes).
    pub fn try_new(n: usize) -> Result<Self, M3xuError> {
        if !(1..=MAX_QUBITS).contains(&n) {
            return Err(M3xuError::OutOfRange {
                context: "QuantumRegister::new(qubits)",
                value: n,
                min: 1,
                max: MAX_QUBITS,
            });
        }
        let mut state = Matrix::<C32>::zeros(1 << n, 1);
        state.set(0, 0, Complex::new(1.0, 0.0));
        Ok(QuantumRegister {
            n,
            state,
            mma_instructions: 0,
        })
    }

    /// Number of qubits.
    pub fn qubits(&self) -> usize {
        self.n
    }

    /// Current amplitudes.
    pub fn amplitudes(&self) -> Vec<C32> {
        (0..1usize << self.n)
            .map(|i| self.state.get(i, 0))
            .collect()
    }

    /// Measurement probability of each basis state.
    pub fn probabilities(&self) -> Vec<f32> {
        self.amplitudes().iter().map(|a| a.norm_sqr()).collect()
    }

    /// `sum |a|^2` — must stay 1 under unitary evolution.
    pub fn norm_sqr(&self) -> f32 {
        self.probabilities().iter().sum()
    }

    fn apply_unitary_on<X: GemmExecutor>(&mut self, exec: &X, u: &Matrix<C32>) {
        let r = exec
            .try_cgemm_c32(u, &self.state, &Matrix::zeros(1 << self.n, 1))
            .unwrap_or_else(|e| panic!("{e}"));
        self.state = r.d;
        self.mma_instructions += r.stats.instructions;
    }

    /// Apply a single-qubit gate to qubit `q` (0 = most significant).
    /// Panics on an out-of-range qubit; see [`QuantumRegister::try_apply`].
    pub fn apply(&mut self, gate: Gate, q: usize) {
        self.try_apply(gate, q).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`QuantumRegister::apply`], on the process-wide default
    /// context.
    pub fn try_apply(&mut self, gate: Gate, q: usize) -> Result<(), M3xuError> {
        self.try_apply_on(default_context(), gate, q)
    }

    /// [`QuantumRegister::try_apply`] on an explicit [`GemmExecutor`].
    pub fn try_apply_on<X: GemmExecutor>(
        &mut self,
        exec: &X,
        gate: Gate,
        q: usize,
    ) -> Result<(), M3xuError> {
        if q >= self.n {
            return Err(M3xuError::OutOfRange {
                context: "QuantumRegister::apply(qubit)",
                value: q,
                min: 0,
                max: self.n - 1,
            });
        }
        let mut u = Matrix::identity_c32(1 << q);
        u = kron(&u, &gate.matrix());
        let u = kron(&u, &Matrix::identity_c32(1 << (self.n - q - 1)));
        self.apply_unitary_on(exec, &u);
        Ok(())
    }

    /// Apply CNOT with control `c` and target `t`. Panics on invalid
    /// qubit indices; see [`QuantumRegister::try_cnot`].
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.try_cnot(c, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`QuantumRegister::cnot`]: both qubits must be in range
    /// and distinct. Executes on the process-wide default context.
    pub fn try_cnot(&mut self, c: usize, t: usize) -> Result<(), M3xuError> {
        self.try_cnot_on(default_context(), c, t)
    }

    /// [`QuantumRegister::try_cnot`] on an explicit [`GemmExecutor`].
    pub fn try_cnot_on<X: GemmExecutor>(
        &mut self,
        exec: &X,
        c: usize,
        t: usize,
    ) -> Result<(), M3xuError> {
        for (context, q) in [
            ("QuantumRegister::cnot(control)", c),
            ("QuantumRegister::cnot(target)", t),
        ] {
            if q >= self.n {
                return Err(M3xuError::OutOfRange {
                    context,
                    value: q,
                    min: 0,
                    max: self.n - 1,
                });
            }
        }
        if c == t {
            return Err(M3xuError::InvalidArgument {
                context: "QuantumRegister::cnot: control and target must differ",
            });
        }
        let dim = 1usize << self.n;
        let u = Matrix::from_fn(dim, dim, |row, col| {
            let cbit = (col >> (self.n - 1 - c)) & 1;
            let expect = if cbit == 1 {
                col ^ (1 << (self.n - 1 - t))
            } else {
                col
            };
            if row == expect {
                Complex::new(1.0, 0.0)
            } else {
                C32::ZERO
            }
        });
        self.apply_unitary_on(exec, &u);
        Ok(())
    }

    /// Expectation of Z on qubit `q`: `P(0) - P(1)`.
    pub fn expect_z(&self, q: usize) -> f32 {
        let probs = self.probabilities();
        let mut e = 0.0;
        for (i, p) in probs.iter().enumerate() {
            let bit = (i >> (self.n - 1 - q)) & 1;
            e += if bit == 0 { *p } else { -*p };
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::cmatmul_c32;

    #[test]
    fn gates_are_unitary() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::T,
            Gate::Rz(0.7),
        ] {
            let u = g.matrix();
            // U U† = I.
            let udag = Matrix::from_fn(2, 2, |i, j| u.get(j, i).conj());
            let prod = cmatmul_c32(&u, &udag);
            for i in 0..2 {
                for j in 0..2 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    let v = prod.get(i, j);
                    assert!((v.re - expect).abs() < 1e-6 && v.im.abs() < 1e-6, "{g:?}");
                }
            }
        }
    }

    #[test]
    fn x_flips_and_h_superposes() {
        let mut reg = QuantumRegister::new(1);
        reg.apply(Gate::X, 0);
        assert!((reg.probabilities()[1] - 1.0).abs() < 1e-6);
        let mut reg = QuantumRegister::new(1);
        reg.apply(Gate::H, 0);
        let p = reg.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-6 && (p[1] - 0.5).abs() < 1e-6);
        // H twice is identity.
        reg.apply(Gate::H, 0);
        assert!((reg.probabilities()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn bell_state() {
        let mut reg = QuantumRegister::new(2);
        reg.apply(Gate::H, 0);
        reg.cnot(0, 1);
        let p = reg.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-6);
        assert!((p[0b11] - 0.5).abs() < 1e-6);
        assert!(p[0b01] < 1e-9 && p[0b10] < 1e-9);
        // Perfect correlation: <Z0> = <Z1> = 0.
        assert!(reg.expect_z(0).abs() < 1e-6);
        assert!(reg.expect_z(1).abs() < 1e-6);
        assert!(reg.mma_instructions > 0, "must have used the M3XU");
    }

    #[test]
    fn unitarity_preserved_through_deep_circuit() {
        // 60 gates on 4 qubits: the norm drifts only by FP32C rounding.
        let mut reg = QuantumRegister::new(4);
        let gates = [Gate::H, Gate::T, Gate::S, Gate::X, Gate::Rz(0.3), Gate::Y];
        for (i, g) in gates.iter().cycle().take(60).enumerate() {
            reg.apply(*g, i % 4);
            if i % 7 == 0 {
                reg.cnot(i % 4, (i + 1) % 4);
            }
        }
        let norm = reg.norm_sqr();
        assert!((norm - 1.0).abs() < 1e-4, "norm drifted to {norm}");
    }

    #[test]
    fn rz_phase_is_invisible_to_z_basis() {
        let mut reg = QuantumRegister::new(1);
        reg.apply(Gate::H, 0);
        let before = reg.probabilities();
        reg.apply(Gate::Rz(1.234), 0);
        let after = reg.probabilities();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-6);
        }
        // ... but visible after another H (interference).
        reg.apply(Gate::H, 0);
        let p = reg.probabilities();
        assert!((p[0] - 1.0).abs() > 0.1, "phase should shift interference");
    }

    #[test]
    fn try_register_rejects_bad_sizes_and_qubits() {
        assert!(matches!(
            QuantumRegister::try_new(0).unwrap_err(),
            M3xuError::OutOfRange { value: 0, .. }
        ));
        assert!(matches!(
            QuantumRegister::try_new(MAX_QUBITS + 1).unwrap_err(),
            M3xuError::OutOfRange { .. }
        ));
        let mut reg = QuantumRegister::try_new(2).unwrap();
        assert!(matches!(
            reg.try_apply(Gate::H, 2).unwrap_err(),
            M3xuError::OutOfRange { value: 2, .. }
        ));
        assert!(matches!(
            reg.try_cnot(0, 3).unwrap_err(),
            M3xuError::OutOfRange { value: 3, .. }
        ));
        assert!(matches!(
            reg.try_cnot(1, 1).unwrap_err(),
            M3xuError::InvalidArgument { .. }
        ));
        // A failed gate application leaves the register untouched.
        assert!((reg.probabilities()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cnot_truth_table() {
        for (input, expect) in [
            (0b00usize, 0b00usize),
            (0b01, 0b01),
            (0b10, 0b11),
            (0b11, 0b10),
        ] {
            let mut reg = QuantumRegister::new(2);
            if input & 0b10 != 0 {
                reg.apply(Gate::X, 0);
            }
            if input & 0b01 != 0 {
                reg.apply(Gate::X, 1);
            }
            reg.cnot(0, 1);
            let p = reg.probabilities();
            assert!((p[expect] - 1.0).abs() < 1e-5, "input {input:02b}");
        }
    }
}
