//! The full BLAS-3 surface over the packed fragment pipeline.
//!
//! [`gemm`](crate::gemm) ships the plain `D = A·B + C` drivers; this
//! module generalizes them to the surface real workloads sit on:
//!
//! * **`op(X)` operands** — `X`, `X^T`, `X^H` iterate straight out of the
//!   stored buffer through [`OpView`] (no transposed or conjugated copy is
//!   ever materialized; see [`m3xu_mxu::matrix`]);
//! * **alpha/beta accumulate** — `D = alpha·op(A)·op(B) + beta·C`. Alpha
//!   folds into `op(A)`'s elements *before* buffer quantisation (one
//!   multiply per element, bitwise-skipped when `alpha == 1`); beta folds
//!   into the tile seeds (`beta == 1` reads `C` directly — today's
//!   accumulate path bit-for-bit; `beta == +0.0` seeds zeros without
//!   reading `C`, so an uninitialised/NaN `C` never leaks — today's
//!   overwrite path bit-for-bit);
//! * **SYMM/HEMM** — a triangle-stored symmetric/Hermitian operand
//!   expands on the fly through [`MirrorView`];
//! * **SYRK/HERK** — rank-k updates schedule **only the output tiles that
//!   intersect the requested triangle**: `T(T+1)/2` of the full `T²` tile
//!   grid (`T = n/8` tiles per side), an asymptotic 2x saving in MMA
//!   instructions, steps, and wall time that
//!   [`m3xu_gpu::validate`] predicts exactly. Off-diagonal tiles store
//!   their full 8x8 block (it lies entirely inside the triangle);
//!   diagonal tiles store element-predicated, so the unreferenced
//!   triangle of `C` passes through **byte-for-byte untouched**.
//!
//! All drivers run the same packed epoch/panel pipeline as plain GEMM
//! (same fragment grid, same K-chunk rounding boundaries), so an op-GEMM
//! with `op = N`, `alpha = 1`, `beta = 1` is bit-identical — and
//! stats-identical — to [`crate::gemm::try_gemm_f32`].
//!
//! Every entry point here is covered by the checked (ABFT) driver: the
//! expected checksums are computed from the **packed** operand planes —
//! after alpha folding, op views, mirrors, and quantisation — so an armed
//! fault plan reroutes the whole surface through the checked
//! `try_blas3_abft` driver, including the triangular SYRK/HERK schedules
//! (verification prices only the `T(T+1)/2` scheduled tiles).

use crate::blocking::KPlan;
use crate::context::{self, GemmSample, M3xuContext};
use crate::gemm::{
    check_precision, AbftElem, GemmPrecision, GemmResult, PackedElem, SendPtr, ACC_SCRATCH, DPU,
    MAX_EPOCH_ATTEMPTS, MAX_TILE_ATTEMPTS,
};
use crate::pool::WorkerPool;
use m3xu_fp::complex::Complex;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::fault::{FaultPlan, FaultSummary, TaskFault};
use m3xu_mxu::matrix::{MatOp, MatSource, Matrix, MirrorView, OpView, Triangle};
use m3xu_mxu::mma::{MmaShape, MmaStats};
use m3xu_mxu::modes::MxuMode;
use m3xu_mxu::packed::{fragment_stats, PackedOperand, PackedStorage};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which side a SYMM/HEMM's symmetric operand multiplies from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// `C = alpha·A·B + beta·C` (A is the symmetric/Hermitian operand).
    Left,
    /// `C = alpha·B·A + beta·C`.
    Right,
}

/// The output region a BLAS-3 driver writes.
#[derive(Debug, Clone, Copy)]
enum OutRegion {
    /// Every output tile (GEMM/SYMM/HEMM).
    Full,
    /// Only tiles intersecting the triangle (SYRK/HERK).
    Tri(Triangle),
}

impl OutRegion {
    /// True if logical output element `(i, j)` is written by this region.
    #[inline]
    fn writes(self, i: usize, j: usize) -> bool {
        match self {
            OutRegion::Full => true,
            OutRegion::Tri(t) => t.contains(i, j),
        }
    }
}

/// An element type the BLAS-3 drivers can run: [`PackedElem`] plus the
/// alpha/beta scalar algebra and the source-generic (op/alpha-aware)
/// packers.
pub(crate) trait Blas3Elem: PackedElem {
    /// The alpha/beta scalar type (`f32`, [`Complex<f32>`], `f64`).
    type Scalar: Copy + Send + Sync + 'static;
    /// Bitwise `== 1` — the multiplication skip the bit-exactness
    /// contract with the plain drivers hangs on.
    fn is_unit(s: Self::Scalar) -> bool;
    /// Bitwise `== +0.0` — the "never read C" overwrite fast path.
    fn is_zero(s: Self::Scalar) -> bool;
    /// `s * x` (the plain IEEE multiply the reference oracle mirrors).
    fn scale(s: Self::Scalar, x: Self) -> Self;
    /// The HERK diagonal seed `beta·Re(c)` — imaginary parts of a
    /// Hermitian diagonal are never referenced (BLAS convention).
    fn real_diag_seed(beta: Self::Scalar, c: Self) -> Self;
    /// The value with any imaginary component forced to `+0.0`.
    fn force_real(x: Self) -> Self;
    /// Pack rows (the first operand) from any logical source, folding
    /// `alpha` before quantisation.
    fn pack_rows_src<S: MatSource<Self>>(
        src: &S,
        alpha: Self::Scalar,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> PackedOperand;
    /// Pack columns (the second operand) from any logical source.
    fn pack_cols_src<S: MatSource<Self>>(
        src: &S,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> PackedOperand;
}

impl Blas3Elem for f32 {
    type Scalar = f32;
    #[inline]
    fn is_unit(s: f32) -> bool {
        s.to_bits() == 1.0f32.to_bits()
    }
    #[inline]
    fn is_zero(s: f32) -> bool {
        s.to_bits() == 0.0f32.to_bits()
    }
    #[inline]
    fn scale(s: f32, x: f32) -> f32 {
        s * x
    }
    #[inline]
    fn real_diag_seed(beta: f32, c: f32) -> f32 {
        if Self::is_zero(beta) {
            0.0
        } else if Self::is_unit(beta) {
            c
        } else {
            beta * c
        }
    }
    #[inline]
    fn force_real(x: f32) -> f32 {
        x
    }
    fn pack_rows_src<S: MatSource<f32>>(
        src: &S,
        alpha: f32,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> PackedOperand {
        PackedOperand::try_pack_rows_f32_src_in(src, alpha, mode, storage)
            .unwrap_or_else(|e| panic!("{e}"))
    }
    fn pack_cols_src<S: MatSource<f32>>(
        src: &S,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> PackedOperand {
        PackedOperand::try_pack_cols_f32_src_in(src, 1.0, mode, storage)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Blas3Elem for Complex<f32> {
    type Scalar = Complex<f32>;
    #[inline]
    fn is_unit(s: Complex<f32>) -> bool {
        s.re.to_bits() == 1.0f32.to_bits() && s.im.to_bits() == 0.0f32.to_bits()
    }
    #[inline]
    fn is_zero(s: Complex<f32>) -> bool {
        s.re.to_bits() == 0.0f32.to_bits() && s.im.to_bits() == 0.0f32.to_bits()
    }
    #[inline]
    fn scale(s: Complex<f32>, x: Complex<f32>) -> Complex<f32> {
        s * x
    }
    #[inline]
    fn real_diag_seed(beta: Complex<f32>, c: Complex<f32>) -> Complex<f32> {
        // HERK's beta is real by signature; only its real part and C's
        // real part participate on the diagonal.
        if Self::is_zero(beta) {
            Complex::<f32>::ZERO
        } else if Self::is_unit(beta) {
            Complex::new(c.re, 0.0)
        } else {
            Complex::new(beta.re * c.re, 0.0)
        }
    }
    #[inline]
    fn force_real(x: Complex<f32>) -> Complex<f32> {
        Complex::new(x.re, 0.0)
    }
    fn pack_rows_src<S: MatSource<Complex<f32>>>(
        src: &S,
        alpha: Complex<f32>,
        _mode: MxuMode,
        storage: PackedStorage,
    ) -> PackedOperand {
        PackedOperand::pack_rows_c32_src_in(src, alpha, storage)
    }
    fn pack_cols_src<S: MatSource<Complex<f32>>>(
        src: &S,
        _mode: MxuMode,
        storage: PackedStorage,
    ) -> PackedOperand {
        PackedOperand::pack_cols_c32_src_in(src, Complex::<f32>::ONE, storage)
    }
}

impl Blas3Elem for f64 {
    type Scalar = f64;
    #[inline]
    fn is_unit(s: f64) -> bool {
        s.to_bits() == 1.0f64.to_bits()
    }
    #[inline]
    fn is_zero(s: f64) -> bool {
        s.to_bits() == 0.0f64.to_bits()
    }
    #[inline]
    fn scale(s: f64, x: f64) -> f64 {
        s * x
    }
    #[inline]
    fn real_diag_seed(beta: f64, c: f64) -> f64 {
        if Self::is_zero(beta) {
            0.0
        } else if Self::is_unit(beta) {
            c
        } else {
            beta * c
        }
    }
    #[inline]
    fn force_real(x: f64) -> f64 {
        x
    }
    fn pack_rows_src<S: MatSource<f64>>(
        src: &S,
        alpha: f64,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> PackedOperand {
        PackedOperand::try_pack_rows_f64_src_in(src, alpha, mode, storage)
            .unwrap_or_else(|e| panic!("{e}"))
    }
    fn pack_cols_src<S: MatSource<f64>>(
        src: &S,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> PackedOperand {
        PackedOperand::try_pack_cols_f64_src_in(src, 1.0, mode, storage)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The generic BLAS-3 driver: `D = alpha·a·b + beta·C` over `region`,
/// where `a` and `b` are *logical* sources (op views, mirror views, or
/// plain matrices) and alpha has already been assigned to fold into `a`.
///
/// Same pipeline as the plain packed driver — pack once, L2 epochs over
/// `kc2` reduction slices, L1 panels inside, one exact accumulate +
/// rounding per fragment K-chunk — with three generalizations: the tile
/// list may cover only a triangle, tile seeds come from the beta-folded
/// base (written into `D` up front), and diagonal tiles of a triangular
/// region store element-predicated (leaving the unreferenced triangle of
/// `C` byte-identical in `D`).
#[allow(clippy::too_many_arguments)]
fn try_blas3_packed<E, SA, SB>(
    pool: &WorkerPool,
    mode: MxuMode,
    a: &SA,
    b: &SB,
    alpha: E::Scalar,
    beta: E::Scalar,
    c: &Matrix<E>,
    region: OutRegion,
    force_real_diag: bool,
    ctx: Option<&M3xuContext>,
) -> Result<GemmResult<E>, M3xuError>
where
    E: Blas3Elem,
    SA: MatSource<E>,
    SB: MatSource<E>,
{
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if b.rows() != k {
        return Err(M3xuError::ShapeMismatch {
            context: "blas3(B): inner dimensions must agree",
            expected: (k, n),
            got: (b.rows(), n),
        });
    }
    if (c.rows(), c.cols()) != (m, n) {
        return Err(M3xuError::ShapeMismatch {
            context: "blas3(C): C must be m x n",
            expected: (m, n),
            got: (c.rows(), c.cols()),
        });
    }

    let frag = MmaShape::BASELINE_FP16.for_mode(mode);
    if frag.m * frag.n > ACC_SCRATCH {
        return Err(M3xuError::FragmentOverflow {
            needed: frag.m * frag.n,
            capacity: ACC_SCRATCH,
        });
    }
    let (tiles_m, tiles_n, k_chunks) = frag.grid(m, n, k);

    let mut d = c.clone();
    // Fold beta into the written region of D up front: this is both the
    // first epoch's seed and the final value of the degenerate k = 0
    // path. beta == 1 leaves the clone untouched (zero extra work, the
    // plain accumulate path); beta == +0.0 never reads C's values.
    let beta_unit = E::is_unit(beta);
    let beta_zero = E::is_zero(beta);
    if !beta_unit || force_real_diag {
        for i in 0..m {
            for j in 0..n {
                if !region.writes(i, j) {
                    continue;
                }
                let seed = if force_real_diag && i == j {
                    E::real_diag_seed(beta, c.get(i, j))
                } else if beta_zero {
                    E::default()
                } else if beta_unit {
                    continue;
                } else {
                    E::scale(beta, c.get(i, j))
                };
                d.set(i, j, seed);
            }
        }
    }

    if k_chunks == 0 || m == 0 || n == 0 {
        if let Some(cx) = ctx {
            cx.counters().record(&GemmSample {
                mode,
                stats: MmaStats::default(),
                tiles: 0,
                fragments: 0,
                operand_bytes: 0,
                pack_ns: 0,
                exec_ns: 0,
            });
        }
        return Ok(GemmResult {
            d,
            stats: MmaStats::default(),
        });
    }

    // The output-tile schedule. A triangular region keeps only the tiles
    // that intersect the triangle: T(T+1)/2 of the T x T grid — the
    // near-2x saving the analytical model predicts exactly.
    let tiles: Vec<(usize, usize)> = match region {
        OutRegion::Full => (0..tiles_m)
            .flat_map(|ti| (0..tiles_n).map(move |tj| (ti, tj)))
            .collect(),
        OutRegion::Tri(tri) => (0..tiles_m)
            .flat_map(|ti| (0..tiles_n).map(move |tj| (ti, tj)))
            .filter(|&(ti, tj)| match tri {
                Triangle::Lower => tj <= ti,
                Triangle::Upper => ti <= tj,
            })
            .collect(),
    };

    let (sa, sb) = match ctx {
        Some(cx) => cx.take_scratch(),
        None => (PackedStorage::default(), PackedStorage::default()),
    };
    let t_pack = Instant::now();
    let pa = E::pack_rows_src(a, alpha, mode, sa);
    let pb = E::pack_cols_src(b, mode, sb);
    let pack_ns = t_pack.elapsed().as_nanos() as u64;

    let plan = KPlan::new(frag.k, k, n, E::VAL_BYTES);
    let dptr = SendPtr(d.as_mut_slice().as_mut_ptr());
    let t_exec = Instant::now();
    let mut ke0 = 0usize;
    while ke0 < k {
        let ke1 = (ke0 + plan.kc2).min(k);
        pool.run(tiles.len(), |tid| {
            let (ti, tj) = tiles[tid];
            let (i0, j0) = (ti * frag.m, tj * frag.n);
            let rows = frag.m.min(m - i0);
            let cols = frag.n.min(n - j0);
            let mut acc = [E::default(); ACC_SCRATCH]; // >= frag.m * frag.n, checked at entry
            let acc = &mut acc[..rows * cols];
            // Seed from D: the beta-folded base on the first epoch, the
            // previous epoch's partials afterwards. On a triangular
            // region's diagonal tiles the out-of-triangle positions seed
            // whatever D holds there (the untouched canary bytes) — their
            // accumulations are discarded by the predicated store below.
            for (i, row) in acc.chunks_exact_mut(cols).enumerate() {
                // SAFETY: this tile owns its disjoint output region,
                // epochs run sequentially, and the pointer outlives the
                // pool run.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        dptr.get().add((i0 + i) * n + j0) as *const E,
                        row.as_mut_ptr(),
                        cols,
                    );
                }
            }
            DPU.with(|dpu| {
                let mut dpu = dpu.borrow_mut();
                let mut kb = ke0;
                while kb < ke1 {
                    let kbend = (kb + plan.kc1).min(ke1);
                    E::execute_panel(
                        &mut dpu, &pa, &pb, i0, rows, j0, cols, kb, kbend, frag.k, acc,
                    );
                    kb = kbend;
                }
            });
            // Epilogue. Off-diagonal triangular tiles lie entirely inside
            // the triangle, so they (like full-region tiles) bulk-store;
            // only diagonal tiles pay per-element predication.
            let bulk = match region {
                OutRegion::Full => true,
                OutRegion::Tri(_) => ti != tj,
            };
            if bulk {
                for (i, row) in acc.chunks_exact(cols).enumerate() {
                    // SAFETY: as above — this tile's disjoint region.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            row.as_ptr(),
                            dptr.get().add((i0 + i) * n + j0),
                            cols,
                        );
                    }
                }
            } else {
                for i in 0..rows {
                    for j in 0..cols {
                        let (gi, gj) = (i0 + i, j0 + j);
                        if !region.writes(gi, gj) {
                            continue;
                        }
                        let mut v = acc[i * cols + j];
                        if force_real_diag && gi == gj {
                            v = E::force_real(v);
                        }
                        // SAFETY: as above — disjoint predicated store.
                        unsafe {
                            *dptr.get().add(gi * n + gj) = v;
                        }
                    }
                }
            }
        });
        ke0 = ke1;
    }
    let exec_ns = t_exec.elapsed().as_nanos() as u64;

    let frags = (tiles.len() * k_chunks) as u64;
    let stats = fragment_stats(mode, frag).scaled(frags);
    if let Some(cx) = ctx {
        cx.counters().record(&GemmSample {
            mode,
            stats,
            tiles: tiles.len() as u64,
            fragments: frags,
            // Rule (c) operand traffic at logical dimensions: a rank-k
            // update reads op(A) twice (n·k each way), a SYMM reads the
            // expanded square operand — the same formula the serve layer
            // and the analytical model mirror.
            operand_bytes: ((m * k + k * n) * mode.element_bytes()) as u64,
            pack_ns,
            exec_ns,
        });
        cx.put_scratch(pa.into_storage(), pb.into_storage());
    }
    Ok(GemmResult { d, stats })
}

/// The ABFT-checked BLAS-3 driver: [`try_blas3_packed`]'s surface with
/// the per-k-chunk checksum verification and hierarchical recovery of
/// [`crate::gemm::try_gemm_abft`] (chunk-level rollback/re-execution up
/// to [`MAX_TILE_ATTEMPTS`], epoch re-submission up to
/// [`MAX_EPOCH_ATTEMPTS`], typed [`M3xuError::FaultDetected`] beyond).
///
/// The expected checksums read the **packed** planes, so alpha folding,
/// op/mirror views, and quantisation are already on both sides of the
/// comparison; a triangular region verifies only its `T(T+1)/2`
/// scheduled tiles. Tile seeds are recomputed **in-task** from `beta`
/// and `C` (a pure function), so a lost pool epoch re-submits the whole
/// grid without any partially-written `D` state leaking into the rerun —
/// every rerun is exactly idempotent. Out-of-region positions of a
/// diagonal tile seed the untouched `C` canary values; they participate
/// in the chunk checksum like any other accumulator lane but are
/// discarded by the predicated store.
#[allow(clippy::too_many_arguments)]
fn try_blas3_abft<E, SA, SB>(
    pool: &WorkerPool,
    op_name: &'static str,
    mode: MxuMode,
    a: &SA,
    b: &SB,
    alpha: E::Scalar,
    beta: E::Scalar,
    c: &Matrix<E>,
    region: OutRegion,
    force_real_diag: bool,
    ctx: Option<&M3xuContext>,
    plan: &FaultPlan,
) -> Result<(GemmResult<E>, FaultSummary), M3xuError>
where
    E: Blas3Elem + AbftElem,
    SA: MatSource<E>,
    SB: MatSource<E>,
{
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if b.rows() != k {
        return Err(M3xuError::ShapeMismatch {
            context: "blas3(B): inner dimensions must agree",
            expected: (k, n),
            got: (b.rows(), n),
        });
    }
    if (c.rows(), c.cols()) != (m, n) {
        return Err(M3xuError::ShapeMismatch {
            context: "blas3(C): C must be m x n",
            expected: (m, n),
            got: (c.rows(), c.cols()),
        });
    }

    let frag = MmaShape::BASELINE_FP16.for_mode(mode);
    if frag.m * frag.n > ACC_SCRATCH {
        return Err(M3xuError::FragmentOverflow {
            needed: frag.m * frag.n,
            capacity: ACC_SCRATCH,
        });
    }
    let (tiles_m, tiles_n, k_chunks) = frag.grid(m, n, k);

    let beta_unit = E::is_unit(beta);
    let beta_zero = E::is_zero(beta);
    // The beta-folded seed of output element (gi, gj): a pure function of
    // the inputs, shared by the degenerate k = 0 path and the in-task
    // tile seeding, so epoch reruns always start from identical state.
    let seed_at = |gi: usize, gj: usize| -> E {
        if !region.writes(gi, gj) {
            c.get(gi, gj)
        } else if force_real_diag && gi == gj {
            E::real_diag_seed(beta, c.get(gi, gj))
        } else if beta_zero {
            E::default()
        } else if beta_unit {
            c.get(gi, gj)
        } else {
            E::scale(beta, c.get(gi, gj))
        }
    };

    let mut d = c.clone();
    if k_chunks == 0 || m == 0 || n == 0 {
        if !beta_unit || force_real_diag {
            for i in 0..m {
                for j in 0..n {
                    if region.writes(i, j) {
                        d.set(i, j, seed_at(i, j));
                    }
                }
            }
        }
        if let Some(cx) = ctx {
            cx.counters().record(&GemmSample {
                mode,
                stats: MmaStats::default(),
                tiles: 0,
                fragments: 0,
                operand_bytes: 0,
                pack_ns: 0,
                exec_ns: 0,
            });
        }
        return Ok((
            GemmResult {
                d,
                stats: MmaStats::default(),
            },
            FaultSummary::default(),
        ));
    }

    let tiles: Vec<(usize, usize)> = match region {
        OutRegion::Full => (0..tiles_m)
            .flat_map(|ti| (0..tiles_n).map(move |tj| (ti, tj)))
            .collect(),
        OutRegion::Tri(tri) => (0..tiles_m)
            .flat_map(|ti| (0..tiles_n).map(move |tj| (ti, tj)))
            .filter(|&(ti, tj)| match tri {
                Triangle::Lower => tj <= ti,
                Triangle::Upper => ti <= tj,
            })
            .collect(),
    };

    let (sa, sb) = match ctx {
        Some(cx) => cx.take_scratch(),
        None => (PackedStorage::default(), PackedStorage::default()),
    };
    let t_pack = Instant::now();
    let pa = E::pack_rows_src(a, alpha, mode, sa);
    let pb = E::pack_cols_src(b, mode, sb);
    let pack_ns = t_pack.elapsed().as_nanos() as u64;

    // One salt per driver invocation: a serve-layer retry of this whole
    // call draws an independent fault schedule.
    let salt = plan.next_call();

    let detected = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let failed_tiles = AtomicU64::new(0);
    let epoch_uncorrected = AtomicU64::new(0);

    let dptr = SendPtr(d.as_mut_slice().as_mut_ptr());
    let t_exec = Instant::now();
    let mut epoch_ok = false;
    for epoch_attempt in 0..MAX_EPOCH_ATTEMPTS {
        failed_tiles.store(0, Ordering::Relaxed);
        epoch_uncorrected.store(0, Ordering::Relaxed);
        let task = |tid: usize| {
            match plan.task_fault(salt, epoch_attempt, tid as u64) {
                Some(TaskFault::Stall { millis }) => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                Some(TaskFault::Panic) => {
                    panic!("m3xu fault injection: task panic (tile {tid})");
                }
                None => {}
            }
            let (ti, tj) = tiles[tid];
            let (i0, j0) = (ti * frag.m, tj * frag.n);
            let rows = frag.m.min(m - i0);
            let cols = frag.n.min(n - j0);
            let mut acc = [E::default(); ACC_SCRATCH]; // >= frag.m * frag.n, checked at entry
            let acc = &mut acc[..rows * cols];
            let mut seeds = [E::default(); ACC_SCRATCH];
            let seeds = &mut seeds[..rows * cols];
            for i in 0..rows {
                for j in 0..cols {
                    acc[i * cols + j] = seed_at(i0 + i, j0 + j);
                }
            }
            let mut tile_detected = 0u64;
            let mut tile_retries = 0u64;
            let mut tile_uncorrected = 0u64;
            let mut tile_failed = false;
            DPU.with(|dpu| {
                let mut dpu = dpu.borrow_mut();
                for (ci, k0) in (0..k).step_by(frag.k).enumerate() {
                    let kend = (k0 + frag.k).min(k);
                    seeds.copy_from_slice(acc);
                    let expected = E::expected_chunk(&pa, &pb, seeds, i0, rows, j0, cols, k0, kend);
                    let mut chunk_fails = 0u64;
                    let mut chunk_ok = false;
                    for attempt in 0..MAX_TILE_ATTEMPTS {
                        if attempt > 0 {
                            acc.copy_from_slice(seeds);
                        }
                        // Specials bypass the multiplier array: an
                        // unverifiable chunk is not a fault target.
                        let fault = if expected.ok {
                            plan.mma_fault(salt, epoch_attempt, tid as u64, ci as u64, attempt)
                        } else {
                            None
                        };
                        let computed = E::execute_checked(
                            &mut dpu,
                            &pa,
                            &pb,
                            i0,
                            rows,
                            j0,
                            cols,
                            k0,
                            frag.k,
                            acc,
                            fault.as_ref(),
                        );
                        if expected.matches(&computed) {
                            chunk_ok = true;
                            break;
                        }
                        chunk_fails += 1;
                    }
                    tile_detected += chunk_fails;
                    if chunk_ok {
                        tile_retries += chunk_fails;
                    } else {
                        tile_retries += chunk_fails.saturating_sub(1);
                        tile_uncorrected += chunk_fails;
                        tile_failed = true;
                        break;
                    }
                }
            });
            detected.fetch_add(tile_detected, Ordering::Relaxed);
            retries.fetch_add(tile_retries, Ordering::Relaxed);
            if tile_failed {
                epoch_uncorrected.fetch_add(tile_uncorrected, Ordering::Relaxed);
                failed_tiles.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let bulk = match region {
                OutRegion::Full => true,
                OutRegion::Tri(_) => ti != tj,
            };
            if bulk {
                for (i, row) in acc.chunks_exact(cols).enumerate() {
                    // SAFETY: this tile owns its disjoint output region,
                    // the pointer outlives the pool run, and epoch reruns
                    // rewrite the same bytes.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            row.as_ptr(),
                            dptr.get().add((i0 + i) * n + j0),
                            cols,
                        );
                    }
                }
            } else {
                for i in 0..rows {
                    for j in 0..cols {
                        let (gi, gj) = (i0 + i, j0 + j);
                        if !region.writes(gi, gj) {
                            continue;
                        }
                        let mut v = acc[i * cols + j];
                        if force_real_diag && gi == gj {
                            v = E::force_real(v);
                        }
                        // SAFETY: as above — disjoint predicated store.
                        unsafe {
                            *dptr.get().add(gi * n + gj) = v;
                        }
                    }
                }
            }
        };
        // An injected task panic (or a worker killed mid-epoch) surfaces
        // as a panic out of `run` once the epoch has drained; catch it
        // and re-submit rather than unwinding through the caller.
        match catch_unwind(AssertUnwindSafe(|| pool.run(tiles.len(), task))) {
            Ok(()) => {
                epoch_ok = true;
                break;
            }
            Err(_) => {
                detected.fetch_add(1, Ordering::Relaxed);
                if epoch_attempt + 1 < MAX_EPOCH_ATTEMPTS {
                    retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    let exec_ns = t_exec.elapsed().as_nanos() as u64;

    let detected = detected.load(Ordering::Relaxed);
    let retries = retries.load(Ordering::Relaxed);
    let (failed, uncorrected) = if epoch_ok {
        (
            failed_tiles.load(Ordering::Relaxed),
            epoch_uncorrected.load(Ordering::Relaxed),
        )
    } else {
        (tiles.len() as u64, 1)
    };
    let summary = FaultSummary {
        detected,
        corrected: detected - uncorrected,
        retries,
    };

    if let Some(cx) = ctx {
        cx.counters().record_faults(&summary);
    }
    if failed > 0 {
        if let Some(cx) = ctx {
            cx.put_scratch(pa.into_storage(), pb.into_storage());
        }
        return Err(M3xuError::FaultDetected {
            op: op_name,
            mode,
            tiles: failed as usize,
            detected,
            corrected: summary.corrected,
            retries,
        });
    }

    // The production sample: a pure function of the fragment grid,
    // bit-identical accounting to the unchecked BLAS-3 driver.
    let frags = (tiles.len() * k_chunks) as u64;
    let stats = fragment_stats(mode, frag).scaled(frags);
    if let Some(cx) = ctx {
        cx.counters().record(&GemmSample {
            mode,
            stats,
            tiles: tiles.len() as u64,
            fragments: frags,
            operand_bytes: ((m * k + k * n) * mode.element_bytes()) as u64,
            pack_ns,
            exec_ns,
        });
        cx.put_scratch(pa.into_storage(), pb.into_storage());
    }
    Ok((GemmResult { d, stats }, summary))
}

/// Route a BLAS-3 call through the checked driver when the context has an
/// armed fault plan, the production driver otherwise — the single policy
/// seam every `*_faulted_ctx` body below goes through.
#[allow(clippy::too_many_arguments)]
fn try_blas3_routed<E, SA, SB>(
    ctx: &M3xuContext,
    op_name: &'static str,
    mode: MxuMode,
    a: &SA,
    b: &SB,
    alpha: E::Scalar,
    beta: E::Scalar,
    c: &Matrix<E>,
    region: OutRegion,
    force_real_diag: bool,
) -> Result<(GemmResult<E>, FaultSummary), M3xuError>
where
    E: Blas3Elem + AbftElem,
    SA: MatSource<E>,
    SB: MatSource<E>,
{
    match ctx.fault_plan() {
        Some(plan) => try_blas3_abft(
            ctx.pool(),
            op_name,
            mode,
            a,
            b,
            alpha,
            beta,
            c,
            region,
            force_real_diag,
            Some(ctx),
            plan,
        ),
        None => try_blas3_packed(
            ctx.pool(),
            mode,
            a,
            b,
            alpha,
            beta,
            c,
            region,
            force_real_diag,
            Some(ctx),
        )
        .map(|r| (r, FaultSummary::default())),
    }
}

/// The transpose of `op(A)` for a real rank-k update's second operand
/// (`H` collapses to `T` on real elements).
fn syrk_b_op(op: MatOp) -> MatOp {
    match op {
        MatOp::N => MatOp::T,
        MatOp::T | MatOp::H => MatOp::N,
    }
}

// ---------------------------------------------------------------------------
// Context-attached bodies (the `M3xuContext` methods delegate here).
// ---------------------------------------------------------------------------

/// Context-attached op-GEMM: `D = alpha·op(A)·op(B) + beta·C` on an f32
/// engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_gemm_op_f32_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    op_a: MatOp,
    a: &Matrix<f32>,
    op_b: MatOp,
    b: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    try_gemm_op_f32_faulted_ctx(ctx, precision, op_a, a, op_b, b, alpha, beta, c).map(|(r, _)| r)
}

/// [`try_gemm_op_f32_ctx`] with the invocation's [`FaultSummary`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_gemm_op_f32_faulted_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    op_a: MatOp,
    a: &Matrix<f32>,
    op_b: MatOp,
    b: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
    check_precision(precision, true, "gemm_op_f32")?;
    try_blas3_routed(
        ctx,
        "gemm_op",
        precision.mode(),
        &OpView::new(a, op_a),
        &OpView::new(b, op_b),
        alpha,
        beta,
        c,
        OutRegion::Full,
        false,
    )
}

/// Context-attached complex op-GEMM on the FP32C engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_cgemm_op_c32_ctx(
    ctx: &M3xuContext,
    op_a: MatOp,
    a: &Matrix<Complex<f32>>,
    op_b: MatOp,
    b: &Matrix<Complex<f32>>,
    alpha: Complex<f32>,
    beta: Complex<f32>,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    try_cgemm_op_c32_faulted_ctx(ctx, op_a, a, op_b, b, alpha, beta, c).map(|(r, _)| r)
}

/// [`try_cgemm_op_c32_ctx`] with the invocation's [`FaultSummary`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_cgemm_op_c32_faulted_ctx(
    ctx: &M3xuContext,
    op_a: MatOp,
    a: &Matrix<Complex<f32>>,
    op_b: MatOp,
    b: &Matrix<Complex<f32>>,
    alpha: Complex<f32>,
    beta: Complex<f32>,
    c: &Matrix<Complex<f32>>,
) -> Result<(GemmResult<Complex<f32>>, FaultSummary), M3xuError> {
    try_blas3_routed(
        ctx,
        "cgemm_op",
        MxuMode::M3xuFp32c,
        &OpView::new(a, op_a),
        &OpView::new(b, op_b),
        alpha,
        beta,
        c,
        OutRegion::Full,
        false,
    )
}

/// Context-attached emulated-FP64 op-GEMM.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_gemm_op_f64_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    op_a: MatOp,
    a: &Matrix<f64>,
    op_b: MatOp,
    b: &Matrix<f64>,
    alpha: f64,
    beta: f64,
    c: &Matrix<f64>,
) -> Result<GemmResult<f64>, M3xuError> {
    try_gemm_op_f64_faulted_ctx(ctx, precision, op_a, a, op_b, b, alpha, beta, c).map(|(r, _)| r)
}

/// [`try_gemm_op_f64_ctx`] with the invocation's [`FaultSummary`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_gemm_op_f64_faulted_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    op_a: MatOp,
    a: &Matrix<f64>,
    op_b: MatOp,
    b: &Matrix<f64>,
    alpha: f64,
    beta: f64,
    c: &Matrix<f64>,
) -> Result<(GemmResult<f64>, FaultSummary), M3xuError> {
    check_precision(precision, false, "gemm_op_f64")?;
    try_blas3_routed(
        ctx,
        "gemm_op_f64",
        precision.mode(),
        &OpView::new(a, op_a),
        &OpView::new(b, op_b),
        alpha,
        beta,
        c,
        OutRegion::Full,
        false,
    )
}

/// Context-attached SYRK: `C := alpha·op(A)·op(A)^T + beta·C`, writing
/// only the `tri` triangle of `C`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_syrk_f32_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    tri: Triangle,
    op_a: MatOp,
    a: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    try_syrk_f32_faulted_ctx(ctx, precision, tri, op_a, a, alpha, beta, c).map(|(r, _)| r)
}

/// [`try_syrk_f32_ctx`] with the invocation's [`FaultSummary`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_syrk_f32_faulted_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    tri: Triangle,
    op_a: MatOp,
    a: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
    check_precision(precision, true, "syrk_f32")?;
    try_blas3_routed(
        ctx,
        "syrk",
        precision.mode(),
        &OpView::new(a, op_a),
        &OpView::new(a, syrk_b_op(op_a)),
        alpha,
        beta,
        c,
        OutRegion::Tri(tri),
        false,
    )
}

/// Context-attached HERK: `C := alpha·op(A)·op(A)^H + beta·C` with real
/// `alpha`/`beta`, writing only the `tri` triangle; diagonal entries are
/// exactly real on output (BLAS convention). `op_a` must be `N` or `H` —
/// `T` has no Hermitian-rank-k meaning and is rejected.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_herk_c32_ctx(
    ctx: &M3xuContext,
    tri: Triangle,
    op_a: MatOp,
    a: &Matrix<Complex<f32>>,
    alpha: f32,
    beta: f32,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    try_herk_c32_faulted_ctx(ctx, tri, op_a, a, alpha, beta, c).map(|(r, _)| r)
}

/// [`try_herk_c32_ctx`] with the invocation's [`FaultSummary`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_herk_c32_faulted_ctx(
    ctx: &M3xuContext,
    tri: Triangle,
    op_a: MatOp,
    a: &Matrix<Complex<f32>>,
    alpha: f32,
    beta: f32,
    c: &Matrix<Complex<f32>>,
) -> Result<(GemmResult<Complex<f32>>, FaultSummary), M3xuError> {
    let b_op = match op_a {
        MatOp::N => MatOp::H,
        MatOp::H => MatOp::N,
        MatOp::T => {
            return Err(M3xuError::ModeMismatch {
                context: "herk(op): op(A) must be N or H",
                got: MxuMode::M3xuFp32c,
            })
        }
    };
    try_blas3_routed(
        ctx,
        "herk",
        MxuMode::M3xuFp32c,
        &OpView::new(a, op_a),
        &OpView::new(a, b_op),
        Complex::new(alpha, 0.0),
        Complex::new(beta, 0.0),
        c,
        OutRegion::Tri(tri),
        true,
    )
}

/// Context-attached SYMM: `C := alpha·sym(A)·B + beta·C` (Left) or
/// `C := alpha·B·sym(A) + beta·C` (Right), where `sym(A)` expands the
/// `tri`-stored triangle of the square matrix `A` on the fly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_symm_f32_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    side: Side,
    tri: Triangle,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    try_symm_f32_faulted_ctx(ctx, precision, side, tri, a, b, alpha, beta, c).map(|(r, _)| r)
}

/// [`try_symm_f32_ctx`] with the invocation's [`FaultSummary`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_symm_f32_faulted_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    side: Side,
    tri: Triangle,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
    check_precision(precision, true, "symm_f32")?;
    if a.rows() != a.cols() {
        return Err(M3xuError::ShapeMismatch {
            context: "symm(A): A must be square",
            expected: (a.rows(), a.rows()),
            got: (a.rows(), a.cols()),
        });
    }
    let sym = MirrorView::new(a, tri, false);
    match side {
        Side::Left => try_blas3_routed(
            ctx,
            "symm",
            precision.mode(),
            &sym,
            b,
            alpha,
            beta,
            c,
            OutRegion::Full,
            false,
        ),
        Side::Right => try_blas3_routed(
            ctx,
            "symm",
            precision.mode(),
            b,
            &sym,
            alpha,
            beta,
            c,
            OutRegion::Full,
            false,
        ),
    }
}

/// Context-attached HEMM: the Hermitian counterpart of
/// [`try_symm_f32_ctx`] on the FP32C engine. The mirror conjugates across
/// the diagonal and reads diagonal entries as real (BLAS convention).
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_hemm_c32_ctx(
    ctx: &M3xuContext,
    side: Side,
    tri: Triangle,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    alpha: Complex<f32>,
    beta: Complex<f32>,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    try_hemm_c32_faulted_ctx(ctx, side, tri, a, b, alpha, beta, c).map(|(r, _)| r)
}

/// [`try_hemm_c32_ctx`] with the invocation's [`FaultSummary`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_hemm_c32_faulted_ctx(
    ctx: &M3xuContext,
    side: Side,
    tri: Triangle,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    alpha: Complex<f32>,
    beta: Complex<f32>,
    c: &Matrix<Complex<f32>>,
) -> Result<(GemmResult<Complex<f32>>, FaultSummary), M3xuError> {
    if a.rows() != a.cols() {
        return Err(M3xuError::ShapeMismatch {
            context: "hemm(A): A must be square",
            expected: (a.rows(), a.rows()),
            got: (a.rows(), a.cols()),
        });
    }
    let herm = MirrorView::new(a, tri, true);
    match side {
        Side::Left => try_blas3_routed(
            ctx,
            "hemm",
            MxuMode::M3xuFp32c,
            &herm,
            b,
            alpha,
            beta,
            c,
            OutRegion::Full,
            false,
        ),
        Side::Right => try_blas3_routed(
            ctx,
            "hemm",
            MxuMode::M3xuFp32c,
            b,
            &herm,
            alpha,
            beta,
            c,
            OutRegion::Full,
            false,
        ),
    }
}

// ---------------------------------------------------------------------------
// Free functions on the process-wide default context.
// ---------------------------------------------------------------------------

/// Fallible op-GEMM `D = alpha·op(A)·op(B) + beta·C` on the default
/// context. `op = N`, `alpha = 1`, `beta = 1` is bit-identical to
/// [`crate::gemm::try_gemm_f32`].
#[allow(clippy::too_many_arguments)]
pub fn try_gemm_op_f32(
    precision: GemmPrecision,
    op_a: MatOp,
    a: &Matrix<f32>,
    op_b: MatOp,
    b: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    context::default_context().try_gemm_op_f32(precision, op_a, a, op_b, b, alpha, beta, c)
}

/// Op-GEMM `D = alpha·op(A)·op(B) + beta·C`. Panics on shape/precision
/// mismatch; see [`try_gemm_op_f32`] for the fallible form.
#[allow(clippy::too_many_arguments)]
pub fn gemm_op_f32(
    precision: GemmPrecision,
    op_a: MatOp,
    a: &Matrix<f32>,
    op_b: MatOp,
    b: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> GemmResult<f32> {
    try_gemm_op_f32(precision, op_a, a, op_b, b, alpha, beta, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible complex op-GEMM on the default context.
#[allow(clippy::too_many_arguments)]
pub fn try_cgemm_op_c32(
    op_a: MatOp,
    a: &Matrix<Complex<f32>>,
    op_b: MatOp,
    b: &Matrix<Complex<f32>>,
    alpha: Complex<f32>,
    beta: Complex<f32>,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    context::default_context().try_cgemm_op_c32(op_a, a, op_b, b, alpha, beta, c)
}

/// Complex op-GEMM. Panics on shape mismatch; see [`try_cgemm_op_c32`].
#[allow(clippy::too_many_arguments)]
pub fn cgemm_op_c32(
    op_a: MatOp,
    a: &Matrix<Complex<f32>>,
    op_b: MatOp,
    b: &Matrix<Complex<f32>>,
    alpha: Complex<f32>,
    beta: Complex<f32>,
    c: &Matrix<Complex<f32>>,
) -> GemmResult<Complex<f32>> {
    try_cgemm_op_c32(op_a, a, op_b, b, alpha, beta, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible emulated-FP64 op-GEMM on the default context.
#[allow(clippy::too_many_arguments)]
pub fn try_gemm_op_f64(
    op_a: MatOp,
    a: &Matrix<f64>,
    op_b: MatOp,
    b: &Matrix<f64>,
    alpha: f64,
    beta: f64,
    c: &Matrix<f64>,
) -> Result<GemmResult<f64>, M3xuError> {
    context::default_context().try_gemm_op_f64(
        GemmPrecision::Fp64Emulated,
        op_a,
        a,
        op_b,
        b,
        alpha,
        beta,
        c,
    )
}

/// Emulated-FP64 op-GEMM. Panics on shape mismatch; see
/// [`try_gemm_op_f64`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_op_f64(
    op_a: MatOp,
    a: &Matrix<f64>,
    op_b: MatOp,
    b: &Matrix<f64>,
    alpha: f64,
    beta: f64,
    c: &Matrix<f64>,
) -> GemmResult<f64> {
    try_gemm_op_f64(op_a, a, op_b, b, alpha, beta, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible SYRK `C := alpha·op(A)·op(A)^T + beta·C` on the default
/// context, writing only the `tri` triangle.
pub fn try_syrk_f32(
    precision: GemmPrecision,
    tri: Triangle,
    op_a: MatOp,
    a: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    context::default_context().try_syrk_f32(precision, tri, op_a, a, alpha, beta, c)
}

/// SYRK. Panics on shape/precision mismatch; see [`try_syrk_f32`].
pub fn syrk_f32(
    precision: GemmPrecision,
    tri: Triangle,
    op_a: MatOp,
    a: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> GemmResult<f32> {
    try_syrk_f32(precision, tri, op_a, a, alpha, beta, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible HERK `C := alpha·op(A)·op(A)^H + beta·C` (real alpha/beta) on
/// the default context, writing only the `tri` triangle.
pub fn try_herk_c32(
    tri: Triangle,
    op_a: MatOp,
    a: &Matrix<Complex<f32>>,
    alpha: f32,
    beta: f32,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    context::default_context().try_herk_c32(tri, op_a, a, alpha, beta, c)
}

/// HERK. Panics on shape mismatch; see [`try_herk_c32`].
pub fn herk_c32(
    tri: Triangle,
    op_a: MatOp,
    a: &Matrix<Complex<f32>>,
    alpha: f32,
    beta: f32,
    c: &Matrix<Complex<f32>>,
) -> GemmResult<Complex<f32>> {
    try_herk_c32(tri, op_a, a, alpha, beta, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible SYMM on the default context.
#[allow(clippy::too_many_arguments)]
pub fn try_symm_f32(
    precision: GemmPrecision,
    side: Side,
    tri: Triangle,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    context::default_context().try_symm_f32(precision, side, tri, a, b, alpha, beta, c)
}

/// SYMM. Panics on shape/precision mismatch; see [`try_symm_f32`].
#[allow(clippy::too_many_arguments)]
pub fn symm_f32(
    precision: GemmPrecision,
    side: Side,
    tri: Triangle,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    alpha: f32,
    beta: f32,
    c: &Matrix<f32>,
) -> GemmResult<f32> {
    try_symm_f32(precision, side, tri, a, b, alpha, beta, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible HEMM on the default context.
#[allow(clippy::too_many_arguments)]
pub fn try_hemm_c32(
    side: Side,
    tri: Triangle,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    alpha: Complex<f32>,
    beta: Complex<f32>,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    context::default_context().try_hemm_c32(side, tri, a, b, alpha, beta, c)
}

/// HEMM. Panics on shape mismatch; see [`try_hemm_c32`].
#[allow(clippy::too_many_arguments)]
pub fn hemm_c32(
    side: Side,
    tri: Triangle,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    alpha: Complex<f32>,
    beta: Complex<f32>,
    c: &Matrix<Complex<f32>>,
) -> GemmResult<Complex<f32>> {
    try_hemm_c32(side, tri, a, b, alpha, beta, c).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{try_cgemm_c32, try_gemm_f32, try_gemm_f64 as plain_gemm_f64};

    type C32 = Complex<f32>;

    fn bits_f32(m: &Matrix<f32>) -> Vec<u32> {
        (0..m.rows())
            .flat_map(|i| (0..m.cols()).map(move |j| m.get(i, j).to_bits()))
            .collect()
    }

    fn bits_c32(m: &Matrix<C32>) -> Vec<(u32, u32)> {
        (0..m.rows())
            .flat_map(|i| {
                (0..m.cols()).map(move |j| {
                    let v = m.get(i, j);
                    (v.re.to_bits(), v.im.to_bits())
                })
            })
            .collect()
    }

    #[test]
    fn op_n_unit_scalars_bit_identical_to_plain_gemm() {
        let (m, k, n) = (23, 14, 17);
        let a = Matrix::<f32>::random(m, k, 1);
        let b = Matrix::<f32>::random(k, n, 2);
        let c = Matrix::<f32>::random(m, n, 3);
        for p in GemmPrecision::ALL {
            if !p.is_f32() {
                continue;
            }
            let plain = try_gemm_f32(p, &a, &b, &c).unwrap();
            let op = try_gemm_op_f32(p, MatOp::N, &a, MatOp::N, &b, 1.0, 1.0, &c).unwrap();
            assert_eq!(bits_f32(&plain.d), bits_f32(&op.d), "{p:?}");
            assert_eq!(plain.stats, op.stats, "{p:?}");
        }
        let ac = Matrix::random_c32(m, k, 4);
        let bc = Matrix::random_c32(k, n, 5);
        let cc = Matrix::random_c32(m, n, 6);
        let plain = try_cgemm_c32(&ac, &bc, &cc).unwrap();
        let op = try_cgemm_op_c32(MatOp::N, &ac, MatOp::N, &bc, C32::ONE, C32::ONE, &cc).unwrap();
        assert_eq!(bits_c32(&plain.d), bits_c32(&op.d));
        assert_eq!(plain.stats, op.stats);

        let ad = Matrix::random_f64(m, k, 7);
        let bd = Matrix::random_f64(k, n, 8);
        let cd = Matrix::random_f64(m, n, 9);
        let plain = plain_gemm_f64(GemmPrecision::Fp64Emulated, &ad, &bd, &cd).unwrap();
        let op = try_gemm_op_f64(MatOp::N, &ad, MatOp::N, &bd, 1.0, 1.0, &cd).unwrap();
        for i in 0..m {
            for j in 0..n {
                assert_eq!(plain.d.get(i, j).to_bits(), op.d.get(i, j).to_bits());
            }
        }
        assert_eq!(plain.stats, op.stats);
    }

    #[test]
    fn op_views_match_materialized_operands() {
        let (m, k, n) = (13, 9, 21);
        // Stored transposed: op(X) = X^T recovers the logical operand.
        let at = Matrix::<f32>::random(k, m, 11);
        let bt = Matrix::<f32>::random(n, k, 12);
        let c = Matrix::<f32>::random(m, n, 13);
        let via_view = try_gemm_op_f32(
            GemmPrecision::M3xuFp32,
            MatOp::T,
            &at,
            MatOp::T,
            &bt,
            1.0,
            1.0,
            &c,
        )
        .unwrap();
        let am = OpView::new(&at, MatOp::T).materialize();
        let bm = OpView::new(&bt, MatOp::T).materialize();
        let via_copy = try_gemm_f32(GemmPrecision::M3xuFp32, &am, &bm, &c).unwrap();
        assert_eq!(bits_f32(&via_view.d), bits_f32(&via_copy.d));

        // Complex: conjugate-transpose against its materialization.
        let ah = Matrix::random_c32(k, m, 14);
        let bh = Matrix::random_c32(n, k, 15);
        let cc = Matrix::random_c32(m, n, 16);
        let via_view =
            try_cgemm_op_c32(MatOp::H, &ah, MatOp::H, &bh, C32::ONE, C32::ONE, &cc).unwrap();
        let am = OpView::new(&ah, MatOp::H).materialize();
        let bm = OpView::new(&bh, MatOp::H).materialize();
        let via_copy = try_cgemm_c32(&am, &bm, &cc).unwrap();
        assert_eq!(bits_c32(&via_view.d), bits_c32(&via_copy.d));
    }

    #[test]
    fn alpha_beta_fold_matches_elementwise_prefold() {
        let (m, k, n) = (11, 6, 10);
        let a = Matrix::<f32>::random(m, k, 21);
        let b = Matrix::<f32>::random(k, n, 22);
        let c = Matrix::<f32>::random(m, n, 23);
        for (alpha, beta) in [(0.5f32, -1.0f32), (-1.0, 0.5), (0.0, 2.0), (2.0, 0.0)] {
            let folded = try_gemm_op_f32(
                GemmPrecision::M3xuFp32,
                MatOp::N,
                &a,
                MatOp::N,
                &b,
                alpha,
                beta,
                &c,
            )
            .unwrap();
            let am = Matrix::from_fn(m, k, |i, j| alpha * a.get(i, j));
            let cm = Matrix::from_fn(m, n, |i, j| beta * c.get(i, j));
            let pre = try_gemm_f32(GemmPrecision::M3xuFp32, &am, &b, &cm).unwrap();
            assert_eq!(
                bits_f32(&folded.d),
                bits_f32(&pre.d),
                "alpha={alpha} beta={beta}"
            );
        }
    }

    #[test]
    fn beta_zero_never_reads_c() {
        let (m, k, n) = (9, 5, 9);
        let a = Matrix::<f32>::random(m, k, 31);
        let b = Matrix::<f32>::random(k, n, 32);
        let poison = Matrix::from_fn(m, n, |_, _| f32::NAN);
        let r = try_gemm_op_f32(
            GemmPrecision::M3xuFp32,
            MatOp::N,
            &a,
            MatOp::N,
            &b,
            1.0,
            0.0,
            &poison,
        )
        .unwrap();
        let zero = Matrix::zeros(m, n);
        let want = try_gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &zero).unwrap();
        assert_eq!(bits_f32(&r.d), bits_f32(&want.d));
    }

    #[test]
    fn syrk_writes_one_triangle_and_halves_the_tile_grid() {
        let (n, k) = (33, 12);
        let a = Matrix::<f32>::random(n, k, 41);
        let canary = Matrix::from_fn(n, n, |i, j| (i * 131 + j) as f32 * 0.5 - 3.0);
        let ctx = M3xuContext::with_threads(2);
        let r = ctx
            .try_syrk_f32(
                GemmPrecision::M3xuFp32,
                Triangle::Lower,
                MatOp::N,
                &a,
                1.0,
                1.0,
                &canary,
            )
            .unwrap();
        // The full-output reference: op-GEMM with B = A^T.
        let full = ctx
            .try_gemm_op_f32(
                GemmPrecision::M3xuFp32,
                MatOp::N,
                &a,
                MatOp::T,
                &a,
                1.0,
                1.0,
                &canary,
            )
            .unwrap();
        for i in 0..n {
            for j in 0..n {
                if Triangle::Lower.contains(i, j) {
                    assert_eq!(r.d.get(i, j).to_bits(), full.d.get(i, j).to_bits());
                } else {
                    assert_eq!(r.d.get(i, j).to_bits(), canary.get(i, j).to_bits());
                }
            }
        }
        // 5 tiles per side: 15 of 25 scheduled, 6 k-chunks each.
        let t = n.div_ceil(8) as u64;
        let tri_tiles = t * (t + 1) / 2;
        assert_eq!(r.stats.instructions, tri_tiles * (k as u64).div_ceil(2));
        assert_eq!(full.stats.instructions, t * t * (k as u64).div_ceil(2));
    }

    #[test]
    fn herk_diagonal_is_exactly_real_and_upper_triangle_untouched() {
        let (n, k) = (19, 7);
        let a = Matrix::random_c32(n, k, 51);
        let canary = Matrix::from_fn(n, n, |i, j| C32::new(i as f32, j as f32 + 0.25));
        let r = try_herk_c32(Triangle::Upper, MatOp::N, &a, 0.75, -0.5, &canary).unwrap();
        for i in 0..n {
            assert_eq!(r.d.get(i, i).im.to_bits(), 0.0f32.to_bits(), "diag {i}");
            for j in 0..n {
                if !Triangle::Upper.contains(i, j) {
                    let (got, want) = (r.d.get(i, j), canary.get(i, j));
                    assert_eq!(got.re.to_bits(), want.re.to_bits());
                    assert_eq!(got.im.to_bits(), want.im.to_bits());
                }
            }
        }
        // op = T is meaningless for a Hermitian update.
        assert!(matches!(
            try_herk_c32(Triangle::Upper, MatOp::T, &a, 1.0, 1.0, &canary),
            Err(M3xuError::ModeMismatch { .. })
        ));
    }

    #[test]
    fn symm_and_hemm_match_mirror_materialization() {
        let (n, m) = (12, 15);
        let a = Matrix::<f32>::random(n, n, 61);
        let b = Matrix::<f32>::random(n, m, 62);
        let c = Matrix::<f32>::random(n, m, 63);
        let via_mirror = try_symm_f32(
            GemmPrecision::M3xuFp32,
            Side::Left,
            Triangle::Lower,
            &a,
            &b,
            0.5,
            2.0,
            &c,
        )
        .unwrap();
        let sym = MirrorView::new(&a, Triangle::Lower, false).materialize();
        let want = try_gemm_op_f32(
            GemmPrecision::M3xuFp32,
            MatOp::N,
            &sym,
            MatOp::N,
            &b,
            0.5,
            2.0,
            &c,
        )
        .unwrap();
        assert_eq!(bits_f32(&via_mirror.d), bits_f32(&want.d));

        // Right side: C = alpha·B'·herm(A) + beta·C on the complex engine.
        let ah = Matrix::random_c32(n, n, 64);
        let bh = Matrix::random_c32(m, n, 65);
        let ch = Matrix::random_c32(m, n, 66);
        let alpha = C32::new(0.5, -0.25);
        let beta = C32::new(-1.0, 0.0);
        let via_mirror =
            try_hemm_c32(Side::Right, Triangle::Upper, &ah, &bh, alpha, beta, &ch).unwrap();
        let herm = MirrorView::new(&ah, Triangle::Upper, true).materialize();
        let want = try_cgemm_op_c32(MatOp::N, &bh, MatOp::N, &herm, alpha, beta, &ch).unwrap();
        assert_eq!(bits_c32(&via_mirror.d), bits_c32(&want.d));
    }

    #[test]
    fn shape_and_precision_errors_are_typed() {
        let a = Matrix::<f32>::random(4, 6, 71);
        let b = Matrix::<f32>::random(5, 3, 72);
        let c = Matrix::<f32>::random(4, 3, 73);
        assert!(matches!(
            try_gemm_op_f32(
                GemmPrecision::M3xuFp32,
                MatOp::N,
                &a,
                MatOp::N,
                &b,
                1.0,
                1.0,
                &c
            ),
            Err(M3xuError::ShapeMismatch { .. })
        ));
        // Transposing B fixes the inner dimension but breaks C's width.
        assert!(matches!(
            try_gemm_op_f32(
                GemmPrecision::M3xuFp32,
                MatOp::N,
                &a,
                MatOp::T,
                &b,
                1.0,
                1.0,
                &c
            ),
            Err(M3xuError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            try_syrk_f32(
                GemmPrecision::Fp64Emulated,
                Triangle::Lower,
                MatOp::N,
                &a,
                1.0,
                1.0,
                &c
            ),
            Err(M3xuError::ModeMismatch { .. })
        ));
        let nsq = Matrix::<f32>::random(4, 5, 74);
        let b2 = Matrix::<f32>::random(5, 3, 75);
        let c2 = Matrix::<f32>::random(4, 3, 76);
        assert!(matches!(
            try_symm_f32(
                GemmPrecision::M3xuFp32,
                Side::Left,
                Triangle::Lower,
                &nsq,
                &b2,
                1.0,
                1.0,
                &c2
            ),
            Err(M3xuError::ShapeMismatch { .. })
        ));
    }
}
