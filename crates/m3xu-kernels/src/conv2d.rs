//! 2-D convolution via im2col + GEMM — one of the "critical kernels"
//! §VI evaluates, and the compute core of the Fig. 7 CNN models.
//!
//! The convolution lowers to a GEMM exactly the way cuDNN's implicit-GEMM
//! algorithm does: the filter bank becomes an `(out_ch) x (in_ch*kh*kw)`
//! matrix, the input unfolds into an `(in_ch*kh*kw) x (out_h*out_w)`
//! column matrix, and the M3XU GEMM driver does the rest.

use crate::context::{default_context, GemmExecutor};
use crate::gemm::GemmPrecision;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::MmaStats;

/// A [channels, height, width] tensor in CHW layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f32>,
}

impl Tensor3 {
    /// Zero-filled tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Tensor3 {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Build from a generator.
    pub fn from_fn(
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(c * h * w);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    data.push(f(ci, hi, wi));
                }
            }
        }
        Tensor3 { c, h, w, data }
    }

    /// Deterministic pseudo-random tensor.
    pub fn random(c: usize, h: usize, w: usize, seed: u64) -> Self {
        let m = Matrix::<f32>::random(c, h * w, seed);
        Tensor3::from_fn(c, h, w, |ci, hi, wi| m.get(ci, hi * w + wi))
    }

    /// Element access.
    #[inline]
    pub fn get(&self, c: usize, h: usize, w: usize) -> f32 {
        self.data[(c * self.h + h) * self.w + w]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, c: usize, h: usize, w: usize, v: f32) {
        self.data[(c * self.h + h) * self.w + w] = v;
    }

    /// Flat view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Filter height/width (square kernels).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl ConvSpec {
    /// Output spatial size for an input extent `n`.
    pub fn out_extent(&self, n: usize) -> usize {
        (n + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Checks that the spec is well formed for a `h x w` input: stride and
    /// kernel must be positive and the padded input must cover the kernel
    /// (otherwise `out_extent` underflows).
    pub fn validate(&self, h: usize, w: usize) -> Result<(), M3xuError> {
        if self.kernel == 0 {
            return Err(M3xuError::InvalidArgument {
                context: "conv2d: kernel extent must be at least 1",
            });
        }
        if self.stride == 0 {
            return Err(M3xuError::InvalidArgument {
                context: "conv2d: stride must be at least 1",
            });
        }
        for (context, n) in [("conv2d(height)", h), ("conv2d(width)", w)] {
            if n + 2 * self.padding < self.kernel {
                return Err(M3xuError::OutOfRange {
                    context,
                    value: n + 2 * self.padding,
                    min: self.kernel,
                    max: usize::MAX,
                });
            }
        }
        Ok(())
    }
}

/// Unfold the input into the im2col matrix:
/// rows = `in_ch * k * k`, cols = `out_h * out_w`.
pub fn im2col(x: &Tensor3, spec: ConvSpec) -> Matrix<f32> {
    let oh = spec.out_extent(x.h);
    let ow = spec.out_extent(x.w);
    Matrix::from_fn(x.c * spec.kernel * spec.kernel, oh * ow, |r, col| {
        let ci = r / (spec.kernel * spec.kernel);
        let kh = (r / spec.kernel) % spec.kernel;
        let kw = r % spec.kernel;
        let out_y = col / ow;
        let out_x = col % ow;
        let in_y = out_y * spec.stride + kh;
        let in_x = out_x * spec.stride + kw;
        if in_y < spec.padding
            || in_x < spec.padding
            || in_y - spec.padding >= x.h
            || in_x - spec.padding >= x.w
        {
            0.0
        } else {
            x.get(ci, in_y - spec.padding, in_x - spec.padding)
        }
    })
}

/// 2-D convolution on the M3XU (or another precision mode).
///
/// `filters` is `[out_ch][in_ch][k][k]` flattened row-major into a matrix
/// of shape `out_ch x (in_ch * k * k)`; `bias` has one entry per output
/// channel. Returns the output tensor and the MMA statistics. Panics on
/// invalid arguments; see [`try_conv2d`] for the fallible form.
pub fn conv2d(
    precision: GemmPrecision,
    x: &Tensor3,
    filters: &Matrix<f32>,
    bias: &[f32],
    spec: ConvSpec,
) -> (Tensor3, MmaStats) {
    try_conv2d(precision, x, filters, bias, spec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`conv2d`]: validates the spec ([`ConvSpec::validate`]), the
/// filter-bank shape and the bias length before any work is done.
/// Executes on the process-wide default context.
pub fn try_conv2d(
    precision: GemmPrecision,
    x: &Tensor3,
    filters: &Matrix<f32>,
    bias: &[f32],
    spec: ConvSpec,
) -> Result<(Tensor3, MmaStats), M3xuError> {
    try_conv2d_on(default_context(), precision, x, filters, bias, spec)
}

/// [`try_conv2d`] on an explicit [`GemmExecutor`]: the lowered im2col
/// GEMM runs through `exec`.
pub fn try_conv2d_on<X: GemmExecutor>(
    exec: &X,
    precision: GemmPrecision,
    x: &Tensor3,
    filters: &Matrix<f32>,
    bias: &[f32],
    spec: ConvSpec,
) -> Result<(Tensor3, MmaStats), M3xuError> {
    spec.validate(x.h, x.w)?;
    let out_ch = filters.rows();
    let patch = x.c * spec.kernel * spec.kernel;
    if filters.cols() != patch {
        return Err(M3xuError::ShapeMismatch {
            context: "conv2d(filters): expected out_ch x (in_ch * k * k)",
            expected: (out_ch, patch),
            got: (filters.rows(), filters.cols()),
        });
    }
    if bias.len() != out_ch {
        return Err(M3xuError::ShapeMismatch {
            context: "conv2d(bias): one entry per output channel",
            expected: (out_ch, 1),
            got: (bias.len(), 1),
        });
    }
    let oh = spec.out_extent(x.h);
    let ow = spec.out_extent(x.w);

    let cols = im2col(x, spec);
    let c = Matrix::from_fn(out_ch, oh * ow, |o, _| bias[o]);
    let r = exec.try_gemm_f32(precision, filters, &cols, &c)?;

    let mut out = Tensor3::zeros(out_ch, oh, ow);
    #[allow(clippy::needless_range_loop)] // (o, y, xx) index three structures
    for o in 0..out_ch {
        for y in 0..oh {
            for xx in 0..ow {
                out.set(o, y, xx, r.d.get(o, y * ow + xx));
            }
        }
    }
    Ok((out, r.stats))
}

/// Direct (naive) convolution reference, accumulated in f64.
pub fn conv2d_reference(
    x: &Tensor3,
    filters: &Matrix<f32>,
    bias: &[f32],
    spec: ConvSpec,
) -> Tensor3 {
    let out_ch = filters.rows();
    let oh = spec.out_extent(x.h);
    let ow = spec.out_extent(x.w);
    let mut out = Tensor3::zeros(out_ch, oh, ow);
    for (o, &b0) in bias.iter().enumerate().take(out_ch) {
        for y in 0..oh {
            for xx in 0..ow {
                let mut acc = b0 as f64;
                for ci in 0..x.c {
                    for kh in 0..spec.kernel {
                        for kw in 0..spec.kernel {
                            let in_y = y * spec.stride + kh;
                            let in_x = xx * spec.stride + kw;
                            if in_y < spec.padding
                                || in_x < spec.padding
                                || in_y - spec.padding >= x.h
                                || in_x - spec.padding >= x.w
                            {
                                continue;
                            }
                            let w = filters.get(o, (ci * spec.kernel + kh) * spec.kernel + kw);
                            acc += w as f64
                                * x.get(ci, in_y - spec.padding, in_x - spec.padding) as f64;
                        }
                    }
                }
                out.set(o, y, xx, acc as f32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_formula() {
        let s = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(s.out_extent(32), 32); // same-padding
        let s = ConvSpec {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(s.out_extent(32), 16);
        let s = ConvSpec {
            kernel: 7,
            stride: 2,
            padding: 3,
        };
        assert_eq!(s.out_extent(224), 112); // ResNet stem
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // A 1x1 kernel with weight 1 on the only channel.
        let x = Tensor3::random(1, 5, 5, 1);
        let f = Matrix::from_vec(1, 1, vec![1.0]);
        let spec = ConvSpec {
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let (y, _) = conv2d(GemmPrecision::M3xuFp32, &x, &f, &[0.0], spec);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn matches_direct_reference() {
        let x = Tensor3::random(3, 9, 9, 2);
        let spec = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let f = Matrix::<f32>::random(4, 3 * 9, 3);
        let bias = [0.1, -0.2, 0.3, 0.0];
        let (y, stats) = conv2d(GemmPrecision::M3xuFp32, &x, &f, &bias, spec);
        let gold = conv2d_reference(&x, &f, &bias, spec);
        for (a, b) in y.as_slice().iter().zip(gold.as_slice()) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
        }
        assert!(stats.instructions > 0);
    }

    #[test]
    fn stride_two_downsamples() {
        let x = Tensor3::random(2, 8, 8, 4);
        let spec = ConvSpec {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let f = Matrix::<f32>::random(2, 2 * 9, 5);
        let (y, _) = conv2d(GemmPrecision::M3xuFp32, &x, &f, &[0.0, 0.0], spec);
        assert_eq!((y.c, y.h, y.w), (2, 4, 4));
    }

    #[test]
    fn im2col_shape_and_padding() {
        let x = Tensor3::from_fn(1, 3, 3, |_, h, w| (h * 3 + w) as f32);
        let spec = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let m = im2col(&x, spec);
        assert_eq!((m.rows(), m.cols()), (9, 9));
        // Top-left output's top-left tap is padding (zero).
        assert_eq!(m.get(0, 0), 0.0);
        // Centre output's centre tap is the centre pixel (value 4).
        assert_eq!(m.get(4, 4), 4.0);
    }

    #[test]
    fn try_conv2d_rejects_bad_specs_and_shapes() {
        let x = Tensor3::random(2, 8, 8, 12);
        let f = Matrix::<f32>::random(2, 2 * 9, 13);
        let ok = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        for (spec, why) in [
            (ConvSpec { kernel: 0, ..ok }, "zero kernel"),
            (ConvSpec { stride: 0, ..ok }, "zero stride"),
            (
                ConvSpec {
                    kernel: 11,
                    stride: 1,
                    padding: 1,
                },
                "kernel larger than padded input",
            ),
        ] {
            assert!(
                try_conv2d(GemmPrecision::M3xuFp32, &x, &f, &[0.0, 0.0], spec).is_err(),
                "{why} must be rejected"
            );
        }
        // Filter bank with the wrong patch width.
        let bad_f = Matrix::<f32>::random(2, 7, 14);
        assert!(matches!(
            try_conv2d(GemmPrecision::M3xuFp32, &x, &bad_f, &[0.0, 0.0], ok).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
        // Bias length != out_ch.
        assert!(matches!(
            try_conv2d(GemmPrecision::M3xuFp32, &x, &f, &[0.0], ok).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn bias_is_applied() {
        let x = Tensor3::zeros(1, 4, 4);
        let f = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        let spec = ConvSpec {
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let (y, _) = conv2d(GemmPrecision::M3xuFp32, &x, &f, &[0.5, -0.5], spec);
        assert!(y.as_slice()[..16].iter().all(|&v| v == 0.5));
        assert!(y.as_slice()[16..].iter().all(|&v| v == -0.5));
    }
}
