//! FFT-based polynomial multiplication — the "security applications"
//! workload of the paper's introduction (NTT-style transforms underlie
//! lattice/NTRU homomorphic encryption; the floating-point analogue is
//! polynomial convolution via the complex FFT).
//!
//! Because the M3XU FFT computes FP32C exactly per MMA, integer
//! polynomial products of moderate size round-trip *exactly*: each exact
//! coefficient is an integer recoverable by rounding as long as the FFT's
//! accumulated error stays below 0.5. Tests pin down that recovery bound.

use crate::fft::{gemm_fft, C32};
use m3xu_fp::complex::Complex;
use m3xu_mxu::mma::MmaStats;

/// Multiply two integer-coefficient polynomials exactly via the M3XU FFT.
///
/// `a` and `b` are coefficient vectors (lowest degree first). Returns the
/// product's coefficients. Exact for products whose coefficients stay
/// below ~2^20 and lengths up to a few thousand (see tests); the i64
/// reference path guards against silent precision loss by checking the
/// rounding margin.
pub fn poly_mul_int(a: &[i64], b: &[i64]) -> (Vec<i64>, MmaStats) {
    if a.is_empty() || b.is_empty() {
        return (Vec::new(), MmaStats::default());
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two().max(2);
    let embed = |p: &[i64]| -> Vec<C32> {
        let mut v = vec![C32::ZERO; n];
        for (i, &c) in p.iter().enumerate() {
            v[i] = Complex::new(c as f32, 0.0);
        }
        v
    };
    let mut stats = MmaStats::default();
    let (fa, s1) = gemm_fft(&embed(a));
    let (fb, s2) = gemm_fft(&embed(b));
    stats.merge(&s1);
    stats.merge(&s2);
    // Pointwise product, then inverse transform via conjugation.
    let prod: Vec<C32> = fa.iter().zip(&fb).map(|(x, y)| (*x * *y).conj()).collect();
    let (fc, s3) = gemm_fft(&prod);
    stats.merge(&s3);
    let scale = 1.0 / n as f64;
    let coeffs: Vec<i64> = (0..out_len)
        .map(|i| {
            let v = fc[i].conj().re as f64 * scale;
            let r = v.round();
            debug_assert!(
                (v - r).abs() < 0.45,
                "rounding margin too small at coeff {i}: {v} (increase precision)"
            );
            r as i64
        })
        .collect();
    (coeffs, stats)
}

/// Schoolbook reference multiplication (exact, O(n²)).
pub fn poly_mul_reference(a: &[i64], b: &[i64]) -> Vec<i64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0i64; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Cyclic (negacyclic-free) convolution of two real sequences via FFT —
/// the building block of polynomial rings `Z[x]/(x^n - 1)`.
pub fn cyclic_convolution(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    assert!(n.is_power_of_two());
    let embed = |p: &[f32]| -> Vec<C32> { p.iter().map(|&x| Complex::new(x, 0.0)).collect() };
    let (fa, _) = gemm_fft(&embed(a));
    let (fb, _) = gemm_fft(&embed(b));
    let prod: Vec<C32> = fa.iter().zip(&fb).map(|(x, y)| (*x * *y).conj()).collect();
    let (fc, _) = gemm_fft(&prod);
    fc.iter().map(|z| z.conj().re / n as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products_exact() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2
        let (p, stats) = poly_mul_int(&[1, 2], &[3, 4]);
        assert_eq!(p, vec![3, 10, 8]);
        assert!(stats.instructions > 0);
    }

    #[test]
    fn matches_schoolbook_on_random_polys() {
        let mut state = 12345u64;
        let mut rand = |m: i64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % (2 * m as u64 + 1)) as i64 - m
        };
        let a: Vec<i64> = (0..127).map(|_| rand(100)).collect();
        let b: Vec<i64> = (0..200).map(|_| rand(100)).collect();
        let (fftp, _) = poly_mul_int(&a, &b);
        assert_eq!(fftp, poly_mul_reference(&a, &b));
    }

    #[test]
    fn binomial_powers() {
        // (1 + x)^8 coefficients are the binomials.
        let mut p = vec![1i64];
        for _ in 0..8 {
            p = poly_mul_int(&p, &[1, 1]).0;
        }
        assert_eq!(p, vec![1, 8, 28, 56, 70, 56, 28, 8, 1]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(poly_mul_int(&[], &[1, 2]).0, Vec::<i64>::new());
        assert_eq!(poly_mul_int(&[5], &[7]).0, vec![35]);
        assert_eq!(poly_mul_int(&[0, 0], &[0]).0, vec![0, 0]);
    }

    #[test]
    fn negative_coefficients() {
        // (x - 1)(x + 1) = x^2 - 1
        let (p, _) = poly_mul_int(&[-1, 1], &[1, 1]);
        assert_eq!(p, vec![-1, 0, 1]);
    }

    #[test]
    fn cyclic_convolution_shifts() {
        // Convolving with a unit impulse at position 1 rotates by 1.
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let mut e1 = [0.0f32; 4];
        e1[1] = 1.0;
        let c = cyclic_convolution(&a, &e1);
        for (i, &v) in [4.0, 1.0, 2.0, 3.0].iter().enumerate() {
            assert!((c[i] - v).abs() < 1e-4, "c[{i}] = {}", c[i]);
        }
    }
}
