//! FFT-based polynomial multiplication — the "security applications"
//! workload of the paper's introduction (NTT-style transforms underlie
//! lattice/NTRU homomorphic encryption; the floating-point analogue is
//! polynomial convolution via the complex FFT).
//!
//! Because the M3XU FFT computes FP32C exactly per MMA, integer
//! polynomial products of moderate size round-trip *exactly*: each exact
//! coefficient is an integer recoverable by rounding as long as the FFT's
//! accumulated error stays below 0.5. Tests pin down that recovery bound.

use crate::context::{default_context, GemmExecutor};
use crate::fft::{try_gemm_fft_on, C32};
use m3xu_fp::complex::Complex;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::mma::MmaStats;

/// Multiply two integer-coefficient polynomials exactly via the M3XU FFT.
///
/// `a` and `b` are coefficient vectors (lowest degree first). Returns the
/// product's coefficients. Exact for products whose coefficients stay
/// below ~2^20 and lengths up to a few thousand (see tests). Panics if
/// the rounding margin is blown; see [`try_poly_mul_int`] for the
/// fallible form.
pub fn poly_mul_int(a: &[i64], b: &[i64]) -> (Vec<i64>, MmaStats) {
    try_poly_mul_int(a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`poly_mul_int`]: reports silent precision loss — a recovered
/// coefficient whose rounding margin is too thin to trust — as
/// [`M3xuError::PrecisionLoss`] instead of relying on a debug-only
/// assertion. Executes on the process-wide default context.
pub fn try_poly_mul_int(a: &[i64], b: &[i64]) -> Result<(Vec<i64>, MmaStats), M3xuError> {
    try_poly_mul_int_on(default_context(), a, b)
}

/// [`try_poly_mul_int`] on an explicit [`GemmExecutor`]: all three FFTs'
/// CGEMMs run through `exec`.
pub fn try_poly_mul_int_on<X: GemmExecutor>(
    exec: &X,
    a: &[i64],
    b: &[i64],
) -> Result<(Vec<i64>, MmaStats), M3xuError> {
    if a.is_empty() || b.is_empty() {
        return Ok((Vec::new(), MmaStats::default()));
    }
    // A coefficient that does not round-trip through f32 is corrupted
    // before the transform even runs — and the damage is invisible to the
    // output margin check (the error is an exact multiple of the f32
    // quantum). Reject it at the door.
    for p in [a, b] {
        for (i, &c) in p.iter().enumerate() {
            if (c as f32) as i64 != c {
                return Err(M3xuError::PrecisionLoss {
                    context: "poly_mul_int: coefficient not representable in f32",
                    index: i,
                });
            }
        }
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two().max(2);
    let embed = |p: &[i64]| -> Vec<C32> {
        let mut v = vec![C32::ZERO; n];
        for (i, &c) in p.iter().enumerate() {
            v[i] = Complex::new(c as f32, 0.0);
        }
        v
    };
    let mut stats = MmaStats::default();
    let (fa, s1) = try_gemm_fft_on(exec, &embed(a))?;
    let (fb, s2) = try_gemm_fft_on(exec, &embed(b))?;
    stats.merge(&s1);
    stats.merge(&s2);
    // Pointwise product, then inverse transform via conjugation.
    let prod: Vec<C32> = fa.iter().zip(&fb).map(|(x, y)| (*x * *y).conj()).collect();
    let (fc, s3) = try_gemm_fft_on(exec, &prod)?;
    stats.merge(&s3);
    let scale = 1.0 / n as f64;
    let mut coeffs = Vec::with_capacity(out_len);
    for (i, z) in fc.iter().enumerate().take(out_len) {
        let v = z.conj().re as f64 * scale;
        let r = v.round();
        if (v - r).abs() >= 0.45 {
            // The accumulated FFT error ate the integer rounding margin:
            // the recovered coefficient can no longer be trusted.
            return Err(M3xuError::PrecisionLoss {
                context: "poly_mul_int: rounding margin exhausted",
                index: i,
            });
        }
        coeffs.push(r as i64);
    }
    Ok((coeffs, stats))
}

/// Schoolbook reference multiplication (exact, O(n²)).
pub fn poly_mul_reference(a: &[i64], b: &[i64]) -> Vec<i64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0i64; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Cyclic (negacyclic-free) convolution of two real sequences via FFT —
/// the building block of polynomial rings `Z[x]/(x^n - 1)`. Panics on
/// invalid lengths; see [`try_cyclic_convolution`].
pub fn cyclic_convolution(a: &[f32], b: &[f32]) -> Vec<f32> {
    try_cyclic_convolution(a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`cyclic_convolution`]: the sequences must have the same
/// power-of-two length. Executes on the process-wide default context.
pub fn try_cyclic_convolution(a: &[f32], b: &[f32]) -> Result<Vec<f32>, M3xuError> {
    try_cyclic_convolution_on(default_context(), a, b)
}

/// [`try_cyclic_convolution`] on an explicit [`GemmExecutor`].
pub fn try_cyclic_convolution_on<X: GemmExecutor>(
    exec: &X,
    a: &[f32],
    b: &[f32],
) -> Result<Vec<f32>, M3xuError> {
    if a.len() != b.len() {
        return Err(M3xuError::ShapeMismatch {
            context: "cyclic_convolution: sequences must have equal length",
            expected: (a.len(), 1),
            got: (b.len(), 1),
        });
    }
    let n = a.len();
    if !n.is_power_of_two() {
        return Err(M3xuError::NonPowerOfTwoLength {
            context: "cyclic_convolution",
            len: n,
        });
    }
    let embed = |p: &[f32]| -> Vec<C32> { p.iter().map(|&x| Complex::new(x, 0.0)).collect() };
    let (fa, _) = try_gemm_fft_on(exec, &embed(a))?;
    let (fb, _) = try_gemm_fft_on(exec, &embed(b))?;
    let prod: Vec<C32> = fa.iter().zip(&fb).map(|(x, y)| (*x * *y).conj()).collect();
    let (fc, _) = try_gemm_fft_on(exec, &prod)?;
    Ok(fc.iter().map(|z| z.conj().re / n as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products_exact() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2
        let (p, stats) = poly_mul_int(&[1, 2], &[3, 4]);
        assert_eq!(p, vec![3, 10, 8]);
        assert!(stats.instructions > 0);
    }

    #[test]
    fn matches_schoolbook_on_random_polys() {
        let mut state = 12345u64;
        let mut rand = |m: i64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % (2 * m as u64 + 1)) as i64 - m
        };
        let a: Vec<i64> = (0..127).map(|_| rand(100)).collect();
        let b: Vec<i64> = (0..200).map(|_| rand(100)).collect();
        let (fftp, _) = poly_mul_int(&a, &b);
        assert_eq!(fftp, poly_mul_reference(&a, &b));
    }

    #[test]
    fn binomial_powers() {
        // (1 + x)^8 coefficients are the binomials.
        let mut p = vec![1i64];
        for _ in 0..8 {
            p = poly_mul_int(&p, &[1, 1]).0;
        }
        assert_eq!(p, vec![1, 8, 28, 56, 70, 56, 28, 8, 1]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(poly_mul_int(&[], &[1, 2]).0, Vec::<i64>::new());
        assert_eq!(poly_mul_int(&[5], &[7]).0, vec![35]);
        assert_eq!(poly_mul_int(&[0, 0], &[0]).0, vec![0, 0]);
    }

    #[test]
    fn negative_coefficients() {
        // (x - 1)(x + 1) = x^2 - 1
        let (p, _) = poly_mul_int(&[-1, 1], &[1, 1]);
        assert_eq!(p, vec![-1, 0, 1]);
    }

    #[test]
    fn precision_loss_is_reported_not_silent() {
        // 2^25 + 1 needs 26 mantissa bits: embedding it in f32 silently
        // drops the +1, so the product would come back wrong with a clean
        // rounding margin. The fallible path must refuse it up front.
        let bad = [(1i64 << 25) + 1];
        assert!(matches!(
            try_poly_mul_int(&bad, &[1]).unwrap_err(),
            M3xuError::PrecisionLoss { index: 0, .. }
        ));
        assert!(matches!(
            try_poly_mul_int(&[1, 2], &bad).unwrap_err(),
            M3xuError::PrecisionLoss { index: 0, .. }
        ));
        // Exactly representable coefficients of the same magnitude pass.
        let ok = [1i64 << 25];
        assert_eq!(try_poly_mul_int(&ok, &[2]).unwrap().0, vec![1i64 << 26]);
    }

    #[test]
    fn try_cyclic_convolution_rejects_bad_lengths() {
        assert!(matches!(
            try_cyclic_convolution(&[1.0, 2.0], &[1.0, 2.0, 3.0, 4.0]).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            try_cyclic_convolution(&[1.0; 6], &[2.0; 6]).unwrap_err(),
            M3xuError::NonPowerOfTwoLength { len: 6, .. }
        ));
    }

    #[test]
    fn cyclic_convolution_shifts() {
        // Convolving with a unit impulse at position 1 rotates by 1.
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let mut e1 = [0.0f32; 4];
        e1[1] = 1.0;
        let c = cyclic_convolution(&a, &e1);
        for (i, &v) in [4.0, 1.0, 2.0, 3.0].iter().enumerate() {
            assert!((c[i] - v).abs() < 1e-4, "c[{i}] = {}", c[i]);
        }
    }
}
