//! [`FaultyExecutor`] — a [`GemmExecutor`] that layers fault injection
//! and ABFT verification over a borrowed [`M3xuContext`].
//!
//! The wrapper is the chaos-testing seam the serve layer and the test
//! suites share: any kernel generic over [`GemmExecutor`] (FFT, conv,
//! CG, …) runs unmodified over a `FaultyExecutor`, and the wrapper
//! decides per call whether the checked self-healing driver or the
//! production driver executes.
//!
//! Two contracts matter:
//!
//! * **Unarmed is free.** A `FaultyExecutor` built with no plan
//!   ([`FaultyExecutor::unarmed`]) delegates straight to the context —
//!   bit-identical results, identical counters, no checksum work. The
//!   differential test suite pins this.
//! * **Armed is honest.** With a plan, every GEMM precision — true FP32,
//!   the truncated fast schedule, the quantising narrow engines
//!   (FP16/BF16/TF32), and FP32C — runs the checked driver: every
//!   recovered run is bit-identical to the oracle, and an unrecoverable
//!   one returns
//!   [`M3xuError::FaultDetected`]
//!   — never a panic, never silent corruption the checksums can see.
//!   (The expected checksums read the packed buffer entries, so
//!   quantisation happens on both sides of the comparison.)

use crate::context::{GemmExecutor, M3xuContext};
use crate::gemm::{self, GemmPrecision, GemmResult};
use m3xu_fp::complex::Complex;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::fault::{FaultPlan, FaultSummary};
use m3xu_mxu::matrix::Matrix;
use std::sync::Arc;

type C32 = Complex<f32>;

/// A [`GemmExecutor`] wrapping a context with an optional fault plan.
///
/// See the [module docs](self) for the unarmed/armed contracts.
pub struct FaultyExecutor<'c> {
    ctx: &'c M3xuContext,
    plan: Option<Arc<FaultPlan>>,
}

impl<'c> FaultyExecutor<'c> {
    /// Wrap `ctx` with no plan: pure delegation, bit-identical to calling
    /// the context directly.
    pub fn unarmed(ctx: &'c M3xuContext) -> Self {
        FaultyExecutor { ctx, plan: None }
    }

    /// Wrap `ctx` with an armed plan: every GEMM precision runs the
    /// ABFT-checked self-healing driver under `plan`'s fault schedule
    /// (the context's own plan, if any, is ignored for these calls).
    pub fn armed(ctx: &'c M3xuContext, plan: Arc<FaultPlan>) -> Self {
        FaultyExecutor {
            ctx,
            plan: Some(plan),
        }
    }

    /// The wrapped context.
    pub fn context(&self) -> &'c M3xuContext {
        self.ctx
    }

    /// The armed plan, if any.
    pub fn plan(&self) -> Option<&Arc<FaultPlan>> {
        self.plan.as_ref()
    }

    /// Real GEMM with this executor's fault policy, returning the
    /// invocation's [`FaultSummary`] (zero when unarmed).
    pub fn try_gemm_f32_faulted(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
        gemm::check_precision(precision, true, "gemm_f32")?;
        match &self.plan {
            Some(plan) => gemm::try_gemm_abft(
                self.ctx.pool(),
                "gemm",
                precision.mode(),
                a,
                b,
                c,
                Some(self.ctx),
                plan,
            ),
            None => self
                .ctx
                .try_gemm_f32(precision, a, b, c)
                .map(|r| (r, FaultSummary::default())),
        }
    }

    /// Complex GEMM with this executor's fault policy; see
    /// [`FaultyExecutor::try_gemm_f32_faulted`].
    pub fn try_cgemm_c32_faulted(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        c: &Matrix<C32>,
    ) -> Result<(GemmResult<C32>, FaultSummary), M3xuError> {
        match &self.plan {
            Some(plan) => gemm::try_gemm_abft(
                self.ctx.pool(),
                "cgemm",
                m3xu_mxu::modes::MxuMode::M3xuFp32c,
                a,
                b,
                c,
                Some(self.ctx),
                plan,
            ),
            None => self
                .ctx
                .try_cgemm_c32(a, b, c)
                .map(|r| (r, FaultSummary::default())),
        }
    }
}

impl GemmExecutor for FaultyExecutor<'_> {
    fn try_gemm_f32(
        &self,
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> Result<GemmResult<f32>, M3xuError> {
        self.try_gemm_f32_faulted(precision, a, b, c)
            .map(|(r, _)| r)
    }

    fn try_cgemm_c32(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        c: &Matrix<C32>,
    ) -> Result<GemmResult<C32>, M3xuError> {
        self.try_cgemm_c32_faulted(a, b, c).map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::M3xuContext;

    #[test]
    fn unarmed_executor_is_pure_delegation() {
        let ctx = M3xuContext::with_threads(2);
        let exec = FaultyExecutor::unarmed(&ctx);
        let a = Matrix::<f32>::random(17, 9, 21);
        let b = Matrix::<f32>::random(9, 13, 22);
        let c = Matrix::<f32>::random(17, 13, 23);
        let via_exec = exec
            .try_gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c)
            .unwrap();
        let direct = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        for (x, y) in via_exec.d.as_slice().iter().zip(direct.d.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(via_exec.stats, direct.stats);
    }

    #[test]
    fn armed_executor_recovers_and_matches_oracle() {
        let ctx = M3xuContext::with_threads(2);
        let plan = Arc::new(FaultPlan::new(42, 0.05));
        let exec = FaultyExecutor::armed(&ctx, plan);
        let a = Matrix::<f32>::random(33, 17, 31);
        let b = Matrix::<f32>::random(17, 29, 32);
        let c = Matrix::<f32>::random(33, 29, 33);
        let (r, summary) = exec
            .try_gemm_f32_faulted(GemmPrecision::M3xuFp32, &a, &b, &c)
            .unwrap();
        let oracle = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        for (x, y) in r.d.as_slice().iter().zip(oracle.d.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(summary.detected, summary.corrected);
    }
}
