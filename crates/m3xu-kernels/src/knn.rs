//! GEMM-based K-nearest-neighbour search — the paper's fourth case study
//! (§VI-C4, Fig. 9).
//!
//! kNN-CUDA's formulation: squared Euclidean distances decompose as
//! `‖q − r‖² = ‖q‖² + ‖r‖² − 2 q·r`, so the dominant cost is the
//! `queries x refs` inner-product **SGEMM** (`cublas_sgemm` in the
//! baseline, the M3XU FP32 mode here), followed by a top-K selection.
//! The paper's point: FP16 tensor cores would corrupt the distances for
//! small-magnitude data, while M3XU accelerates the GEMM with full FP32
//! fidelity.

use crate::context::{default_context, GemmExecutor};
use crate::gemm::GemmPrecision;
use m3xu_gpu::GpuConfig;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::matrix::Matrix;

/// The result of a KNN query set: for each query, the indices and squared
/// distances of its `k` nearest reference points (ascending).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnResult {
    /// `queries x k` neighbour indices.
    pub indices: Vec<Vec<usize>>,
    /// `queries x k` squared distances.
    pub distances: Vec<Vec<f32>>,
}

/// GEMM-based KNN on the chosen engine.
///
/// `refs` is `n_refs x dim`, `queries` is `n_queries x dim`. Panics on
/// invalid arguments; see [`try_knn_gemm`] for the fallible form.
pub fn knn_gemm(
    precision: GemmPrecision,
    refs: &Matrix<f32>,
    queries: &Matrix<f32>,
    k: usize,
) -> KnnResult {
    try_knn_gemm(precision, refs, queries, k).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`knn_gemm`]: reports a query/reference feature-dimension
/// mismatch as [`M3xuError::ShapeMismatch`] and `k > n_refs` as
/// [`M3xuError::InvalidK`]. `k == 0` is valid and yields empty
/// neighbour lists. Executes on the process-wide default context.
pub fn try_knn_gemm(
    precision: GemmPrecision,
    refs: &Matrix<f32>,
    queries: &Matrix<f32>,
    k: usize,
) -> Result<KnnResult, M3xuError> {
    try_knn_gemm_on(default_context(), precision, refs, queries, k)
}

/// [`try_knn_gemm`] on an explicit [`GemmExecutor`]: the heavy
/// inner-product GEMM runs through `exec`.
pub fn try_knn_gemm_on<X: GemmExecutor>(
    exec: &X,
    precision: GemmPrecision,
    refs: &Matrix<f32>,
    queries: &Matrix<f32>,
    k: usize,
) -> Result<KnnResult, M3xuError> {
    if refs.cols() != queries.cols() {
        return Err(M3xuError::ShapeMismatch {
            context: "knn(queries): feature dimension must match refs",
            expected: (queries.rows(), refs.cols()),
            got: (queries.rows(), queries.cols()),
        });
    }
    if k > refs.rows() {
        return Err(M3xuError::InvalidK {
            k,
            max: refs.rows(),
        });
    }
    if k == 0 {
        // Selecting zero neighbours is trivially empty (and would
        // underflow the `select_nth_unstable_by(k - 1, ..)` call below).
        return Ok(KnnResult {
            indices: vec![Vec::new(); queries.rows()],
            distances: vec![Vec::new(); queries.rows()],
        });
    }
    // Inner products: Q (nq x d) x R^T (d x nr) — the heavy GEMM.
    let qr = exec.try_matmul_f32(precision, queries, &refs.transpose())?;
    // Squared norms.
    let rn: Vec<f32> = (0..refs.rows())
        .map(|i| refs.row(i).iter().map(|&v| v * v).sum())
        .collect();
    let qn: Vec<f32> = (0..queries.rows())
        .map(|i| queries.row(i).iter().map(|&v| v * v).sum())
        .collect();

    let mut indices = Vec::with_capacity(queries.rows());
    let mut distances = Vec::with_capacity(queries.rows());
    #[allow(clippy::needless_range_loop)] // qi indexes qn and the GEMM rows
    for qi in 0..queries.rows() {
        // d²(q, r) = ‖q‖² + ‖r‖² − 2 q·r (clamped at 0 against rounding).
        let mut ds: Vec<(f32, usize)> = (0..refs.rows())
            .map(|ri| ((qn[qi] + rn[ri] - 2.0 * qr.get(qi, ri)).max(0.0), ri))
            .collect();
        // Partial top-K selection.
        ds.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut top: Vec<(f32, usize)> = ds[..k].to_vec();
        top.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        indices.push(top.iter().map(|&(_, i)| i).collect());
        distances.push(top.iter().map(|&(d, _)| d).collect());
    }
    Ok(KnnResult { indices, distances })
}

/// Brute-force reference KNN (per-pair scalar distances in f64).
pub fn knn_reference(refs: &Matrix<f32>, queries: &Matrix<f32>, k: usize) -> KnnResult {
    let mut indices = Vec::with_capacity(queries.rows());
    let mut distances = Vec::with_capacity(queries.rows());
    for qi in 0..queries.rows() {
        let mut ds: Vec<(f32, usize)> = (0..refs.rows())
            .map(|ri| {
                let d: f64 = refs
                    .row(ri)
                    .iter()
                    .zip(queries.row(qi))
                    .map(|(&r, &q)| (r as f64 - q as f64).powi(2))
                    .sum();
                (d as f32, ri)
            })
            .collect();
        ds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        indices.push(ds[..k].iter().map(|&(_, i)| i).collect());
        distances.push(ds[..k].iter().map(|&(d, _)| d).collect());
    }
    KnnResult { indices, distances }
}

// ---------------------------------------------------------------------------
// Fig. 9 performance model
// ---------------------------------------------------------------------------

/// Per-element top-K selection cost on the GPU (bitonic partial sort),
/// seconds per candidate distance.
const SELECT_S_PER_ELEM: f64 = 0.35e-9;

/// Modelled KNN wall-clock for `n` refs = `n` queries at dimension `d`.
fn knn_time(n: usize, d: usize, gemm_tflops: f64, gpu: &GpuConfig) -> f64 {
    let gemm_flops = 2.0 * (n as f64) * (n as f64) * d as f64;
    let gemm_s = gemm_flops / (gemm_tflops * 1e12);
    let norms_s =
        2.0 * (n as f64) * d as f64 / (gpu.at_experiment_clock(gpu.fp32_simt_tflops) * 1e12);
    let select_s = (n as f64) * (n as f64) * SELECT_S_PER_ELEM;
    gemm_s + norms_s + select_s + 2.0 * gpu.launch_overhead_s
}

/// One Fig. 9 heatmap cell.
#[derive(Debug, Clone)]
pub struct Fig9Cell {
    /// Reference/query point count.
    pub n: usize,
    /// Feature dimension.
    pub dim: usize,
    /// M3XU speedup over the `cublas_sgemm` SIMT baseline.
    pub speedup: f64,
}

m3xu_json::impl_to_json!(Fig9Cell { n, dim, speedup });

/// The Fig. 9 sweep: n in 2048…65536, dim in 512…4096, K = 16.
pub fn figure9(gpu: &GpuConfig) -> Vec<Fig9Cell> {
    let simt = gpu.at_experiment_clock(gpu.fp32_simt_tflops) * 0.96;
    let m3xu = gpu.at_experiment_clock(gpu.m3xu_fp32_tflops()) * 0.94;
    let mut out = Vec::new();
    for &n in &[2048usize, 8192, 16384, 65536] {
        for &dim in &[512usize, 1024, 2048, 4096] {
            let t_base = knn_time(n, dim, simt, gpu);
            let t_m3xu = knn_time(n, dim, m3xu, gpu);
            out.push(Fig9Cell {
                n,
                dim,
                speedup: t_base / t_m3xu,
            });
        }
    }
    out
}

/// Render Fig. 9 as a text heatmap.
pub fn render_figure9(cells: &[Fig9Cell]) -> String {
    let ns: Vec<usize> = {
        let mut v: Vec<usize> = cells.iter().map(|c| c.n).collect();
        v.dedup();
        v
    };
    let dims: Vec<usize> = {
        let mut v: Vec<usize> = cells.iter().map(|c| c.dim).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut out = format!("{:>8}", "n \\ dim");
    for d in &dims {
        out.push_str(&format!("{d:>8}"));
    }
    out.push('\n');
    for n in ns {
        out.push_str(&format!("{n:>8}"));
        for d in &dims {
            // A sparse sweep may not cover every (n, dim) cell — render a
            // placeholder instead of panicking on a missing combination.
            match cells.iter().find(|c| c.n == n && c.dim == *d) {
                Some(c) => out.push_str(&format!("{:>8.2}", c.speedup)),
                None => out.push_str(&format!("{:>8}", "---")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m3xu_knn_matches_reference_neighbours() {
        let refs = Matrix::<f32>::random(64, 8, 1);
        let queries = Matrix::<f32>::random(10, 8, 2);
        let got = knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 5);
        let gold = knn_reference(&refs, &queries, 5);
        assert_eq!(got.indices, gold.indices);
    }

    #[test]
    fn distances_are_sorted_and_nonnegative() {
        let refs = Matrix::<f32>::random(40, 6, 3);
        let queries = Matrix::<f32>::random(7, 6, 4);
        let r = knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 8);
        for ds in &r.distances {
            assert!(ds.windows(2).all(|w| w[0] <= w[1]));
            assert!(ds.iter().all(|&d| d >= 0.0));
        }
    }

    #[test]
    fn query_in_reference_set_finds_itself() {
        let refs = Matrix::<f32>::random(32, 5, 5);
        let q = Matrix::from_fn(1, 5, |_, j| refs.get(17, j));
        let r = knn_gemm(GemmPrecision::M3xuFp32, &refs, &q, 1);
        assert_eq!(r.indices[0][0], 17);
        assert!(r.distances[0][0] < 1e-9);
    }

    #[test]
    fn fp16_corrupts_small_magnitude_data_where_m3xu_does_not() {
        // §VI-C4: "the reduced precision will produce meaningless
        // computation results for input data with extremely small values."
        // Deep in FP16's subnormal range (min subnormal ~6e-8): quantised
        // inputs keep only a couple of mantissa bits.
        let scale = 2.0e-7f32;
        let mut refs = Matrix::<f32>::random(48, 16, 6);
        for v in refs.as_mut_slice() {
            *v *= scale;
        }
        let mut queries = Matrix::<f32>::random(8, 16, 7);
        for v in queries.as_mut_slice() {
            *v *= scale;
        }
        let gold = knn_reference(&refs, &queries, 4);
        let m3xu = knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 4);
        assert_eq!(m3xu.indices, gold.indices, "M3XU must stay correct");
        let fp16 = knn_gemm(GemmPrecision::Fp16, &refs, &queries, 4);
        // FP16 underflows the inner products (values ~1e-12): neighbours
        // are garbage for at least some queries.
        let wrong = fp16
            .indices
            .iter()
            .zip(&gold.indices)
            .filter(|(a, b)| a != b)
            .count();
        assert!(wrong > 0, "expected FP16 to corrupt at least one query");
    }

    #[test]
    fn figure9_headline() {
        let g = GpuConfig::a100_40gb();
        let cells = figure9(&g);
        let max = cells.iter().map(|c| c.speedup).fold(f64::MIN, f64::max);
        assert!((1.5..2.2).contains(&max), "max speedup = {max}");
        // Speedup grows with dimension at fixed n (GEMM share grows).
        for &n in &[2048usize, 65536] {
            let row: Vec<f64> = cells
                .iter()
                .filter(|c| c.n == n)
                .map(|c| c.speedup)
                .collect();
            assert!(
                row.windows(2).all(|w| w[1] >= w[0] * 0.999),
                "row not rising: {row:?}"
            );
        }
        // All speedups above 1 (GEMM always helps).
        assert!(cells.iter().all(|c| c.speedup > 1.0));
    }

    #[test]
    fn render_shape() {
        let g = GpuConfig::a100_40gb();
        let txt = render_figure9(&figure9(&g));
        assert!(txt.contains("65536"));
        assert!(txt.contains("4096"));
    }

    #[test]
    fn render_tolerates_missing_cells() {
        let cells = vec![
            Fig9Cell {
                n: 2048,
                dim: 512,
                speedup: 1.5,
            },
            Fig9Cell {
                n: 8192,
                dim: 1024,
                speedup: 1.7,
            },
        ];
        let txt = render_figure9(&cells);
        assert!(txt.contains("---"), "missing cells render a placeholder");
        assert!(txt.contains("1.50"));
    }

    #[test]
    fn try_knn_rejects_bad_arguments() {
        let refs = Matrix::<f32>::random(16, 4, 8);
        let queries = Matrix::<f32>::random(3, 5, 9);
        assert!(matches!(
            try_knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 2).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
        let queries = Matrix::<f32>::random(3, 4, 9);
        assert!(matches!(
            try_knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 17).unwrap_err(),
            M3xuError::InvalidK { k: 17, max: 16 }
        ));
    }

    #[test]
    fn k_zero_yields_empty_neighbour_lists() {
        let refs = Matrix::<f32>::random(16, 4, 10);
        let queries = Matrix::<f32>::random(3, 4, 11);
        let r = try_knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 0).unwrap();
        assert_eq!(r.indices, vec![Vec::<usize>::new(); 3]);
        assert_eq!(r.distances, vec![Vec::<f32>::new(); 3]);
    }
}
