//! Iterative linear solvers on the M3XU — the paper's scientific-computing
//! motivation ("scientific applications … are sensitive to numerical
//! errors and most existing implementations must rely on IEEE 754
//! standard single-precision floating-point numbers to function
//! correctly").
//!
//! Conjugate gradients stress exactly what separates M3XU from the lossy
//! alternatives: every iteration's matrix-vector product feeds residual
//! recurrences whose orthogonality degrades with arithmetic error. On
//! ill-conditioned systems the TF32 path stalls above the achievable
//! residual while the M3XU path matches true-FP32 convergence.

use crate::context::{default_context, GemmExecutor};
use crate::gemm::GemmPrecision;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::matrix::Matrix;

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The solution estimate.
    pub x: Vec<f32>,
    /// Relative residual ‖b − Ax‖/‖b‖ per iteration (index 0 = initial).
    pub residual_history: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// True iff the tolerance was reached.
    pub converged: bool,
}

fn norm(v: &[f32]) -> f64 {
    v.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Matrix-vector product `A·v` on the chosen GEMM engine.
fn matvec<X: GemmExecutor>(
    exec: &X,
    precision: GemmPrecision,
    a: &Matrix<f32>,
    v: &[f32],
) -> Result<Vec<f32>, M3xuError> {
    let vm = Matrix::from_vec(v.len(), 1, v.to_vec());
    let c = Matrix::zeros(a.rows(), 1);
    let r = exec.try_gemm_f32(precision, a, &vm, &c)?;
    Ok((0..a.rows()).map(|i| r.d.get(i, 0)).collect())
}

/// Conjugate gradients for symmetric positive-definite `A x = b`, with the
/// matrix-vector products on `precision` (scalar recurrences in FP32, as a
/// GPU implementation would keep them on CUDA cores). Panics on invalid
/// arguments; see [`try_conjugate_gradient`] for the fallible form.
pub fn conjugate_gradient(
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &[f32],
    tol: f64,
    max_iter: usize,
) -> CgResult {
    try_conjugate_gradient(precision, a, b, tol, max_iter).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`conjugate_gradient`]: rejects a non-square `A` or a
/// right-hand side whose length differs from `A`'s order. Executes on
/// the process-wide default context.
pub fn try_conjugate_gradient(
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &[f32],
    tol: f64,
    max_iter: usize,
) -> Result<CgResult, M3xuError> {
    try_conjugate_gradient_on(default_context(), precision, a, b, tol, max_iter)
}

/// [`try_conjugate_gradient`] on an explicit [`GemmExecutor`]: every
/// iteration's matrix-vector GEMM runs through `exec`.
pub fn try_conjugate_gradient_on<X: GemmExecutor>(
    exec: &X,
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &[f32],
    tol: f64,
    max_iter: usize,
) -> Result<CgResult, M3xuError> {
    let n = b.len();
    if a.rows() != n || a.cols() != n {
        return Err(M3xuError::ShapeMismatch {
            context: "conjugate_gradient(A): A must be square of b's order",
            expected: (n, n),
            got: (a.rows(), a.cols()),
        });
    }
    let mut x = vec![0.0f32; n];
    let mut r: Vec<f32> = b.to_vec();
    let mut p = r.clone();
    let b_norm = norm(b).max(1e-300);
    let mut history = vec![norm(&r) / b_norm];
    let mut rs_old = dot(&r, &r);

    for it in 0..max_iter {
        if history[it] < tol {
            return Ok(CgResult {
                x,
                residual_history: history,
                iterations: it,
                converged: true,
            });
        }
        let ap = matvec(exec, precision, a, &p)?;
        let p_ap = dot(&p, &ap);
        if p_ap <= 0.0 || !p_ap.is_finite() {
            // Lost positive-definiteness to arithmetic error.
            return Ok(CgResult {
                x,
                residual_history: history,
                iterations: it,
                converged: false,
            });
        }
        let alpha = (rs_old / p_ap) as f32;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        history.push(rs_new.sqrt() / b_norm);
        let beta = (rs_new / rs_old) as f32;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    let converged = *history.last().unwrap() < tol;
    Ok(CgResult {
        x,
        residual_history: history,
        iterations: max_iter,
        converged,
    })
}

/// A symmetric positive-definite test matrix with condition number ~`cond`:
/// `A = Q D Qᵀ` approximated by a diagonally-shifted random Gram matrix.
pub fn spd_matrix(n: usize, cond: f64, seed: u64) -> Matrix<f32> {
    // Gram matrix G = M Mᵀ / n is SPD; shifting its diagonal sets the
    // smallest eigenvalue and thus the condition number.
    let m = Matrix::<f32>::random(n, n, seed);
    let g = Matrix::reference_gemm_f64(&m, &m.transpose(), &Matrix::zeros(n, n));
    // Estimate the largest diagonal scale.
    let max_diag = (0..n).map(|i| g.get(i, i)).fold(0.0f32, f32::max) as f64;
    let shift = (max_diag / cond) as f32;
    Matrix::from_fn(n, n, |i, j| {
        let v = g.get(i, j) / n as f32;
        if i == j {
            v + shift
        } else {
            v
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity_immediately() {
        let a = Matrix::<f32>::identity(8);
        let b = vec![1.0f32; 8];
        let r = conjugate_gradient(GemmPrecision::M3xuFp32, &a, &b, 1e-6, 20);
        assert!(r.converged);
        assert!(r.iterations <= 2);
        for &x in &r.x {
            assert!((x - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn converges_on_well_conditioned_spd() {
        let n = 24;
        let a = spd_matrix(n, 10.0, 3);
        let b: Vec<f32> = (0..n).map(|i| ((i * 7 % 5) as f32 - 2.0) * 0.5).collect();
        let r = conjugate_gradient(GemmPrecision::M3xuFp32, &a, &b, 1e-6, 200);
        assert!(
            r.converged,
            "residual history tail: {:?}",
            &r.residual_history[r.residual_history.len().saturating_sub(3)..]
        );
        // Verify the solution against a direct residual check in f64.
        let ax = matvec(default_context(), GemmPrecision::M3xuFp32, &a, &r.x).unwrap();
        let res: f64 = ax
            .iter()
            .zip(&b)
            .map(|(&y, &t)| ((y - t) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(res / norm(&b) < 1e-5);
    }

    #[test]
    fn residuals_decrease_monotonically_enough() {
        let n = 16;
        let a = spd_matrix(n, 50.0, 4);
        let b = vec![1.0f32; n];
        let r = conjugate_gradient(GemmPrecision::M3xuFp32, &a, &b, 1e-8, 100);
        let first = r.residual_history[0];
        let last = *r.residual_history.last().unwrap();
        assert!(last < first * 1e-4, "first {first}, last {last}");
    }

    #[test]
    fn m3xu_converges_deeper_than_tf32_on_ill_conditioned_system() {
        // The §I claim made concrete: CG's *recursive* residual always
        // shrinks, but with TF32 matvecs the computed solution drifts away
        // from the true one — the TRUE residual ||b - Ax|| (evaluated with
        // exact arithmetic) stalls at a floor set by the 10-bit mantissa,
        // while M3XU tracks genuine FP32 convergence.
        let n = 32;
        let a = spd_matrix(n, 1.0e4, 5);
        let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let iters = 300;
        let true_residual = |x: &[f32]| -> f64 {
            let xm = Matrix::from_vec(n, 1, x.to_vec());
            let ax = Matrix::reference_gemm_f64(&a, &xm, &Matrix::zeros(n, 1));
            (0..n)
                .map(|i| ((ax.get(i, 0) - b[i]) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
                / norm(&b)
        };
        let m3xu = conjugate_gradient(GemmPrecision::M3xuFp32, &a, &b, 1e-10, iters);
        let tf32 = conjugate_gradient(GemmPrecision::Tf32, &a, &b, 1e-10, iters);
        let (rm, rt) = (true_residual(&m3xu.x), true_residual(&tf32.x));
        assert!(
            rm < rt / 10.0,
            "m3xu true residual {rm:.3e} should be far below tf32 {rt:.3e}"
        );
    }

    #[test]
    fn try_cg_rejects_non_square_or_mismatched_systems() {
        let a = Matrix::<f32>::random(8, 6, 7);
        let b = vec![1.0f32; 8];
        assert!(matches!(
            try_conjugate_gradient(GemmPrecision::M3xuFp32, &a, &b, 1e-6, 10).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
        let a = Matrix::<f32>::identity(8);
        let b = vec![1.0f32; 5];
        assert!(matches!(
            try_conjugate_gradient(GemmPrecision::M3xuFp32, &a, &b, 1e-6, 10).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn spd_matrix_is_symmetric_positive_diag() {
        let a = spd_matrix(12, 100.0, 6);
        for i in 0..12 {
            assert!(a.get(i, i) > 0.0);
            for j in 0..12 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-6);
            }
        }
    }
}
