//! A real, trainable MLP whose GEMMs run on the functional M3XU.
//!
//! This demonstrates the paper's deployment claim end to end: an FP32
//! training loop needs **zero** software changes to run on M3XU, and its
//! numerics match FP32 expectations (no TF32-style divergence). The
//! network is a two-layer MLP with ReLU and mean-squared-error loss,
//! trained by plain SGD; forward and backward matrix products all route
//! through [`gemm_f32`](crate::gemm::gemm_f32).

use crate::context::{default_context, GemmExecutor};
use crate::gemm::GemmPrecision;
use m3xu_mxu::matrix::Matrix;

/// A two-layer perceptron `y = W2 · relu(W1 · x + b1) + b2`.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// First-layer weights, `hidden x inputs`.
    pub w1: Matrix<f32>,
    /// First-layer bias, `hidden x 1`.
    pub b1: Vec<f32>,
    /// Second-layer weights, `outputs x hidden`.
    pub w2: Matrix<f32>,
    /// Second-layer bias, `outputs x 1`.
    pub b2: Vec<f32>,
    /// Which GEMM engine runs the matrix products.
    pub precision: GemmPrecision,
}

/// One forward pass's intermediates (kept for the backward pass).
pub struct ForwardState {
    /// Input batch, `inputs x batch`.
    pub x: Matrix<f32>,
    /// Pre-activation of layer 1, `hidden x batch`.
    pub z1: Matrix<f32>,
    /// Post-ReLU activation, `hidden x batch`.
    pub a1: Matrix<f32>,
    /// Network output, `outputs x batch`.
    pub y: Matrix<f32>,
}

impl Mlp {
    /// Random initialisation (scaled uniform).
    pub fn new(
        inputs: usize,
        hidden: usize,
        outputs: usize,
        precision: GemmPrecision,
        seed: u64,
    ) -> Self {
        let scale1 = (2.0 / inputs as f32).sqrt();
        let scale2 = (2.0 / hidden as f32).sqrt();
        let mut w1 = Matrix::<f32>::random(hidden, inputs, seed);
        for v in w1.as_mut_slice() {
            *v *= scale1;
        }
        let mut w2 = Matrix::<f32>::random(outputs, hidden, seed ^ 0xBEEF);
        for v in w2.as_mut_slice() {
            *v *= scale2;
        }
        Mlp {
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; outputs],
            precision,
        }
    }

    /// Forward pass on a batch (`inputs x batch`), on the process-wide
    /// default context.
    pub fn forward(&self, x: &Matrix<f32>) -> ForwardState {
        self.forward_on(default_context(), x)
    }

    /// [`Mlp::forward`] on an explicit [`GemmExecutor`].
    pub fn forward_on<X: GemmExecutor>(&self, exec: &X, x: &Matrix<f32>) -> ForwardState {
        let gemm = |a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>| {
            exec.try_gemm_f32(self.precision, a, b, c)
                .unwrap_or_else(|e| panic!("{e}"))
                .d
        };
        let batch = x.cols();
        let c1 = Matrix::from_fn(self.w1.rows(), batch, |i, _| self.b1[i]);
        let z1 = gemm(&self.w1, x, &c1);
        let a1 = Matrix::from_fn(z1.rows(), z1.cols(), |i, j| z1.get(i, j).max(0.0));
        let c2 = Matrix::from_fn(self.w2.rows(), batch, |i, _| self.b2[i]);
        let y = gemm(&self.w2, &a1, &c2);
        ForwardState {
            x: x.clone(),
            z1,
            a1,
            y,
        }
    }

    /// Mean-squared-error loss against targets (`outputs x batch`).
    pub fn mse(&self, y: &Matrix<f32>, t: &Matrix<f32>) -> f32 {
        let n = (y.rows() * y.cols()) as f32;
        y.as_slice()
            .iter()
            .zip(t.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n
    }

    /// One SGD step on a batch; returns the pre-update loss.
    ///
    /// All four backward matrix products (`dW2 = dy·a1ᵀ`, `da1 = W2ᵀ·dy`,
    /// `dW1 = dz1·xᵀ` and the next `dx` if chained) run on the same GEMM
    /// engine as the forward — the paper's point about the backward pass.
    pub fn train_step(&mut self, x: &Matrix<f32>, t: &Matrix<f32>, lr: f32) -> f32 {
        self.train_step_on(default_context(), x, t, lr)
    }

    /// [`Mlp::train_step`] on an explicit [`GemmExecutor`].
    pub fn train_step_on<X: GemmExecutor>(
        &mut self,
        exec: &X,
        x: &Matrix<f32>,
        t: &Matrix<f32>,
        lr: f32,
    ) -> f32 {
        let matmul = |a: &Matrix<f32>, b: &Matrix<f32>| {
            exec.try_matmul_f32(self.precision, a, b)
                .unwrap_or_else(|e| panic!("{e}"))
        };
        let fs = self.forward_on(exec, x);
        let loss = self.mse(&fs.y, t);
        let batch = x.cols() as f32;
        let scale = 2.0 / (fs.y.rows() as f32 * batch);
        // dL/dy
        let dy = Matrix::from_fn(fs.y.rows(), fs.y.cols(), |i, j| {
            scale * (fs.y.get(i, j) - t.get(i, j))
        });
        // dW2 = dy · a1^T ; db2 = row-sum(dy)
        let dw2 = matmul(&dy, &fs.a1.transpose());
        // da1 = W2^T · dy, masked by ReLU'(z1)
        let da1 = matmul(&self.w2.transpose(), &dy);
        let dz1 = Matrix::from_fn(da1.rows(), da1.cols(), |i, j| {
            if fs.z1.get(i, j) > 0.0 {
                da1.get(i, j)
            } else {
                0.0
            }
        });
        // dW1 = dz1 · x^T
        let dw1 = matmul(&dz1, &fs.x.transpose());

        // SGD update.
        for i in 0..self.w2.rows() {
            let mut db = 0.0;
            for j in 0..dy.cols() {
                db += dy.get(i, j);
            }
            self.b2[i] -= lr * db;
            for j in 0..self.w2.cols() {
                self.w2.set(i, j, self.w2.get(i, j) - lr * dw2.get(i, j));
            }
        }
        for i in 0..self.w1.rows() {
            let mut db = 0.0;
            for j in 0..dz1.cols() {
                db += dz1.get(i, j);
            }
            self.b1[i] -= lr * db;
            for j in 0..self.w1.cols() {
                self.w1.set(i, j, self.w1.get(i, j) - lr * dw1.get(i, j));
            }
        }
        loss
    }
}

/// Train on a synthetic regression task (`t = P·x` for a hidden random
/// projection) and return the loss trajectory.
pub fn train_synthetic(precision: GemmPrecision, steps: usize, seed: u64) -> Vec<f32> {
    let (inputs, hidden, outputs, batch) = (16, 32, 4, 16);
    let projection = Matrix::<f32>::random(outputs, inputs, seed ^ 0x5151);
    let mut mlp = Mlp::new(inputs, hidden, outputs, precision, seed);
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let x = Matrix::<f32>::random(inputs, batch, seed + step as u64 * 7919);
        let t = Matrix::reference_gemm(&projection, &x, &Matrix::zeros(outputs, batch));
        losses.push(mlp.train_step(&x, &t, 0.05));
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(8, 16, 4, GemmPrecision::M3xuFp32, 1);
        let x = Matrix::<f32>::random(8, 5, 2);
        let fs = mlp.forward(&x);
        assert_eq!((fs.z1.rows(), fs.z1.cols()), (16, 5));
        assert_eq!((fs.y.rows(), fs.y.cols()), (4, 5));
        // ReLU: activations non-negative.
        assert!(fs.a1.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn training_reduces_loss_on_m3xu() {
        let losses = train_synthetic(GemmPrecision::M3xuFp32, 150, 3);
        let head: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(
            tail < head * 0.5,
            "loss did not halve: head {head} tail {tail}"
        );
    }

    #[test]
    fn m3xu_training_tracks_fp32_semantics() {
        // The M3XU run and an FP16-quantised run diverge; the M3XU run
        // should end with a loss at least as good (FP32 precision).
        let m3xu = train_synthetic(GemmPrecision::M3xuFp32, 60, 4);
        let fp16 = train_synthetic(GemmPrecision::Fp16, 60, 4);
        let last = |v: &[f32]| v[v.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            last(&m3xu) <= last(&fp16) * 1.5,
            "m3xu {} vs fp16 {}",
            last(&m3xu),
            last(&fp16)
        );
    }

    #[test]
    fn gradients_are_finite() {
        let mut mlp = Mlp::new(8, 8, 2, GemmPrecision::M3xuFp32, 5);
        let x = Matrix::<f32>::random(8, 4, 6);
        let t = Matrix::<f32>::random(2, 4, 7);
        for _ in 0..5 {
            let loss = mlp.train_step(&x, &t, 0.01);
            assert!(loss.is_finite());
        }
        assert!(mlp.w1.as_slice().iter().all(|v| v.is_finite()));
        assert!(mlp.w2.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn overfits_single_batch() {
        // Sanity: the network can drive loss near zero on one fixed batch.
        let mut mlp = Mlp::new(4, 24, 2, GemmPrecision::M3xuFp32, 8);
        let x = Matrix::<f32>::random(4, 8, 9);
        let t = Matrix::<f32>::random(2, 8, 10);
        let mut last = f32::MAX;
        for _ in 0..300 {
            last = mlp.train_step(&x, &t, 0.1);
        }
        assert!(last < 0.01, "final loss = {last}");
    }
}
