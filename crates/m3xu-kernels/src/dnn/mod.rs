//! DNN training — the paper's second case study (§VI-C2, Fig. 7).
//!
//! Two layers of fidelity:
//!
//! * [`models`] — per-layer FLOP inventories of the three Nebula-style
//!   CNNs (AlexNet, VGG, ResNet) and the Fig. 7 one-iteration latency
//!   model: mixed-precision forward on tensor cores; backward on SIMT
//!   FP32 in the baseline (no FP32 tensor instructions exist) vs on
//!   M3XU's exact FP32 mode;
//! * [`train`] — an actually-trainable MLP whose forward and backward
//!   GEMMs run on the functional M3XU, demonstrating end-to-end FP32
//!   training with zero software changes (the paper's deployment story).

pub mod models;
pub mod train;
