//! CNN per-layer inventories and the Fig. 7 training-latency model.
//!
//! The baseline is PyTorch-style mixed-precision training: the forward
//! pass runs on FP16/TF32 tensor cores, but "the existing implementation
//! only applies SIMT-based kernels to mixed precision training \[backward\]
//! due to the absence of FP32 Tensor Core instructions" (§VI-C2). M3XU
//! supplies exactly those instructions, accelerating the backward GEMMs
//! ~3.6x while leaving everything else untouched.

use crate::conv2d::ConvSpec;
use m3xu_gpu::GpuConfig;

/// One layer's worth of GEMM work.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Layer name.
    pub name: &'static str,
    /// Forward multiply-accumulate count per example.
    pub fwd_macs: f64,
}
m3xu_json::impl_to_json!(Layer { name, fwd_macs });

impl Layer {
    /// Convolution layer MACs: `out_ch * out_h * out_w * in_ch * k * k`.
    pub fn conv(
        name: &'static str,
        in_ch: usize,
        out_ch: usize,
        input: usize,
        spec: ConvSpec,
    ) -> Layer {
        let out = spec.out_extent(input);
        Layer {
            name,
            fwd_macs: (out_ch * out * out * in_ch * spec.kernel * spec.kernel) as f64,
        }
    }

    /// Fully connected layer MACs.
    pub fn fc(name: &'static str, inputs: usize, outputs: usize) -> Layer {
        Layer {
            name,
            fwd_macs: (inputs * outputs) as f64,
        }
    }
}

/// A CNN model: its layers plus the paper-reported backward-pass share of
/// one-iteration runtime under the mixed-precision baseline.
#[derive(Debug, Clone)]
pub struct CnnModel {
    /// Model name.
    pub name: &'static str,
    /// Layer inventory.
    pub layers: Vec<Layer>,
    /// §VI-C2: backward share of baseline runtime (VGG 39.6%, ResNet
    /// 39.1%, AlexNet 46.5%).
    pub paper_backward_share: f64,
}
m3xu_json::impl_to_json!(CnnModel {
    name,
    layers,
    paper_backward_share
});

impl CnnModel {
    /// Total forward MACs per example.
    pub fn fwd_macs(&self) -> f64 {
        self.layers.iter().map(|l| l.fwd_macs).sum()
    }

    /// Total forward flops per example (2 per MAC).
    pub fn fwd_flops(&self) -> f64 {
        2.0 * self.fwd_macs()
    }

    /// Backward GEMM flops per example: dgrad + wgrad each cost roughly
    /// one forward's worth (the standard 2x rule).
    pub fn bwd_flops(&self) -> f64 {
        2.0 * self.fwd_flops()
    }
}

/// AlexNet (5 conv + 3 fc; ~0.7 GMAC forward).
pub fn alexnet() -> CnnModel {
    let s = |k, st, p| ConvSpec {
        kernel: k,
        stride: st,
        padding: p,
    };
    CnnModel {
        name: "AlexNet",
        layers: vec![
            Layer::conv("conv1", 3, 64, 224, s(11, 4, 2)),
            Layer::conv("conv2", 64, 192, 27, s(5, 1, 2)),
            Layer::conv("conv3", 192, 384, 13, s(3, 1, 1)),
            Layer::conv("conv4", 384, 256, 13, s(3, 1, 1)),
            Layer::conv("conv5", 256, 256, 13, s(3, 1, 1)),
            Layer::fc("fc6", 256 * 6 * 6, 4096),
            Layer::fc("fc7", 4096, 4096),
            Layer::fc("fc8", 4096, 1000),
        ],
        paper_backward_share: 0.465,
    }
}

/// VGG-16 (13 conv + 3 fc; ~15.5 GMAC forward).
pub fn vgg16() -> CnnModel {
    let s = ConvSpec {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    CnnModel {
        name: "VGG",
        layers: vec![
            Layer::conv("conv1_1", 3, 64, 224, s),
            Layer::conv("conv1_2", 64, 64, 224, s),
            Layer::conv("conv2_1", 64, 128, 112, s),
            Layer::conv("conv2_2", 128, 128, 112, s),
            Layer::conv("conv3_1", 128, 256, 56, s),
            Layer::conv("conv3_2", 256, 256, 56, s),
            Layer::conv("conv3_3", 256, 256, 56, s),
            Layer::conv("conv4_1", 256, 512, 28, s),
            Layer::conv("conv4_2", 512, 512, 28, s),
            Layer::conv("conv4_3", 512, 512, 28, s),
            Layer::conv("conv5_1", 512, 512, 14, s),
            Layer::conv("conv5_2", 512, 512, 14, s),
            Layer::conv("conv5_3", 512, 512, 14, s),
            Layer::fc("fc6", 512 * 7 * 7, 4096),
            Layer::fc("fc7", 4096, 4096),
            Layer::fc("fc8", 4096, 1000),
        ],
        paper_backward_share: 0.396,
    }
}

/// ResNet-50-class model (bottleneck stages; ~4.1 GMAC forward,
/// inventoried at stage granularity).
pub fn resnet50() -> CnnModel {
    let mut layers = vec![Layer::conv(
        "stem",
        3,
        64,
        224,
        ConvSpec {
            kernel: 7,
            stride: 2,
            padding: 3,
        },
    )];
    // (stage, blocks, in_ch, mid_ch, out_ch, spatial)
    let stages: [(&'static str, usize, usize, usize, usize, usize); 4] = [
        ("stage1", 3, 64, 64, 256, 56),
        ("stage2", 4, 256, 128, 512, 28),
        ("stage3", 6, 512, 256, 1024, 14),
        ("stage4", 3, 1024, 512, 2048, 7),
    ];
    for (name, blocks, in_ch, mid, out, sp) in stages {
        // Each bottleneck: 1x1 (in->mid), 3x3 (mid->mid), 1x1 (mid->out).
        let macs_block =
            (in_ch * mid * sp * sp + mid * mid * 9 * sp * sp + mid * out * sp * sp) as f64;
        layers.push(Layer {
            name,
            fwd_macs: macs_block * blocks as f64,
        });
    }
    layers.push(Layer::fc("fc", 2048, 1000));
    CnnModel {
        name: "ResNet",
        layers,
        paper_backward_share: 0.391,
    }
}

/// One Fig. 7 bar pair: per-iteration latency breakdown under the
/// mixed-precision baseline and under M3XU.
#[derive(Debug, Clone)]
pub struct TrainingLatency {
    /// Model name.
    pub model: &'static str,
    /// Baseline forward time (tensor-core mixed precision), seconds.
    pub fwd_s: f64,
    /// Baseline backward time (SIMT FP32 GEMMs), seconds.
    pub bwd_baseline_s: f64,
    /// M3XU backward time (FP32 M3XU GEMMs + the non-GEMM share), seconds.
    pub bwd_m3xu_s: f64,
    /// Framework/data/optimizer time common to both, seconds.
    pub other_s: f64,
    /// Backward-pass speedup (paper: ~3.6x).
    pub bwd_speedup: f64,
    /// End-to-end one-iteration speedup.
    pub end_to_end_speedup: f64,
}
m3xu_json::impl_to_json!(TrainingLatency {
    model,
    fwd_s,
    bwd_baseline_s,
    bwd_m3xu_s,
    other_s,
    bwd_speedup,
    end_to_end_speedup,
});

/// Model one training iteration at batch size `batch`.
///
/// The non-GEMM time (`other_s`) is set so the baseline backward share
/// matches the paper's measured fraction for each network — those shares
/// are measurements we inherit, not predictions.
pub fn training_latency(model: &CnnModel, batch: usize, gpu: &GpuConfig) -> TrainingLatency {
    let b = batch as f64;
    // Forward: mixed-precision tensor cores (FP16 rate, typical 60%
    // efficiency for layer-shaped GEMMs).
    let fwd_rate = gpu.at_experiment_clock(gpu.fp16_tc_tflops) * 1e12 * 0.60;
    let fwd_s = model.fwd_flops() * b / fwd_rate;
    // Baseline backward: SIMT FP32.
    let simt_rate = gpu.at_experiment_clock(gpu.fp32_simt_tflops) * 1e12 * 0.90;
    let bwd_gemm_s = model.bwd_flops() * b / simt_rate;
    // Non-GEMM work inside the backward pass (activation grads, norms):
    // ~7% of the backward GEMM time; it does not accelerate.
    let bwd_other_s = 0.07 * bwd_gemm_s;
    let bwd_baseline_s = bwd_gemm_s + bwd_other_s;
    // Choose the framework/other time so backward share matches §VI-C2.
    let share = model.paper_backward_share;
    let other_s = (bwd_baseline_s * (1.0 - share) / share - fwd_s).max(0.0);
    // M3XU backward: GEMMs at the M3XU FP32 rate.
    let m3xu_rate = gpu.at_experiment_clock(gpu.m3xu_fp32_tflops()) * 1e12 * 0.90;
    let bwd_m3xu_s = model.bwd_flops() * b / m3xu_rate + bwd_other_s;

    let baseline_total = fwd_s + bwd_baseline_s + other_s;
    let m3xu_total = fwd_s + bwd_m3xu_s + other_s;
    TrainingLatency {
        model: model.name,
        fwd_s,
        bwd_baseline_s,
        bwd_m3xu_s,
        other_s,
        bwd_speedup: bwd_baseline_s / bwd_m3xu_s,
        end_to_end_speedup: baseline_total / m3xu_total,
    }
}

/// Fig. 7: all three models at the given batch size.
pub fn figure7(batch: usize, gpu: &GpuConfig) -> Vec<TrainingLatency> {
    [vgg16(), resnet50(), alexnet()]
        .iter()
        .map(|m| training_latency(m, batch, gpu))
        .collect()
}

/// Render Fig. 7 as aligned text.
pub fn render_figure7(rows: &[TrainingLatency]) -> String {
    let mut out = format!(
        "{:10} {:>12} {:>12} {:>12} {:>10} {:>10}\n",
        "model", "baseline ms", "m3xu ms", "bwd share", "bwd spd", "e2e spd"
    );
    for r in rows {
        let base = r.fwd_s + r.bwd_baseline_s + r.other_s;
        let m3xu = r.fwd_s + r.bwd_m3xu_s + r.other_s;
        out.push_str(&format!(
            "{:10} {:>12.2} {:>12.2} {:>11.1}% {:>9.2}x {:>9.2}x\n",
            r.model,
            base * 1e3,
            m3xu * 1e3,
            100.0 * r.bwd_baseline_s / base,
            r.bwd_speedup,
            r.end_to_end_speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuConfig {
        GpuConfig::a100_40gb()
    }

    #[test]
    fn model_flop_inventories_are_plausible() {
        // Known forward GMACs per 224x224 image: AlexNet ~0.7, VGG16
        // ~15.5, ResNet50 ~4.1.
        let a = alexnet().fwd_macs() / 1e9;
        assert!((0.6..0.9).contains(&a), "AlexNet GMACs = {a}");
        let v = vgg16().fwd_macs() / 1e9;
        assert!((14.0..16.5).contains(&v), "VGG16 GMACs = {v}");
        let r = resnet50().fwd_macs() / 1e9;
        // Stage-granular inventory omits downsample projections: ~3.2 GMAC
        // against the textbook 4.1.
        assert!((2.9..4.6).contains(&r), "ResNet50 GMACs = {r}");
    }

    #[test]
    fn backward_shares_match_section_6c2() {
        let g = gpu();
        for r in figure7(64, &g) {
            let base = r.fwd_s + r.bwd_baseline_s + r.other_s;
            let share = r.bwd_baseline_s / base;
            let expected = match r.model {
                "VGG" => 0.396,
                "ResNet" => 0.391,
                "AlexNet" => 0.465,
                _ => unreachable!(),
            };
            assert!(
                (share - expected).abs() < 0.02,
                "{}: share {share} vs paper {expected}",
                r.model
            );
        }
    }

    #[test]
    fn backward_speedup_near_3_6x() {
        let g = gpu();
        for r in figure7(64, &g) {
            assert!(
                (3.2..4.0).contains(&r.bwd_speedup),
                "{}: bwd speedup = {}",
                r.model,
                r.bwd_speedup
            );
        }
    }

    #[test]
    fn end_to_end_speedup_shape() {
        // Amdahl over the paper's own backward shares bounds the
        // end-to-end gain; AlexNet (largest backward share) gains most.
        let g = gpu();
        let rows = figure7(64, &g);
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.model == name)
                .unwrap()
                .end_to_end_speedup
        };
        let (vgg, resnet, alex) = (by("VGG"), by("ResNet"), by("AlexNet"));
        assert!(alex > vgg && alex > resnet, "AlexNet should gain most");
        for s in [vgg, resnet, alex] {
            assert!((1.3..1.7).contains(&s), "e2e speedup = {s}");
        }
    }

    #[test]
    fn latencies_scale_with_batch() {
        let g = gpu();
        let t64 = training_latency(&vgg16(), 64, &g);
        let t128 = training_latency(&vgg16(), 128, &g);
        assert!(t128.fwd_s > 1.9 * t64.fwd_s);
    }

    #[test]
    fn render_mentions_models() {
        let g = gpu();
        let txt = render_figure7(&figure7(64, &g));
        for m in ["VGG", "ResNet", "AlexNet"] {
            assert!(txt.contains(m));
        }
    }
}
