//! Tiled GEMM driver over the functional M3XU.
//!
//! A CUTLASS-style hierarchical GEMM: the output splits into threadblock
//! tiles, each tile's `K` loop issues fragment-shaped MMA instructions to
//! an [`Mxu`], and the epilogue writes back. Output tiles are disjoint, so
//! the tile grid shards across CPU threads with `crossbeam::scope` — no
//! locks on the hot path, matching the data-parallel execution the real
//! kernels have.
//!
//! Every precision mode routes through the same driver, differing only in
//! the MMA issued per fragment — exactly the paper's point that "the
//! programming model … remain[s] the same as the existing Tensor Cores".

use crossbeam::thread;
use m3xu_fp::complex::Complex;
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::{MmaShape, MmaStats};
use m3xu_mxu::modes::MxuMode;
use m3xu_mxu::unit::{Mxu, MxuConfig};

/// Which GEMM engine/precision the driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmPrecision {
    /// M3XU true FP32 (bit-exact, 2-step MMAs).
    M3xuFp32,
    /// TF32 Tensor-Core mode (precision-lossy baseline).
    Tf32,
    /// FP16 inputs (values quantised at the buffers).
    Fp16,
    /// BF16 inputs.
    Bf16,
}

/// Per-thread partial result: owned output row-stripes plus counters.
type StripeResult<T> = (Vec<(usize, Matrix<T>)>, MmaStats);

/// Result of a tiled GEMM: the output matrix plus MMA statistics.
pub struct GemmResult<T> {
    /// `D = A·B + C`.
    pub d: Matrix<T>,
    /// Aggregated MMA statistics across all tiles and threads.
    pub stats: MmaStats,
}

/// Number of worker threads the drivers use (bounded to keep test runs
/// snappy on small machines).
fn workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Tiled FP32 GEMM `D = A·B + C` on the M3XU (or a baseline mode).
///
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`. Any sizes are accepted;
/// edges are zero-padded into fragments exactly like predicated loads.
pub fn gemm_f32(
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
) -> GemmResult<f32> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k, "inner dimensions must agree");
    assert_eq!((c.rows(), c.cols()), (m, n), "C must be m x n");

    let mode = match precision {
        GemmPrecision::M3xuFp32 => MxuMode::M3xuFp32,
        GemmPrecision::Tf32 => MxuMode::Tf32,
        GemmPrecision::Fp16 => MxuMode::Fp16,
        GemmPrecision::Bf16 => MxuMode::Bf16,
    };
    let frag = MmaShape::BASELINE_FP16.for_mode(mode);

    let row_tiles: Vec<usize> = (0..m).step_by(frag.m).collect();
    let mut d = Matrix::<f32>::zeros(m, n);
    let mut total = MmaStats::default();

    // Shard output row-stripes across threads; each thread owns a disjoint
    // set of output rows, so the writes below never alias.
    let nw = workers().min(row_tiles.len().max(1));
    let chunks: Vec<&[usize]> =
        row_tiles.chunks(row_tiles.len().div_ceil(nw.max(1)).max(1)).collect();

    let results: Vec<StripeResult<f32>> = thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                s.spawn(move |_| {
                    let mut mxu = Mxu::new(MxuConfig::default());
                    let mut out = Vec::new();
                    for &i0 in chunk.iter() {
                        let mut stripe = Matrix::<f32>::zeros(frag.m, n);
                        for j0 in (0..n).step_by(frag.n) {
                            // Accumulate over K in fragment steps.
                            let mut acc = c.tile(i0, j0, frag.m, frag.n);
                            for k0 in (0..k).step_by(frag.k) {
                                let at = a.tile(i0, k0, frag.m, frag.k);
                                let bt = b.tile(k0, j0, frag.k, frag.n);
                                acc = match precision {
                                    GemmPrecision::M3xuFp32 => mxu.mma_fp32(&at, &bt, &acc),
                                    GemmPrecision::Tf32 => mxu.mma_tf32(&at, &bt, &acc),
                                    GemmPrecision::Fp16 => mxu.mma_fp16(&at, &bt, &acc),
                                    GemmPrecision::Bf16 => mxu.mma_bf16(&at, &bt, &acc),
                                };
                            }
                            stripe.store_tile(0, j0, &acc);
                        }
                        out.push((i0, stripe));
                    }
                    let stats = mxu.counters.for_mode(mode);
                    (out, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    for (stripes, stats) in results {
        total.merge(&stats);
        for (i0, stripe) in stripes {
            d.store_tile(i0, 0, &stripe);
        }
    }
    GemmResult { d, stats: total }
}

/// Tiled FP32C GEMM on the M3XU's four-step complex mode.
pub fn cgemm_c32(
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &Matrix<Complex<f32>>,
) -> GemmResult<Complex<f32>> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k, "inner dimensions must agree");
    assert_eq!((c.rows(), c.cols()), (m, n), "C must be m x n");
    let frag = MmaShape::BASELINE_FP16.for_mode(MxuMode::M3xuFp32c);

    let row_tiles: Vec<usize> = (0..m).step_by(frag.m).collect();
    let mut d = Matrix::<Complex<f32>>::zeros(m, n);
    let mut total = MmaStats::default();
    let nw = workers().min(row_tiles.len().max(1));
    let chunks: Vec<&[usize]> =
        row_tiles.chunks(row_tiles.len().div_ceil(nw.max(1)).max(1)).collect();

    let results: Vec<StripeResult<Complex<f32>>> = thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                s.spawn(move |_| {
                    let mut mxu = Mxu::new(MxuConfig::default());
                    let mut out = Vec::new();
                    for &i0 in chunk.iter() {
                        let mut stripe = Matrix::<Complex<f32>>::zeros(frag.m, n);
                        for j0 in (0..n).step_by(frag.n) {
                            let mut acc = c.tile(i0, j0, frag.m, frag.n);
                            for k0 in (0..k).step_by(frag.k) {
                                let at = a.tile(i0, k0, frag.m, frag.k);
                                let bt = b.tile(k0, j0, frag.k, frag.n);
                                acc = mxu.mma_fp32c(&at, &bt, &acc);
                            }
                            stripe.store_tile(0, j0, &acc);
                        }
                        out.push((i0, stripe));
                    }
                    (out, mxu.counters.for_mode(MxuMode::M3xuFp32c))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    for (stripes, stats) in results {
        total.merge(&stats);
        for (i0, stripe) in stripes {
            d.store_tile(i0, 0, &stripe);
        }
    }
    GemmResult { d, stats: total }
}

/// Convenience: `A·B` with a zero C.
pub fn matmul_f32(precision: GemmPrecision, a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    let c = Matrix::zeros(a.rows(), b.cols());
    gemm_f32(precision, a, b, &c).d
}

/// Convenience: complex `A·B` with a zero C.
pub fn cmatmul_c32(a: &Matrix<Complex<f32>>, b: &Matrix<Complex<f32>>) -> Matrix<Complex<f32>> {
    let c = Matrix::zeros(a.rows(), b.cols());
    cgemm_c32(a, b, &c).d
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3xu_fp::ulp::ErrorStats;

    /// Per-fragment exact-accumulation reference with the same K-chunking
    /// order as the driver (round once per fragment).
    fn fragment_reference(
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
        frag_k: usize,
    ) -> Matrix<f32> {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            let mut acc = c.get(i, j);
            for k0 in (0..a.cols()).step_by(frag_k) {
                let mut kul = m3xu_fp::Kulisch::new();
                kul.add_f64(acc as f64);
                for kk in k0..(k0 + frag_k).min(a.cols()) {
                    kul.add_product_f32(a.get(i, kk), b.get(kk, j));
                }
                acc = kul.to_f32();
            }
            acc
        })
    }

    #[test]
    fn m3xu_gemm_bit_exact_vs_fragment_reference() {
        let a = Matrix::<f32>::random(37, 19, 1); // awkward sizes: padding paths
        let b = Matrix::<f32>::random(19, 23, 2);
        let c = Matrix::<f32>::random(37, 23, 3);
        let r = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        let expect = fragment_reference(&a, &b, &c, 2);
        assert_eq!(r.d, expect);
    }

    #[test]
    fn m3xu_gemm_matches_simt_within_rounding() {
        let a = Matrix::<f32>::random(64, 64, 4);
        let b = Matrix::<f32>::random(64, 64, 5);
        let c = Matrix::<f32>::zeros(64, 64);
        let m3xu = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d;
        let gold = Matrix::reference_gemm_f64(&a, &b, &c);
        // One rounding per 2-wide fragment: the absolute error stays within
        // a few units of the dot product's own rounding scale. (Raw ULP
        // distance is meaningless near cancellation-induced zeros.)
        let scale = 64.0f32.sqrt() * f32::EPSILON; // ~||row|| * eps
        for (x, g) in m3xu.as_slice().iter().zip(gold.as_slice()) {
            assert!((x - g).abs() <= 8.0 * scale, "{x} vs {g}");
        }
        let stats = ErrorStats::compare_f32(m3xu.as_slice(), gold.as_slice());
        assert!(stats.mean_ulp < 16.0, "mean ulp = {}", stats.mean_ulp);
    }

    #[test]
    fn tf32_gemm_is_visibly_less_accurate() {
        let a = Matrix::<f32>::random(48, 48, 6);
        let b = Matrix::<f32>::random(48, 48, 7);
        let c = Matrix::<f32>::zeros(48, 48);
        let gold = Matrix::reference_gemm_f64(&a, &b, &c);
        let m3xu = ErrorStats::compare_f32(
            gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d.as_slice(),
            gold.as_slice(),
        );
        let tf32 = ErrorStats::compare_f32(
            gemm_f32(GemmPrecision::Tf32, &a, &b, &c).d.as_slice(),
            gold.as_slice(),
        );
        assert!(
            tf32.mean_ulp > 50.0 * (m3xu.mean_ulp + 1.0),
            "tf32 mean ulp {} vs m3xu {}",
            tf32.mean_ulp,
            m3xu.mean_ulp
        );
    }

    #[test]
    fn instruction_count_follows_rule_b() {
        // §V-B1(b): FP32 GEMM of the same shape issues 2x the MMA count of
        // ... in our model: (m/8)(n/8)(k/2) fragments, each a 2-step MMA.
        let a = Matrix::<f32>::random(16, 8, 8);
        let b = Matrix::<f32>::random(8, 16, 9);
        let c = Matrix::<f32>::zeros(16, 16);
        let r = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_eq!(r.stats.instructions, (16 / 8) * (16 / 8) * (8 / 2));
        assert_eq!(r.stats.steps, r.stats.instructions * 2);
    }

    #[test]
    fn cgemm_matches_f64_reference_closely() {
        let a = Matrix::random_c32(24, 16, 10);
        let b = Matrix::random_c32(16, 24, 11);
        let c = Matrix::random_c32(24, 24, 12);
        let r = cgemm_c32(&a, &b, &c);
        let gold = Matrix::reference_cgemm_f64(&a, &b, &c);
        for i in 0..24 {
            for j in 0..24 {
                let d = r.d.get(i, j);
                let g = gold.get(i, j);
                assert!((d.re - g.re).abs() <= 4.0 * f32::EPSILON * g.re.abs().max(1.0));
                assert!((d.im - g.im).abs() <= 4.0 * f32::EPSILON * g.im.abs().max(1.0));
            }
        }
    }

    #[test]
    fn cgemm_identity_roundtrip() {
        let a = Matrix::random_c32(16, 16, 13);
        let i = Matrix::identity_c32(16);
        let d = cmatmul_c32(&a, &i);
        assert_eq!(d, a);
    }

    #[test]
    fn gemm_identity_roundtrip() {
        let a = Matrix::<f32>::random(32, 32, 14);
        let i = Matrix::<f32>::identity(32);
        assert_eq!(matmul_f32(GemmPrecision::M3xuFp32, &a, &i), a);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Determinism across thread counts: tiles are independent, so the
        // result cannot depend on scheduling.
        let a = Matrix::<f32>::random(96, 40, 15);
        let b = Matrix::<f32>::random(40, 72, 16);
        let c = Matrix::<f32>::random(96, 72, 17);
        let r1 = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d;
        let r2 = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d;
        assert_eq!(r1, r2);
    }

    #[test]
    fn empty_k_returns_c() {
        let a = Matrix::<f32>::zeros(8, 0);
        let b = Matrix::<f32>::zeros(0, 8);
        let c = Matrix::<f32>::random(8, 8, 18);
        let r = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_eq!(r.d, c);
    }
}
