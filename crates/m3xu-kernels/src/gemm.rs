//! Tiled GEMM driver over the functional M3XU.
//!
//! A CUTLASS-style hierarchical GEMM: the output splits into fragment
//! tiles, each tile's `K` loop issues fragment-shaped MMA executions, and
//! the epilogue writes back. Real and complex precisions share one generic
//! driver — exactly the paper's point that "the programming model …
//! remain\[s\] the same as the existing Tensor Cores".
//!
//! ## The packed fragment pipeline
//!
//! The driver decodes both operands into [`PackedOperand`] buffer-entry
//! planes **once per GEMM**, then executes every fragment in place out of
//! those planes ([`m3xu_mxu::packed`]): no tile copies, no per-fragment
//! `StepPlan` allocation, no re-decoding of `A` per column tile. Work
//! distributes over the 2-D output-tile grid through the persistent
//! [`WorkerPool`] (built once per process — the FFT issues thousands of
//! small CGEMMs, where per-call thread spawn used to dominate). Results
//! are bit-identical to the original per-tile path, kept alive in
//! [`baseline`] as the differential-test and benchmark reference.

use crate::blocking::KPlan;
use crate::context::{self, GemmSample, M3xuContext};
use crate::pool::WorkerPool;
use m3xu_fp::complex::Complex;
use m3xu_mxu::abft::{self, Checksum};
use m3xu_mxu::dpu::DotProductUnit;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::fault::{FaultPlan, FaultSummary, MmaFault, TaskFault};
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::{MmaShape, MmaStats};
use m3xu_mxu::modes::MxuMode;
use m3xu_mxu::packed::{fragment_stats, PackedOperand, PackedStorage};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Fixed per-tile accumulator scratch the packed driver provisions (one
/// full fragment, `frag.m * frag.n` elements). Validated against each
/// mode's fragment shape at entry so a future shape cannot silently
/// truncate a tile or panic mid-epoch inside a pooled task.
pub(crate) const ACC_SCRATCH: usize = 64;

/// Validate the `D = A·B + C` operand shapes shared by every driver.
fn validate_gemm_shapes<E>(a: &Matrix<E>, b: &Matrix<E>, c: &Matrix<E>) -> Result<(), M3xuError> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if b.rows() != k {
        return Err(M3xuError::ShapeMismatch {
            context: "gemm(B): inner dimensions must agree",
            expected: (k, n),
            got: (b.rows(), n),
        });
    }
    if (c.rows(), c.cols()) != (m, n) {
        return Err(M3xuError::ShapeMismatch {
            context: "gemm(C): C must be m x n",
            expected: (m, n),
            got: (c.rows(), c.cols()),
        });
    }
    Ok(())
}

/// Which GEMM engine/precision the driver runs — the serve API's
/// per-request **precision dial**, from the fastest lossy narrow modes up
/// to emulated FP64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmPrecision {
    /// M3XU true FP32 (bit-exact, 2-step MMAs).
    M3xuFp32,
    /// M3XU fast FP32: the truncated 3-term slice schedule (drops the
    /// lo·lo cross term, 3xTF32-style). Same 2-step issue shape as
    /// [`GemmPrecision::M3xuFp32`] with 25% fewer lane products; the
    /// result is no longer the exactly-rounded dot product.
    Fp32Fast,
    /// Emulated FP64: `f64` operands sliced into five ≤12-bit mantissa
    /// slices, all 25 cross products accumulated exactly, rounded to
    /// `f64` once per fragment chunk. Runs on [`try_gemm_f64`]-family
    /// entry points (the operands are `Matrix<f64>`).
    Fp64Emulated,
    /// TF32 Tensor-Core mode (precision-lossy baseline).
    Tf32,
    /// FP16 inputs (values quantised at the buffers).
    Fp16,
    /// BF16 inputs.
    Bf16,
}

impl GemmPrecision {
    /// Every precision the dial exposes, fastest-narrow to widest.
    pub const ALL: [GemmPrecision; 6] = [
        GemmPrecision::Fp16,
        GemmPrecision::Bf16,
        GemmPrecision::Tf32,
        GemmPrecision::Fp32Fast,
        GemmPrecision::M3xuFp32,
        GemmPrecision::Fp64Emulated,
    ];

    /// The [`MxuMode`] this engine executes in — the key into per-mode
    /// [`ExecStats`](crate::context::ExecStats) counters and the element
    /// width behind the rule-(c) operand-traffic formula.
    pub fn mode(self) -> MxuMode {
        match self {
            GemmPrecision::M3xuFp32 => MxuMode::M3xuFp32,
            GemmPrecision::Fp32Fast => MxuMode::M3xuFp32Fast,
            GemmPrecision::Fp64Emulated => MxuMode::M3xuFp64Emu,
            GemmPrecision::Tf32 => MxuMode::Tf32,
            GemmPrecision::Fp16 => MxuMode::Fp16,
            GemmPrecision::Bf16 => MxuMode::Bf16,
        }
    }

    /// True for the precisions the `f32` GEMM entry points accept; only
    /// [`GemmPrecision::Fp64Emulated`] takes `Matrix<f64>` operands.
    pub fn is_f32(self) -> bool {
        !matches!(self, GemmPrecision::Fp64Emulated)
    }
}

/// Reject an `f32` entry point called with the FP64 precision (or vice
/// versa) with a typed error instead of a packing panic.
pub(crate) fn check_precision(
    precision: GemmPrecision,
    want_f32: bool,
    context: &'static str,
) -> Result<(), M3xuError> {
    if precision.is_f32() != want_f32 {
        return Err(M3xuError::ModeMismatch {
            context,
            got: precision.mode(),
        });
    }
    Ok(())
}

/// Result of a tiled GEMM: the output matrix plus MMA statistics.
#[derive(Debug, Clone)]
pub struct GemmResult<T> {
    /// `D = A·B + C`.
    pub d: Matrix<T>,
    /// Aggregated MMA statistics across all tiles and threads.
    pub stats: MmaStats,
}

/// Number of worker threads the drivers use: `M3XU_THREADS` when set,
/// otherwise the machine's available parallelism — resolved exactly once,
/// at the default context's construction (see
/// [`context::default_context`]).
pub fn workers() -> usize {
    context::default_context().threads()
}

/// An element type the generic packed driver can multiply.
pub trait PackedElem: Copy + Default + Send + Sync + 'static {
    /// Bytes per reduction element in the packed value plane (`B` side) —
    /// what the cache-blocking plan sizes its panels around.
    const VAL_BYTES: usize;
    /// Decode the `A` operand (by rows) for `mode`, reusing `storage`'s
    /// capacity (pass a default [`PackedStorage`] when no arena is
    /// available).
    fn pack_a(a: &Matrix<Self>, mode: MxuMode, storage: PackedStorage) -> PackedOperand;
    /// Decode the `B` operand (by columns) for `mode`, reusing `storage`.
    fn pack_b(b: &Matrix<Self>, mode: MxuMode, storage: PackedStorage) -> PackedOperand;
    /// Execute one fragment in place on `acc` (row-major `rows x cols`).
    #[allow(clippy::too_many_arguments)]
    fn execute(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [Self],
    );
    /// Execute a whole `[k0, kend)` reduction panel on one tile, chunked
    /// at `frag_k` — bit-identical to looping [`PackedElem::execute`]
    /// over the same chunks, but eligible for the SIMD row pipeline.
    #[allow(clippy::too_many_arguments)]
    fn execute_panel(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [Self],
    );
}

impl PackedElem for f32 {
    const VAL_BYTES: usize = std::mem::size_of::<f32>();
    fn pack_a(a: &Matrix<f32>, mode: MxuMode, storage: PackedStorage) -> PackedOperand {
        PackedOperand::try_pack_rows_f32_in(a, mode, storage).unwrap_or_else(|e| panic!("{e}"))
    }
    fn pack_b(b: &Matrix<f32>, mode: MxuMode, storage: PackedStorage) -> PackedOperand {
        PackedOperand::try_pack_cols_f32_in(b, mode, storage).unwrap_or_else(|e| panic!("{e}"))
    }
    fn execute(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [f32],
    ) {
        dpu.mma_f32_into(a, b, r0, rows, c0, cols, k0, klen, acc);
    }
    fn execute_panel(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [f32],
    ) {
        dpu.mma_f32_panel_into(a, b, r0, rows, c0, cols, k0, kend, frag_k, acc);
    }
}

impl PackedElem for Complex<f32> {
    const VAL_BYTES: usize = std::mem::size_of::<Complex<f32>>();
    fn pack_a(a: &Matrix<Complex<f32>>, _mode: MxuMode, storage: PackedStorage) -> PackedOperand {
        PackedOperand::pack_rows_c32_in(a, storage)
    }
    fn pack_b(b: &Matrix<Complex<f32>>, _mode: MxuMode, storage: PackedStorage) -> PackedOperand {
        PackedOperand::pack_cols_c32_in(b, storage)
    }
    fn execute(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [Complex<f32>],
    ) {
        dpu.mma_c32_into(a, b, r0, rows, c0, cols, k0, klen, acc);
    }
    fn execute_panel(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [Complex<f32>],
    ) {
        dpu.mma_c32_panel_into(a, b, r0, rows, c0, cols, k0, kend, frag_k, acc);
    }
}

impl PackedElem for f64 {
    const VAL_BYTES: usize = std::mem::size_of::<f64>();
    fn pack_a(a: &Matrix<f64>, mode: MxuMode, storage: PackedStorage) -> PackedOperand {
        PackedOperand::try_pack_rows_f64_in(a, mode, storage).unwrap_or_else(|e| panic!("{e}"))
    }
    fn pack_b(b: &Matrix<f64>, mode: MxuMode, storage: PackedStorage) -> PackedOperand {
        PackedOperand::try_pack_cols_f64_in(b, mode, storage).unwrap_or_else(|e| panic!("{e}"))
    }
    fn execute(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [f64],
    ) {
        dpu.mma_f64_into(a, b, r0, rows, c0, cols, k0, klen, acc);
    }
    fn execute_panel(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [f64],
    ) {
        dpu.mma_f64_panel_into(a, b, r0, rows, c0, cols, k0, kend, frag_k, acc);
    }
}

/// A raw output pointer the tile tasks write through. Tiles are disjoint
/// regions of the output, so concurrent writes never alias.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare raw pointer.
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

thread_local! {
    /// One dot-product unit per thread, reused across every fragment of
    /// every GEMM — its wide Kulisch registers never hit the allocator on
    /// the hot path.
    pub(crate) static DPU: RefCell<DotProductUnit> = RefCell::new(DotProductUnit::new());
}

/// The generic packed GEMM driver: `D = A·B + C` in `mode` on `pool`.
///
/// When a context is attached, the packed operands borrow its scratch
/// arena and the call's accounting (fragment grid, operand traffic,
/// per-phase wall time) is recorded into its counter sink.
fn try_gemm_packed<E: PackedElem>(
    pool: &WorkerPool,
    mode: MxuMode,
    a: &Matrix<E>,
    b: &Matrix<E>,
    c: &Matrix<E>,
    ctx: Option<&M3xuContext>,
) -> Result<GemmResult<E>, M3xuError> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    validate_gemm_shapes(a, b, c)?;

    let frag = MmaShape::BASELINE_FP16.for_mode(mode);
    if frag.m * frag.n > ACC_SCRATCH {
        // The per-tile accumulator is a fixed stack array; a fragment
        // shape that outgrows it must be rejected up front, not trusted
        // to a slice-bounds panic inside a pooled task.
        return Err(M3xuError::FragmentOverflow {
            needed: frag.m * frag.n,
            capacity: ACC_SCRATCH,
        });
    }
    let (tiles_m, tiles_n, k_chunks) = frag.grid(m, n, k);
    let mut d = c.clone();
    if k_chunks == 0 || m == 0 || n == 0 {
        if let Some(cx) = ctx {
            // A degenerate call still counts as a call; it moves no
            // operand bytes and issues no fragments.
            cx.counters().record(&GemmSample {
                mode,
                stats: MmaStats::default(),
                tiles: 0,
                fragments: 0,
                operand_bytes: 0,
                pack_ns: 0,
                exec_ns: 0,
            });
        }
        return Ok(GemmResult {
            d,
            stats: MmaStats::default(),
        });
    }

    // Decode each operand exactly once for the whole GEMM — entry planes
    // *and* the f32 value mirrors the SIMD row kernels read — reusing the
    // context's packed-operand arena when one is attached. Packing `B`
    // here hoists it out of every epoch and tile below.
    let (sa, sb) = match ctx {
        Some(cx) => cx.take_scratch(),
        None => (PackedStorage::default(), PackedStorage::default()),
    };
    let t_pack = Instant::now();
    let pa = E::pack_a(a, mode, sa);
    let pb = E::pack_b(b, mode, sb);
    let pack_ns = t_pack.elapsed().as_nanos() as u64;

    let plan = KPlan::new(frag.k, k, n, E::VAL_BYTES);
    let dptr = SendPtr(d.as_mut_slice().as_mut_ptr());
    let t_exec = Instant::now();
    // L2 epochs: one pool dispatch per `kc2`-deep reduction slice, so the
    // whole tile grid consumes one L2-resident band of `B`'s planes
    // before the next band is touched. Epoch boundaries are fragment
    // boundaries, so each tile's chunk sequence is identical to the
    // unblocked loop; tiles re-read their partial sums from `D` between
    // epochs.
    let mut ke0 = 0usize;
    while ke0 < k {
        let ke1 = (ke0 + plan.kc2).min(k);
        let first = ke0 == 0;
        pool.run(tiles_m * tiles_n, |tid| {
            let (i0, j0) = ((tid / tiles_n) * frag.m, (tid % tiles_n) * frag.n);
            let rows = frag.m.min(m - i0);
            let cols = frag.n.min(n - j0);
            let mut acc = [E::default(); ACC_SCRATCH]; // >= frag.m * frag.n, checked at entry
            let acc = &mut acc[..rows * cols];
            if first {
                c.view(i0, j0, rows, cols).copy_into(acc);
            } else {
                for (i, row) in acc.chunks_exact_mut(cols).enumerate() {
                    // SAFETY: this tile owns rows i0..i0+rows, cols
                    // j0..j0+cols of the output, epochs run sequentially,
                    // and the pointer outlives the pool run — the reads
                    // see exactly what the previous epoch's store wrote.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            dptr.get().add((i0 + i) * n + j0) as *const E,
                            row.as_mut_ptr(),
                            cols,
                        );
                    }
                }
            }
            DPU.with(|dpu| {
                let mut dpu = dpu.borrow_mut();
                // L1 panels inside the epoch: each keeps one 8-column
                // slice of `B` resident across the tile's output rows.
                let mut kb = ke0;
                while kb < ke1 {
                    let kbend = (kb + plan.kc1).min(ke1);
                    E::execute_panel(
                        &mut dpu, &pa, &pb, i0, rows, j0, cols, kb, kbend, frag.k, acc,
                    );
                    kb = kbend;
                }
            });
            // Epilogue: disjoint predicated stores straight into D.
            for (i, row) in acc.chunks_exact(cols).enumerate() {
                // SAFETY: as above — this tile's disjoint output region.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        row.as_ptr(),
                        dptr.get().add((i0 + i) * n + j0),
                        cols,
                    );
                }
            }
        });
        ke0 = ke1;
    }
    let exec_ns = t_exec.elapsed().as_nanos() as u64;

    // Statistics are a pure function of the fragment grid — identical to
    // what per-fragment counters would sum to, without any atomics.
    let frags = (tiles_m * tiles_n * k_chunks) as u64;
    let stats = fragment_stats(mode, frag).scaled(frags);
    if let Some(cx) = ctx {
        cx.counters().record(&GemmSample {
            mode,
            stats,
            tiles: (tiles_m * tiles_n) as u64,
            fragments: frags,
            // Rule (c) operand traffic: each operand element moves at the
            // mode's storage width (2 bytes FP16/BF16, 4 bytes TF32/FP32,
            // 8 bytes FP32C), not at `size_of::<E>()`.
            operand_bytes: ((m * k + k * n) * mode.element_bytes()) as u64,
            pack_ns,
            exec_ns,
        });
        cx.put_scratch(pa.into_storage(), pb.into_storage());
    }
    Ok(GemmResult { d, stats })
}

/// Executions the checked driver grants one k-chunk before declaring its
/// tile unrecoverable. Sites include the attempt number, so a fault plan
/// with rate < 1 usually clears within a retry or two (the residual
/// failure probability is `rate^4` per chunk); a plan with rate 1.0
/// exhausts them and exercises the error path.
pub(crate) const MAX_TILE_ATTEMPTS: u64 = 4;

/// Pool-epoch re-submissions the checked driver performs when an injected
/// task panic (or an abruptly-killed worker) loses a whole epoch.
pub(crate) const MAX_EPOCH_ATTEMPTS: u64 = 4;

/// An element type the ABFT-checked driver can verify: [`PackedElem`]
/// plus the per-k-chunk checksum pair — the *expected* side from the
/// operands and seeds, the *computed* side from the checked MMA's
/// accumulator state (see [`m3xu_mxu::abft`]).
pub(crate) trait AbftElem: PackedElem {
    /// Expected checksum of one k-chunk, from the tile's **packed**
    /// operand bands and its pre-chunk accumulator (`seeds`, row-major
    /// `rows × cols`). Reading the packed planes (not the source
    /// matrices) is what makes every precision checkable: quantisation,
    /// alpha folding, and op views all happen at pack time, so the
    /// expected side predicts exactly what the MMA multiplies.
    #[allow(clippy::too_many_arguments)]
    fn expected_chunk(
        a: &PackedOperand,
        b: &PackedOperand,
        seeds: &[Self],
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
    ) -> Checksum;

    /// Execute one fragment like [`PackedElem::execute`], additionally
    /// reporting the computed checksum and (optionally) corrupting one
    /// product on the way out of the datapath.
    #[allow(clippy::too_many_arguments)]
    fn execute_checked(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [Self],
        fault: Option<&MmaFault>,
    ) -> Checksum;
}

impl AbftElem for f32 {
    fn expected_chunk(
        a: &PackedOperand,
        b: &PackedOperand,
        seeds: &[f32],
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
    ) -> Checksum {
        abft::expected_chunk_packed_f32(a, b, seeds, r0, rows, c0, cols, k0, kend)
    }

    fn execute_checked(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [f32],
        fault: Option<&MmaFault>,
    ) -> Checksum {
        dpu.mma_f32_checked_into(a, b, r0, rows, c0, cols, k0, klen, acc, fault)
    }
}

impl AbftElem for Complex<f32> {
    fn expected_chunk(
        a: &PackedOperand,
        b: &PackedOperand,
        seeds: &[Complex<f32>],
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
    ) -> Checksum {
        abft::expected_chunk_packed_c32(a, b, seeds, r0, rows, c0, cols, k0, kend)
    }

    fn execute_checked(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [Complex<f32>],
        fault: Option<&MmaFault>,
    ) -> Checksum {
        dpu.mma_c32_checked_into(a, b, r0, rows, c0, cols, k0, klen, acc, fault)
    }
}

impl AbftElem for f64 {
    fn expected_chunk(
        a: &PackedOperand,
        b: &PackedOperand,
        seeds: &[f64],
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
    ) -> Checksum {
        abft::expected_chunk_packed_f64(a, b, seeds, r0, rows, c0, cols, k0, kend)
    }

    fn execute_checked(
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [f64],
        fault: Option<&MmaFault>,
    ) -> Checksum {
        dpu.mma_f64_checked_into(a, b, r0, rows, c0, cols, k0, klen, acc, fault)
    }
}

/// The ABFT-checked, self-healing GEMM driver: the packed pipeline with a
/// per-k-chunk checksum verification wrapped around every fragment, plus
/// the fault-injection hooks of `plan`.
///
/// Recovery is hierarchical, mirroring the blast radius of each fault
/// class:
///
/// * a **checksum mismatch** restores the chunk's seeds and re-executes
///   only the corrupted k-chunk (each attempt is a fresh fault site, so
///   injected corruption usually clears) — up to [`MAX_TILE_ATTEMPTS`]
///   executions per chunk;
/// * a **lost pool epoch** (injected task panic, killed worker) is caught
///   with `catch_unwind` and the whole tile grid re-submitted — tiles are
///   idempotent, every rerun rewrites the same disjoint output regions —
///   up to [`MAX_EPOCH_ATTEMPTS`];
/// * anything that survives both loops surfaces as
///   [`M3xuError::FaultDetected`] carrying the telemetry counts. The
///   driver never panics and never returns silently-corrupt data the
///   checksums can see.
///
/// On success the recorded [`GemmSample`] is the *production* sample — a
/// pure function of the fragment grid, not inflated by retries — so
/// instruction-count cross-validation holds unchanged; verification work
/// and re-executions are reported in the [`FaultSummary`] and the
/// context's fault counters instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_gemm_abft<E: AbftElem>(
    pool: &WorkerPool,
    op: &'static str,
    mode: MxuMode,
    a: &Matrix<E>,
    b: &Matrix<E>,
    c: &Matrix<E>,
    ctx: Option<&M3xuContext>,
    plan: &FaultPlan,
) -> Result<(GemmResult<E>, FaultSummary), M3xuError> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    validate_gemm_shapes(a, b, c)?;

    let frag = MmaShape::BASELINE_FP16.for_mode(mode);
    if frag.m * frag.n > ACC_SCRATCH {
        return Err(M3xuError::FragmentOverflow {
            needed: frag.m * frag.n,
            capacity: ACC_SCRATCH,
        });
    }
    let (tiles_m, tiles_n, k_chunks) = frag.grid(m, n, k);
    let mut d = c.clone();
    if k_chunks == 0 || m == 0 || n == 0 {
        if let Some(cx) = ctx {
            cx.counters().record(&GemmSample {
                mode,
                stats: MmaStats::default(),
                tiles: 0,
                fragments: 0,
                operand_bytes: 0,
                pack_ns: 0,
                exec_ns: 0,
            });
        }
        return Ok((
            GemmResult {
                d,
                stats: MmaStats::default(),
            },
            FaultSummary::default(),
        ));
    }

    let (sa, sb) = match ctx {
        Some(cx) => cx.take_scratch(),
        None => (PackedStorage::default(), PackedStorage::default()),
    };
    let t_pack = Instant::now();
    let pa = E::pack_a(a, mode, sa);
    let pb = E::pack_b(b, mode, sb);
    let pack_ns = t_pack.elapsed().as_nanos() as u64;

    // One salt per driver invocation: a serve-layer retry of this whole
    // call draws an independent fault schedule.
    let salt = plan.next_call();

    // Cumulative telemetry across every epoch attempt.
    let detected = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    // Per-epoch outcome: tiles that exhausted their attempts, and the
    // mismatches those tiles could not repair. Reset before each epoch —
    // a lost epoch's failures get fresh attempts on the rerun, so only
    // the final epoch's failures count as uncorrected.
    let failed_tiles = AtomicU64::new(0);
    let epoch_uncorrected = AtomicU64::new(0);

    let dptr = SendPtr(d.as_mut_slice().as_mut_ptr());
    let t_exec = Instant::now();
    let mut epoch_ok = false;
    for epoch_attempt in 0..MAX_EPOCH_ATTEMPTS {
        failed_tiles.store(0, Ordering::Relaxed);
        epoch_uncorrected.store(0, Ordering::Relaxed);
        let task = |tid: usize| {
            match plan.task_fault(salt, epoch_attempt, tid as u64) {
                Some(TaskFault::Stall { millis }) => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                Some(TaskFault::Panic) => {
                    panic!("m3xu fault injection: task panic (tile {tid})");
                }
                None => {}
            }
            let (i0, j0) = ((tid / tiles_n) * frag.m, (tid % tiles_n) * frag.n);
            let rows = frag.m.min(m - i0);
            let cols = frag.n.min(n - j0);
            let mut acc = [E::default(); ACC_SCRATCH]; // >= frag.m * frag.n, checked at entry
            let acc = &mut acc[..rows * cols];
            // Snapshot of the accumulator at each chunk's entry: restoring
            // it makes a chunk re-execution exactly idempotent, so a
            // mismatch re-runs only the corrupted chunk, never the tile's
            // whole K loop.
            let mut seeds = [E::default(); ACC_SCRATCH];
            let seeds = &mut seeds[..rows * cols];
            c.view(i0, j0, rows, cols).copy_into(acc);
            let mut tile_detected = 0u64;
            let mut tile_retries = 0u64;
            let mut tile_uncorrected = 0u64;
            let mut tile_failed = false;
            DPU.with(|dpu| {
                let mut dpu = dpu.borrow_mut();
                for (ci, k0) in (0..k).step_by(frag.k).enumerate() {
                    let kend = (k0 + frag.k).min(k);
                    seeds.copy_from_slice(acc);
                    // The expected side reads the chunk's seeds once; the
                    // retries below restore them bit-exactly.
                    let expected = E::expected_chunk(&pa, &pb, seeds, i0, rows, j0, cols, k0, kend);
                    let mut chunk_fails = 0u64;
                    let mut chunk_ok = false;
                    for attempt in 0..MAX_TILE_ATTEMPTS {
                        if attempt > 0 {
                            acc.copy_from_slice(seeds);
                        }
                        // Specials bypass the multiplier array: an
                        // unverifiable chunk is not a fault target.
                        let fault = if expected.ok {
                            plan.mma_fault(salt, epoch_attempt, tid as u64, ci as u64, attempt)
                        } else {
                            None
                        };
                        let computed = E::execute_checked(
                            &mut dpu,
                            &pa,
                            &pb,
                            i0,
                            rows,
                            j0,
                            cols,
                            k0,
                            frag.k,
                            acc,
                            fault.as_ref(),
                        );
                        if expected.matches(&computed) {
                            chunk_ok = true;
                            break;
                        }
                        chunk_fails += 1;
                    }
                    tile_detected += chunk_fails;
                    if chunk_ok {
                        // Every detection triggered one repairing rerun.
                        tile_retries += chunk_fails;
                    } else {
                        tile_retries += chunk_fails.saturating_sub(1);
                        tile_uncorrected += chunk_fails;
                        tile_failed = true;
                        break;
                    }
                }
            });
            detected.fetch_add(tile_detected, Ordering::Relaxed);
            retries.fetch_add(tile_retries, Ordering::Relaxed);
            if tile_failed {
                epoch_uncorrected.fetch_add(tile_uncorrected, Ordering::Relaxed);
                failed_tiles.fetch_add(1, Ordering::Relaxed);
            } else {
                for (i, row) in acc.chunks_exact(cols).enumerate() {
                    // SAFETY: this tile owns rows i0..i0+rows, cols
                    // j0..j0+cols of the output; no other task touches
                    // them, the pointer outlives the pool run, and epoch
                    // reruns rewrite the same bytes.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            row.as_ptr(),
                            dptr.get().add((i0 + i) * n + j0),
                            cols,
                        );
                    }
                }
            }
        };
        // An injected task panic (or a worker killed mid-epoch) surfaces
        // as a panic out of `run` once the epoch has drained; catch it
        // and re-submit rather than unwinding through the caller.
        match catch_unwind(AssertUnwindSafe(|| pool.run(tiles_m * tiles_n, task))) {
            Ok(()) => {
                epoch_ok = true;
                break;
            }
            Err(_) => {
                detected.fetch_add(1, Ordering::Relaxed);
                if epoch_attempt + 1 < MAX_EPOCH_ATTEMPTS {
                    retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    let exec_ns = t_exec.elapsed().as_nanos() as u64;

    let detected = detected.load(Ordering::Relaxed);
    let retries = retries.load(Ordering::Relaxed);
    let (failed, uncorrected) = if epoch_ok {
        (
            failed_tiles.load(Ordering::Relaxed),
            epoch_uncorrected.load(Ordering::Relaxed),
        )
    } else {
        // Epochs exhausted: the whole grid is suspect, and the final
        // lost epoch is the one detection nothing repaired.
        ((tiles_m * tiles_n) as u64, 1)
    };
    let summary = FaultSummary {
        detected,
        corrected: detected - uncorrected,
        retries,
    };

    if let Some(cx) = ctx {
        cx.counters().record_faults(&summary);
    }
    if failed > 0 {
        if let Some(cx) = ctx {
            cx.put_scratch(pa.into_storage(), pb.into_storage());
        }
        return Err(M3xuError::FaultDetected {
            op,
            mode,
            tiles: failed as usize,
            detected,
            corrected: summary.corrected,
            retries,
        });
    }

    // The production sample: a pure function of the fragment grid,
    // bit-identical accounting to the unchecked driver.
    let frags = (tiles_m * tiles_n * k_chunks) as u64;
    let stats = fragment_stats(mode, frag).scaled(frags);
    if let Some(cx) = ctx {
        cx.counters().record(&GemmSample {
            mode,
            stats,
            tiles: (tiles_m * tiles_n) as u64,
            fragments: frags,
            operand_bytes: ((m * k + k * n) * mode.element_bytes()) as u64,
            pack_ns,
            exec_ns,
        });
        cx.put_scratch(pa.into_storage(), pb.into_storage());
    }
    Ok((GemmResult { d, stats }, summary))
}

/// Context-attached real GEMM: the body of
/// [`M3xuContext::try_gemm_f32`](crate::context::M3xuContext::try_gemm_f32).
/// An armed fault plan routes **every** f32 precision through the
/// ABFT-checked self-healing driver: the expected checksums read the
/// packed buffer entries, so quantising narrow engines (FP16/BF16/TF32)
/// and the truncated fast schedule verify exactly alongside true FP32.
pub(crate) fn try_gemm_f32_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    try_gemm_f32_faulted_ctx(ctx, precision, a, b, c).map(|(r, _)| r)
}

/// Context-attached FP32C GEMM: the body of
/// [`M3xuContext::try_cgemm_c32`](crate::context::M3xuContext::try_cgemm_c32).
pub(crate) fn try_cgemm_c32_ctx(
    ctx: &M3xuContext,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    try_cgemm_c32_faulted_ctx(ctx, a, b, c).map(|(r, _)| r)
}

/// [`try_gemm_f32_ctx`] with the invocation's [`FaultSummary`].
pub(crate) fn try_gemm_f32_faulted_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
) -> Result<(GemmResult<f32>, FaultSummary), M3xuError> {
    check_precision(precision, true, "gemm_f32")?;
    match ctx.fault_plan() {
        Some(plan) => try_gemm_abft(
            ctx.pool(),
            "gemm",
            precision.mode(),
            a,
            b,
            c,
            Some(ctx),
            plan,
        ),
        None => try_gemm_packed(ctx.pool(), precision.mode(), a, b, c, Some(ctx))
            .map(|r| (r, FaultSummary::default())),
    }
}

/// Context-attached emulated-FP64 GEMM: the body of
/// [`M3xuContext::try_gemm_f64`](crate::context::M3xuContext::try_gemm_f64).
/// An armed fault plan reroutes through the checked driver: the residue
/// homomorphism extends to every f64 dyadic rational, and the expected
/// side reads the five packed mantissa slices directly.
pub(crate) fn try_gemm_f64_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &Matrix<f64>,
) -> Result<GemmResult<f64>, M3xuError> {
    try_gemm_f64_faulted_ctx(ctx, precision, a, b, c).map(|(r, _)| r)
}

/// [`try_gemm_f64_ctx`] with the invocation's [`FaultSummary`].
pub(crate) fn try_gemm_f64_faulted_ctx(
    ctx: &M3xuContext,
    precision: GemmPrecision,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &Matrix<f64>,
) -> Result<(GemmResult<f64>, FaultSummary), M3xuError> {
    check_precision(precision, false, "gemm_f64")?;
    match ctx.fault_plan() {
        Some(plan) => try_gemm_abft(
            ctx.pool(),
            "gemm_f64",
            precision.mode(),
            a,
            b,
            c,
            Some(ctx),
            plan,
        ),
        None => try_gemm_packed(ctx.pool(), precision.mode(), a, b, c, Some(ctx))
            .map(|r| (r, FaultSummary::default())),
    }
}

/// [`try_cgemm_c32_ctx`] with the invocation's [`FaultSummary`].
pub(crate) fn try_cgemm_c32_faulted_ctx(
    ctx: &M3xuContext,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &Matrix<Complex<f32>>,
) -> Result<(GemmResult<Complex<f32>>, FaultSummary), M3xuError> {
    match ctx.fault_plan() {
        Some(plan) => try_gemm_abft(
            ctx.pool(),
            "cgemm",
            MxuMode::M3xuFp32c,
            a,
            b,
            c,
            Some(ctx),
            plan,
        ),
        None => try_gemm_packed(ctx.pool(), MxuMode::M3xuFp32c, a, b, c, Some(ctx))
            .map(|r| (r, FaultSummary::default())),
    }
}

/// Fallible tiled FP32 GEMM `D = A·B + C` on an explicit worker pool —
/// the entry point for determinism tests and embedders that manage their
/// own pools. Returns [`M3xuError::ShapeMismatch`] on inconsistent
/// operands instead of panicking.
pub fn try_gemm_f32_on(
    pool: &WorkerPool,
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    check_precision(precision, true, "gemm_f32")?;
    try_gemm_packed(pool, precision.mode(), a, b, c, None)
}

/// Tiled FP32 GEMM `D = A·B + C` on the M3XU (or a baseline mode), using
/// an explicit worker pool. Panics on shape mismatch; see
/// [`try_gemm_f32_on`] for the fallible form.
pub fn gemm_f32_on(
    pool: &WorkerPool,
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
) -> GemmResult<f32> {
    try_gemm_f32_on(pool, precision, a, b, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible tiled FP32 GEMM `D = A·B + C` on the process-wide default
/// context (the call is recorded into its
/// [`ExecStats`](crate::context::ExecStats) counters).
///
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`. Any sizes are accepted;
/// edges are zero-padded into fragments exactly like predicated loads.
pub fn try_gemm_f32(
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
) -> Result<GemmResult<f32>, M3xuError> {
    context::default_context().try_gemm_f32(precision, a, b, c)
}

/// Tiled FP32 GEMM `D = A·B + C` on the M3XU (or a baseline mode).
///
/// Panics on shape mismatch; see [`try_gemm_f32`] for the fallible form.
pub fn gemm_f32(
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
) -> GemmResult<f32> {
    try_gemm_f32(precision, a, b, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible tiled FP32C GEMM on the M3XU's four-step complex mode, using
/// an explicit worker pool.
pub fn try_cgemm_c32_on(
    pool: &WorkerPool,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    try_gemm_packed(pool, MxuMode::M3xuFp32c, a, b, c, None)
}

/// Tiled FP32C GEMM on the M3XU's four-step complex mode, using an
/// explicit worker pool. Panics on shape mismatch; see
/// [`try_cgemm_c32_on`] for the fallible form.
pub fn cgemm_c32_on(
    pool: &WorkerPool,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &Matrix<Complex<f32>>,
) -> GemmResult<Complex<f32>> {
    try_cgemm_c32_on(pool, a, b, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible tiled FP32C GEMM on the process-wide default context (the
/// call is recorded into its counters).
pub fn try_cgemm_c32(
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &Matrix<Complex<f32>>,
) -> Result<GemmResult<Complex<f32>>, M3xuError> {
    context::default_context().try_cgemm_c32(a, b, c)
}

/// Tiled FP32C GEMM on the M3XU's four-step complex mode.
///
/// Panics on shape mismatch; see [`try_cgemm_c32`] for the fallible form.
pub fn cgemm_c32(
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &Matrix<Complex<f32>>,
) -> GemmResult<Complex<f32>> {
    try_cgemm_c32(a, b, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible convenience: `A·B` with a zero C.
pub fn try_matmul_f32(
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
) -> Result<Matrix<f32>, M3xuError> {
    let c = Matrix::zeros(a.rows(), b.cols());
    Ok(try_gemm_f32(precision, a, b, &c)?.d)
}

/// Convenience: `A·B` with a zero C. Panics on shape mismatch; see
/// [`try_matmul_f32`] for the fallible form.
pub fn matmul_f32(precision: GemmPrecision, a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    try_matmul_f32(precision, a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible tiled emulated-FP64 GEMM `D = A·B + C` on an explicit worker
/// pool. Only [`GemmPrecision::Fp64Emulated`] is accepted — every other
/// precision returns [`M3xuError::ModeMismatch`] (the `f64` operands have
/// no decode path on the f32 engines).
pub fn try_gemm_f64_on(
    pool: &WorkerPool,
    precision: GemmPrecision,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &Matrix<f64>,
) -> Result<GemmResult<f64>, M3xuError> {
    check_precision(precision, false, "gemm_f64")?;
    try_gemm_packed(pool, precision.mode(), a, b, c, None)
}

/// Tiled emulated-FP64 GEMM `D = A·B + C` using an explicit worker pool.
/// Panics on shape or precision mismatch; see [`try_gemm_f64_on`] for the
/// fallible form.
pub fn gemm_f64_on(
    pool: &WorkerPool,
    precision: GemmPrecision,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &Matrix<f64>,
) -> GemmResult<f64> {
    try_gemm_f64_on(pool, precision, a, b, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible tiled emulated-FP64 GEMM `D = A·B + C` on the process-wide
/// default context (the call is recorded into its
/// [`ExecStats`](crate::context::ExecStats) counters).
pub fn try_gemm_f64(
    precision: GemmPrecision,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &Matrix<f64>,
) -> Result<GemmResult<f64>, M3xuError> {
    context::default_context().try_gemm_f64(precision, a, b, c)
}

/// Tiled emulated-FP64 GEMM `D = A·B + C`.
///
/// Panics on shape or precision mismatch; see [`try_gemm_f64`] for the
/// fallible form.
pub fn gemm_f64(
    precision: GemmPrecision,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &Matrix<f64>,
) -> GemmResult<f64> {
    try_gemm_f64(precision, a, b, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible convenience: emulated-FP64 `A·B` with a zero C.
pub fn try_matmul_f64(a: &Matrix<f64>, b: &Matrix<f64>) -> Result<Matrix<f64>, M3xuError> {
    let c = Matrix::zeros(a.rows(), b.cols());
    Ok(try_gemm_f64(GemmPrecision::Fp64Emulated, a, b, &c)?.d)
}

/// Convenience: emulated-FP64 `A·B` with a zero C. Panics on shape
/// mismatch; see [`try_matmul_f64`] for the fallible form.
pub fn matmul_f64(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    try_matmul_f64(a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible convenience: complex `A·B` with a zero C.
pub fn try_cmatmul_c32(
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
) -> Result<Matrix<Complex<f32>>, M3xuError> {
    let c = Matrix::zeros(a.rows(), b.cols());
    Ok(try_cgemm_c32(a, b, &c)?.d)
}

/// Convenience: complex `A·B` with a zero C. Panics on shape mismatch;
/// see [`try_cmatmul_c32`] for the fallible form.
pub fn cmatmul_c32(a: &Matrix<Complex<f32>>, b: &Matrix<Complex<f32>>) -> Matrix<Complex<f32>> {
    try_cmatmul_c32(a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// The original per-tile drivers: copy each fragment tile, re-decode it
/// through the [`Mxu`](m3xu_mxu::unit::Mxu) entry points, spawn a scoped
/// thread team per call. Kept as the differential-test oracle and the
/// benchmark baseline; the packed drivers above are bit-identical to it.
pub mod baseline {
    use super::{GemmPrecision, GemmResult};
    use m3xu_fp::complex::Complex;
    use m3xu_mxu::matrix::Matrix;
    use m3xu_mxu::mma::{MmaShape, MmaStats};
    use m3xu_mxu::modes::MxuMode;
    use m3xu_mxu::unit::{Mxu, MxuConfig};

    /// Per-thread partial result: owned output row-stripes plus counters.
    type StripeResult<T> = (Vec<(usize, Matrix<T>)>, MmaStats);

    fn workers() -> usize {
        super::workers().min(8)
    }

    /// The one generic row-stripe driver behind both baseline entry
    /// points: shard output row-stripes over scoped threads, accumulate
    /// each tile's `K` loop through the per-fragment `mma` dispatch.
    /// Real and complex GEMM differ only in that closure.
    fn stripe_gemm<T, F>(
        mode: MxuMode,
        a: &Matrix<T>,
        b: &Matrix<T>,
        c: &Matrix<T>,
        mma: F,
    ) -> GemmResult<T>
    where
        T: Copy + Default + Send + Sync,
        F: Fn(&mut Mxu, &Matrix<T>, &Matrix<T>, &Matrix<T>) -> Matrix<T> + Sync,
    {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        super::validate_gemm_shapes(a, b, c).unwrap_or_else(|e| panic!("{e}"));

        let frag = MmaShape::BASELINE_FP16.for_mode(mode);
        let row_tiles: Vec<usize> = (0..m).step_by(frag.m).collect();
        let mut d = Matrix::<T>::zeros(m, n);
        let mut total = MmaStats::default();

        // Shard output row-stripes across threads; each thread owns a
        // disjoint set of output rows, so the writes below never alias.
        let nw = workers().min(row_tiles.len().max(1));
        let chunks: Vec<&[usize]> = row_tiles
            .chunks(row_tiles.len().div_ceil(nw.max(1)).max(1))
            .collect();

        let mma = &mma;
        let results: Vec<StripeResult<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    s.spawn(move || {
                        let mut mxu = Mxu::new(MxuConfig::default());
                        let mut out = Vec::new();
                        for &i0 in chunk.iter() {
                            let mut stripe = Matrix::<T>::zeros(frag.m, n);
                            for j0 in (0..n).step_by(frag.n) {
                                // Accumulate over K in fragment steps.
                                let mut acc = c.tile(i0, j0, frag.m, frag.n);
                                for k0 in (0..k).step_by(frag.k) {
                                    let at = a.tile(i0, k0, frag.m, frag.k);
                                    let bt = b.tile(k0, j0, frag.k, frag.n);
                                    acc = mma(&mut mxu, &at, &bt, &acc);
                                }
                                stripe.store_tile(0, j0, &acc);
                            }
                            out.push((i0, stripe));
                        }
                        let stats = mxu.counters.for_mode(mode);
                        (out, stats)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (stripes, stats) in results {
            total.merge(&stats);
            for (i0, stripe) in stripes {
                d.store_tile(i0, 0, &stripe);
            }
        }
        GemmResult { d, stats: total }
    }

    /// The seed tiled FP32 GEMM: row-stripe sharding over scoped threads.
    pub fn gemm_f32(
        precision: GemmPrecision,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> GemmResult<f32> {
        stripe_gemm(
            precision.mode(),
            a,
            b,
            c,
            move |mxu, at, bt, acc| match precision {
                GemmPrecision::M3xuFp32 => mxu.mma_fp32(at, bt, acc),
                GemmPrecision::Tf32 => mxu.mma_tf32(at, bt, acc),
                GemmPrecision::Fp16 => mxu.mma_fp16(at, bt, acc),
                GemmPrecision::Bf16 => mxu.mma_bf16(at, bt, acc),
                GemmPrecision::Fp32Fast | GemmPrecision::Fp64Emulated => panic!(
                    "no baseline tile executor for {:?}; the packed driver is \
                     the only engine for this precision",
                    precision
                ),
            },
        )
    }

    /// The seed tiled FP32C CGEMM.
    pub fn cgemm_c32(
        a: &Matrix<Complex<f32>>,
        b: &Matrix<Complex<f32>>,
        c: &Matrix<Complex<f32>>,
    ) -> GemmResult<Complex<f32>> {
        stripe_gemm(MxuMode::M3xuFp32c, a, b, c, |mxu, at, bt, acc| {
            mxu.mma_fp32c(at, bt, acc)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3xu_fp::ulp::ErrorStats;

    /// Per-fragment exact-accumulation reference with the same K-chunking
    /// order as the driver (round once per fragment).
    fn fragment_reference(
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
        frag_k: usize,
    ) -> Matrix<f32> {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            let mut acc = c.get(i, j);
            for k0 in (0..a.cols()).step_by(frag_k) {
                let mut kul = m3xu_fp::Kulisch::new();
                kul.add_f64(acc as f64);
                for kk in k0..(k0 + frag_k).min(a.cols()) {
                    kul.add_product_f32(a.get(i, kk), b.get(kk, j));
                }
                acc = kul.to_f32();
            }
            acc
        })
    }

    /// Per-fragment truncated-schedule reference for
    /// [`GemmPrecision::Fp32Fast`]: the 12+12 slice split with the lo·lo
    /// cross term dropped, accumulated exactly per K-chunk.
    fn fast_fragment_reference(
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
        frag_k: usize,
    ) -> Matrix<f32> {
        let cfg = m3xu_fp::split::FP32_SLICES_EXACT;
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            let mut acc = c.get(i, j);
            for k0 in (0..a.cols()).step_by(frag_k) {
                let mut kul = m3xu_fp::Kulisch::new();
                kul.add_f64(acc as f64);
                for kk in k0..(k0 + frag_k).min(a.cols()) {
                    let sa = cfg.split_f32(a.get(i, kk));
                    let sb = cfg.split_f32(b.get(kk, j));
                    kul.add_product_f64(sa.get(0), sb.get(0));
                    kul.add_product_f64(sa.get(0), sb.get(1));
                    kul.add_product_f64(sa.get(1), sb.get(0));
                }
                acc = kul.to_f32();
            }
            acc
        })
    }

    /// Per-fragment exact reference for [`GemmPrecision::Fp64Emulated`]:
    /// all 25 slice cross products of the 5-slice `f64` split, rounded to
    /// `f64` once per K-chunk.
    fn f64_fragment_reference(
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        c: &Matrix<f64>,
        frag_k: usize,
    ) -> Matrix<f64> {
        let cfg = m3xu_fp::split::FP64_SLICES_EMULATED;
        let n = cfg.slices() as usize;
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            let mut acc = c.get(i, j);
            for k0 in (0..a.cols()).step_by(frag_k) {
                let mut kul = m3xu_fp::Kulisch::new();
                kul.add_f64(acc);
                for kk in k0..(k0 + frag_k).min(a.cols()) {
                    let sa = cfg.split_f64(a.get(i, kk));
                    let sb = cfg.split_f64(b.get(kk, j));
                    for si in 0..n {
                        for sj in 0..n {
                            kul.add_product_f64(sa.get(si), sb.get(sj));
                        }
                    }
                }
                acc = kul.to_f64();
            }
            acc
        })
    }

    #[test]
    fn fp32_fast_gemm_bit_exact_vs_truncated_fragment_reference() {
        let a = Matrix::<f32>::random(37, 19, 11);
        let b = Matrix::<f32>::random(19, 23, 12);
        let c = Matrix::<f32>::random(37, 23, 13);
        let r = gemm_f32(GemmPrecision::Fp32Fast, &a, &b, &c);
        let expect = fast_fragment_reference(&a, &b, &c, 2);
        assert_eq!(r.d, expect);
        // The truncation is real: the fast engine must not silently run
        // the full 4-term schedule.
        let exact = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_ne!(r.d, exact.d);
    }

    #[test]
    fn fp64_emulated_gemm_bit_exact_vs_fragment_reference() {
        let a = Matrix::<f64>::random_f64(37, 19, 21);
        let b = Matrix::<f64>::random_f64(19, 23, 22);
        let c = Matrix::<f64>::random_f64(37, 23, 23);
        let r = gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c);
        let expect = f64_fragment_reference(&a, &b, &c, 1);
        assert_eq!(r.d, expect);
    }

    #[test]
    fn fp64_emulated_identity_passthrough() {
        let a = Matrix::<f64>::random_f64(16, 16, 31);
        let i = Matrix::<f64>::identity_f64(16);
        let d = matmul_f64(&a, &i);
        assert_eq!(d, a);
    }

    #[test]
    fn precision_guards_reject_mismatched_element_types() {
        let a32 = Matrix::<f32>::random(4, 4, 1);
        let c32 = Matrix::<f32>::zeros(4, 4);
        let err = try_gemm_f32(GemmPrecision::Fp64Emulated, &a32, &a32, &c32).unwrap_err();
        assert!(matches!(
            err,
            M3xuError::ModeMismatch {
                got: MxuMode::M3xuFp64Emu,
                ..
            }
        ));

        let a64 = Matrix::<f64>::random_f64(4, 4, 1);
        let c64 = Matrix::<f64>::zeros(4, 4);
        for precision in GemmPrecision::ALL {
            if precision == GemmPrecision::Fp64Emulated {
                assert!(try_gemm_f64(precision, &a64, &a64, &c64).is_ok());
            } else {
                let err = try_gemm_f64(precision, &a64, &a64, &c64).unwrap_err();
                assert!(
                    matches!(err, M3xuError::ModeMismatch { got, .. } if got == precision.mode())
                );
            }
        }
    }

    #[test]
    fn fp64_emulated_stats_follow_the_lane_law() {
        let ctx = crate::context::M3xuContext::with_threads(2);
        let a = Matrix::<f64>::random_f64(64, 64, 41);
        let b = Matrix::<f64>::random_f64(64, 64, 42);
        let c = Matrix::<f64>::zeros(64, 64);
        ctx.gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c);
        let stats = ctx.stats();
        let per = stats.mode(MxuMode::M3xuFp64Emu);
        // 8x8 tiles, frag_k = 1: (64/8) * (64/8) * 64 fragments.
        assert_eq!(per.instructions, 8 * 8 * 64);
        assert_eq!(
            per.steps,
            per.instructions * MxuMode::M3xuFp64Emu.steps() as u64
        );
        // 25 slice products per scalar MAC; 8*8*1 MACs per fragment.
        assert_eq!(per.lane_products, per.instructions * 8 * 8 * 25);
        // Operand traffic at the f64 storage width.
        assert_eq!(stats.operand_bytes, (64 * 64 + 64 * 64) * 8);
    }

    #[test]
    fn m3xu_gemm_bit_exact_vs_fragment_reference() {
        let a = Matrix::<f32>::random(37, 19, 1); // awkward sizes: padding paths
        let b = Matrix::<f32>::random(19, 23, 2);
        let c = Matrix::<f32>::random(37, 23, 3);
        let r = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        let expect = fragment_reference(&a, &b, &c, 2);
        assert_eq!(r.d, expect);
    }

    #[test]
    fn m3xu_gemm_matches_simt_within_rounding() {
        let a = Matrix::<f32>::random(64, 64, 4);
        let b = Matrix::<f32>::random(64, 64, 5);
        let c = Matrix::<f32>::zeros(64, 64);
        let m3xu = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d;
        let gold = Matrix::reference_gemm_f64(&a, &b, &c);
        // One rounding per 2-wide fragment: the absolute error stays within
        // a few units of the dot product's own rounding scale. (Raw ULP
        // distance is meaningless near cancellation-induced zeros.)
        let scale = 64.0f32.sqrt() * f32::EPSILON; // ~||row|| * eps
        for (x, g) in m3xu.as_slice().iter().zip(gold.as_slice()) {
            assert!((x - g).abs() <= 8.0 * scale, "{x} vs {g}");
        }
        let stats = ErrorStats::compare_f32(m3xu.as_slice(), gold.as_slice());
        assert!(stats.mean_ulp < 16.0, "mean ulp = {}", stats.mean_ulp);
    }

    #[test]
    fn tf32_gemm_is_visibly_less_accurate() {
        let a = Matrix::<f32>::random(48, 48, 6);
        let b = Matrix::<f32>::random(48, 48, 7);
        let c = Matrix::<f32>::zeros(48, 48);
        let gold = Matrix::reference_gemm_f64(&a, &b, &c);
        let m3xu = ErrorStats::compare_f32(
            gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d.as_slice(),
            gold.as_slice(),
        );
        let tf32 = ErrorStats::compare_f32(
            gemm_f32(GemmPrecision::Tf32, &a, &b, &c).d.as_slice(),
            gold.as_slice(),
        );
        assert!(
            tf32.mean_ulp > 50.0 * (m3xu.mean_ulp + 1.0),
            "tf32 mean ulp {} vs m3xu {}",
            tf32.mean_ulp,
            m3xu.mean_ulp
        );
    }

    #[test]
    fn instruction_count_follows_rule_b() {
        // §V-B1(b): FP32 GEMM of the same shape issues 2x the MMA count of
        // ... in our model: (m/8)(n/8)(k/2) fragments, each a 2-step MMA.
        let a = Matrix::<f32>::random(16, 8, 8);
        let b = Matrix::<f32>::random(8, 16, 9);
        let c = Matrix::<f32>::zeros(16, 16);
        let r = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_eq!(r.stats.instructions, (16 / 8) * (16 / 8) * (8 / 2));
        assert_eq!(r.stats.steps, r.stats.instructions * 2);
    }

    #[test]
    fn cgemm_matches_f64_reference_closely() {
        let a = Matrix::random_c32(24, 16, 10);
        let b = Matrix::random_c32(16, 24, 11);
        let c = Matrix::random_c32(24, 24, 12);
        let r = cgemm_c32(&a, &b, &c);
        let gold = Matrix::reference_cgemm_f64(&a, &b, &c);
        for i in 0..24 {
            for j in 0..24 {
                let d = r.d.get(i, j);
                let g = gold.get(i, j);
                assert!((d.re - g.re).abs() <= 4.0 * f32::EPSILON * g.re.abs().max(1.0));
                assert!((d.im - g.im).abs() <= 4.0 * f32::EPSILON * g.im.abs().max(1.0));
            }
        }
    }

    #[test]
    fn cgemm_identity_roundtrip() {
        let a = Matrix::random_c32(16, 16, 13);
        let i = Matrix::identity_c32(16);
        let d = cmatmul_c32(&a, &i);
        assert_eq!(d, a);
    }

    #[test]
    fn gemm_identity_roundtrip() {
        let a = Matrix::<f32>::random(32, 32, 14);
        let i = Matrix::<f32>::identity(32);
        assert_eq!(matmul_f32(GemmPrecision::M3xuFp32, &a, &i), a);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Determinism across thread counts: tiles are independent, so the
        // result cannot depend on scheduling.
        let a = Matrix::<f32>::random(96, 40, 15);
        let b = Matrix::<f32>::random(40, 72, 16);
        let c = Matrix::<f32>::random(96, 72, 17);
        let r1 = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d;
        let r2 = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d;
        assert_eq!(r1, r2);
    }

    #[test]
    fn empty_k_returns_c() {
        let a = Matrix::<f32>::zeros(8, 0);
        let b = Matrix::<f32>::zeros(0, 8);
        let c = Matrix::<f32>::random(8, 8, 18);
        let r = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_eq!(r.d, c);
    }

    // ---- packed-vs-baseline differential coverage ----------------------

    /// Byte-level equality, distinguishing NaN payloads and signed zeros.
    fn assert_bits_f32(got: &Matrix<f32>, want: &Matrix<f32>, ctx: &str) {
        for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {i}: {x} vs {y}");
        }
    }

    fn assert_bits_c32(got: &Matrix<Complex<f32>>, want: &Matrix<Complex<f32>>, ctx: &str) {
        for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{ctx}: element {i} (re)");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{ctx}: element {i} (im)");
        }
    }

    #[test]
    fn packed_matches_baseline_all_modes_awkward_shapes() {
        let shapes = [
            (1, 1, 1),
            (8, 8, 8),
            (37, 19, 23),
            (5, 64, 3),
            (64, 1, 64),
            (9, 7, 17),
        ];
        for &(m, k, n) in &shapes {
            for (si, precision) in [
                GemmPrecision::M3xuFp32,
                GemmPrecision::Tf32,
                GemmPrecision::Fp16,
                GemmPrecision::Bf16,
            ]
            .into_iter()
            .enumerate()
            {
                let seed = (100 * m + 10 * k + n + si) as u64;
                let a = Matrix::<f32>::random(m, k, seed);
                let b = Matrix::<f32>::random(k, n, seed + 1);
                let c = Matrix::<f32>::random(m, n, seed + 2);
                let packed = gemm_f32(precision, &a, &b, &c);
                let base = baseline::gemm_f32(precision, &a, &b, &c);
                assert_bits_f32(&packed.d, &base.d, &format!("{precision:?} {m}x{k}x{n}"));
                assert_eq!(packed.stats, base.stats, "{precision:?} {m}x{k}x{n} stats");
            }
        }
    }

    #[test]
    fn packed_cgemm_matches_baseline_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (8, 4, 8), (13, 9, 21), (24, 16, 24)] {
            let seed = (1000 + m * 31 + k * 7 + n) as u64;
            let a = Matrix::random_c32(m, k, seed);
            let b = Matrix::random_c32(k, n, seed + 1);
            let c = Matrix::random_c32(m, n, seed + 2);
            let packed = cgemm_c32(&a, &b, &c);
            let base = baseline::cgemm_c32(&a, &b, &c);
            assert_bits_c32(&packed.d, &base.d, &format!("cgemm {m}x{k}x{n}"));
            assert_eq!(packed.stats, base.stats, "cgemm {m}x{k}x{n} stats");
        }
    }

    #[test]
    fn packed_matches_baseline_on_specials_and_subnormals() {
        let vals = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            1.0e-44, // subnormal
            -f32::MIN_POSITIVE,
            f32::MAX,
            -1.5,
            3.0e-39, // subnormal-adjacent
        ];
        let a = Matrix::from_fn(11, 6, |i, j| vals[(i * 7 + j) % vals.len()]);
        let b = Matrix::from_fn(6, 13, |i, j| vals[(i + j * 3) % vals.len()]);
        let c = Matrix::from_fn(11, 13, |i, j| vals[(i + j) % vals.len()]);
        for precision in [GemmPrecision::M3xuFp32, GemmPrecision::Tf32] {
            let packed = gemm_f32(precision, &a, &b, &c);
            let base = baseline::gemm_f32(precision, &a, &b, &c);
            assert_bits_f32(&packed.d, &base.d, &format!("{precision:?} specials"));
        }
        let ca = Matrix::from_fn(9, 5, |i, j| {
            Complex::new(vals[(i + j) % vals.len()], vals[(i * 3 + j) % vals.len()])
        });
        let cb = Matrix::from_fn(5, 9, |i, j| {
            Complex::new(
                vals[(i * 5 + j) % vals.len()],
                vals[(i + 2 * j) % vals.len()],
            )
        });
        let cc = Matrix::<Complex<f32>>::zeros(9, 9);
        let packed = cgemm_c32(&ca, &cb, &cc);
        let base = baseline::cgemm_c32(&ca, &cb, &cc);
        assert_bits_c32(&packed.d, &base.d, "cgemm specials");
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let a = Matrix::<f32>::random(41, 27, 90);
        let b = Matrix::<f32>::random(27, 33, 91);
        let c = Matrix::<f32>::random(41, 33, 92);
        let ca = Matrix::random_c32(17, 9, 93);
        let cb = Matrix::random_c32(9, 19, 94);
        let cc = Matrix::random_c32(17, 19, 95);
        let mut real: Vec<Matrix<f32>> = Vec::new();
        let mut cplx: Vec<Matrix<Complex<f32>>> = Vec::new();
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            real.push(gemm_f32_on(&pool, GemmPrecision::M3xuFp32, &a, &b, &c).d);
            cplx.push(cgemm_c32_on(&pool, &ca, &cb, &cc).d);
        }
        for r in &real[1..] {
            assert_bits_f32(r, &real[0], "pool-size determinism (real)");
        }
        for r in &cplx[1..] {
            assert_bits_c32(r, &cplx[0], "pool-size determinism (complex)");
        }
    }

    #[test]
    fn workers_respects_env_contract() {
        // `workers()` delegates to the pool sizing; it must be positive.
        assert!(workers() >= 1);
    }

    // ---- ABFT-checked driver -------------------------------------------

    #[test]
    fn abft_zero_rate_verifies_and_stays_bit_identical() {
        // A rate-0 plan runs the full checksum machinery with no
        // injection: every chunk verifies and the result is bit-identical
        // to the oracle, summary all-zero.
        let pool = WorkerPool::new(2);
        let plan = FaultPlan::new(1, 0.0);
        let a = Matrix::<f32>::random(23, 11, 40);
        let b = Matrix::<f32>::random(11, 19, 41);
        let c = Matrix::<f32>::random(23, 19, 42);
        let (r, s) =
            try_gemm_abft(&pool, "gemm", MxuMode::M3xuFp32, &a, &b, &c, None, &plan).unwrap();
        let oracle = baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_bits_f32(&r.d, &oracle.d, "abft zero-rate");
        assert_eq!(r.stats, oracle.stats);
        assert_eq!(s, FaultSummary::default());
    }

    #[test]
    fn abft_recovers_injected_faults_bit_identically() {
        let pool = WorkerPool::new(2);
        let a = Matrix::<f32>::random(33, 17, 50);
        let b = Matrix::<f32>::random(17, 29, 51);
        let c = Matrix::<f32>::random(33, 29, 52);
        let oracle = baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        let mut saw_faults = false;
        for seed in 0..8u64 {
            let plan = FaultPlan::new(seed, 0.05);
            let (r, s) =
                try_gemm_abft(&pool, "gemm", MxuMode::M3xuFp32, &a, &b, &c, None, &plan).unwrap();
            assert_bits_f32(&r.d, &oracle.d, &format!("abft recovery seed {seed}"));
            assert_eq!(s.detected, s.corrected, "seed {seed}: {s:?}");
            saw_faults |= s.detected > 0;
        }
        assert!(saw_faults, "rate 0.05 across 8 seeds must inject something");
    }

    #[test]
    fn abft_complex_recovery_matches_oracle() {
        let pool = WorkerPool::new(2);
        let a = Matrix::random_c32(17, 9, 60);
        let b = Matrix::random_c32(9, 13, 61);
        let c = Matrix::random_c32(17, 13, 62);
        let oracle = baseline::cgemm_c32(&a, &b, &c);
        let plan = FaultPlan::new(3, 0.05);
        let (r, s) =
            try_gemm_abft(&pool, "cgemm", MxuMode::M3xuFp32c, &a, &b, &c, None, &plan).unwrap();
        assert_bits_c32(&r.d, &oracle.d, "abft complex recovery");
        assert_eq!(s.detected, s.corrected);
    }

    #[test]
    fn abft_rate_one_is_a_typed_error_not_a_panic() {
        let pool = WorkerPool::new(2);
        let plan = FaultPlan::new(9, 1.0);
        let a = Matrix::<f32>::random(16, 8, 70);
        let b = Matrix::<f32>::random(8, 16, 71);
        let c = Matrix::<f32>::zeros(16, 16);
        match try_gemm_abft(&pool, "gemm", MxuMode::M3xuFp32, &a, &b, &c, None, &plan) {
            Err(M3xuError::FaultDetected {
                op,
                mode,
                tiles,
                detected,
                corrected,
                retries,
            }) => {
                assert_eq!(op, "gemm");
                assert_eq!(mode, MxuMode::M3xuFp32);
                assert!(tiles > 0);
                assert!(detected > corrected);
                assert!(retries > 0);
            }
            other => panic!("expected FaultDetected, got {other:?}"),
        }
        // The pool (and its supervisor) must stay usable afterwards.
        let clean = gemm_f32_on(&pool, GemmPrecision::M3xuFp32, &a, &b, &c);
        let oracle = baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_bits_f32(&clean.d, &oracle.d, "pool reuse after rate-1.0 abft");
    }

    #[test]
    fn abft_specials_fall_back_to_unverified_execution() {
        // Chunks poisoned by NaN/Inf are unverifiable: the checked driver
        // must execute them un-checked (and un-faulted) and still match
        // the oracle bit-for-bit.
        let pool = WorkerPool::new(2);
        let mut a = Matrix::<f32>::random(19, 7, 80);
        a.set(0, 0, f32::NAN);
        a.set(5, 3, f32::INFINITY);
        let b = Matrix::<f32>::random(7, 11, 81);
        let c = Matrix::<f32>::random(19, 11, 82);
        let oracle = baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        let plan = FaultPlan::new(4, 0.2);
        let (r, _) =
            try_gemm_abft(&pool, "gemm", MxuMode::M3xuFp32, &a, &b, &c, None, &plan).unwrap();
        assert_bits_f32(&r.d, &oracle.d, "abft specials");
    }
}
