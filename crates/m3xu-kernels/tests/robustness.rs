//! Runtime-hardening regressions: worker-pool reentrancy, recovery from
//! panicking FFT drivers, and the `M3XU_THREADS` environment contract.
//! These run in both debug and release profiles (`scripts/check.sh` runs
//! the release pass) — the original reentrancy hole was a `debug_assert!`
//! that release builds silently skipped.

use m3xu_kernels::fft::{gemm_fft, gemm_fft_with, spectrum_rel_error, try_gemm_fft_with, C32};
use m3xu_kernels::gemm::{self, gemm_f32_on, GemmPrecision, GemmResult};
use m3xu_kernels::pool::{self, WorkerPool};
use m3xu_kernels::M3xuError;
use m3xu_mxu::matrix::Matrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A GEMM nested inside a task of the same pool must complete (inline)
/// and produce output bit-identical to the same GEMM run at top level.
#[test]
fn nested_gemm_inside_pool_run_is_bit_identical() {
    let pool = WorkerPool::new(4);
    let a = Matrix::<f32>::random(48, 32, 1);
    let b = Matrix::<f32>::random(32, 48, 2);
    let c = Matrix::<f32>::zeros(48, 48);

    let top_level = gemm_f32_on(&pool, GemmPrecision::M3xuFp32, &a, &b, &c);

    let results: Vec<std::sync::Mutex<Option<GemmResult<f32>>>> =
        (0..3).map(|_| std::sync::Mutex::new(None)).collect();
    pool.run(3, |t| {
        // Re-enter the SAME pool from inside one of its tasks.
        let r = gemm_f32_on(&pool, GemmPrecision::M3xuFp32, &a, &b, &c);
        *results[t].lock().unwrap() = Some(r);
    });

    for cell in &results {
        let nested = cell.lock().unwrap().take().expect("task ran");
        assert_eq!(nested.d, top_level.d, "nested result must be bit-identical");
    }
}

/// The global pool must also tolerate re-entry: an FFT (whose CGEMM
/// driver uses the global pool) issued from inside a global-pool task.
#[test]
fn nested_fft_on_global_pool_completes() {
    let m = Matrix::random_c32(64, 1, 3);
    let x: Vec<C32> = (0..64).map(|i| m.get(i, 0)).collect();
    let (expect, _) = gemm_fft(&x);

    let done = AtomicUsize::new(0);
    pool::global().run(2, |_| {
        let (got, _) = gemm_fft(&x);
        assert_eq!(got, expect);
        done.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(done.load(Ordering::SeqCst), 2);
}

/// A CGEMM driver that panics mid-FFT must not poison shared state: the
/// panic propagates to the caller, and the very next FFT — through the
/// same DFT-matrix cache and the same global pool — succeeds.
#[test]
fn fft_survives_a_panicking_injected_driver() {
    let m = Matrix::random_c32(256, 1, 4);
    let x: Vec<C32> = (0..256).map(|i| m.get(i, 0)).collect();

    // First FFT panics part-way through the decomposition (after a few
    // successful GEMMs have warmed/touched the DFT cache).
    let calls = AtomicUsize::new(0);
    let exploding = |a: &Matrix<C32>, b: &Matrix<C32>, c: &Matrix<C32>| -> GemmResult<C32> {
        if calls.fetch_add(1, Ordering::SeqCst) == 2 {
            panic!("injected driver failure");
        }
        gemm::cgemm_c32(a, b, c)
    };
    let unwound = catch_unwind(AssertUnwindSafe(|| gemm_fft_with(&x, exploding)));
    assert!(unwound.is_err(), "the injected panic must propagate");
    assert!(calls.load(Ordering::SeqCst) >= 3, "driver was exercised");

    // The next FFT must succeed and stay accurate.
    let (got, stats) = gemm_fft(&x);
    let gold = m3xu_kernels::fft::dft(&x);
    assert!(spectrum_rel_error(&got, &gold) < 1e-5);
    assert!(stats.instructions > 0);

    // And the fallible form still validates input after the panic.
    let err = try_gemm_fft_with(&x[..100], gemm::cgemm_c32).unwrap_err();
    assert!(matches!(
        err,
        M3xuError::NonPowerOfTwoLength { len: 100, .. }
    ));
}

/// `M3XU_THREADS` contract: `0` means inline execution (a 1-thread
/// pool), a positive integer is taken literally, and garbage falls back
/// to auto-detection with at least one thread. The variable is read at
/// pool construction, so fresh `WorkerPool`s see each setting.
#[test]
fn m3xu_threads_env_semantics() {
    let key = "M3XU_THREADS";
    let prior = std::env::var_os(key);

    std::env::set_var(key, "0");
    assert_eq!(pool::configured_threads(), 1, "0 must mean inline");

    std::env::set_var(key, "3");
    assert_eq!(pool::configured_threads(), 3);

    std::env::set_var(key, "not-a-number");
    let n = pool::configured_threads();
    assert!(n >= 1, "garbage must fall back to >= 1 threads, got {n}");

    // A pool built under the inline setting still computes correctly.
    std::env::set_var(key, "0");
    let pool = WorkerPool::new(pool::configured_threads());
    assert_eq!(pool.size(), 1);
    let a = Matrix::<f32>::random(16, 16, 5);
    let b = Matrix::<f32>::random(16, 16, 6);
    let c = Matrix::<f32>::zeros(16, 16);
    let inline = gemm_f32_on(&pool, GemmPrecision::M3xuFp32, &a, &b, &c);
    let wide = gemm_f32_on(&WorkerPool::new(4), GemmPrecision::M3xuFp32, &a, &b, &c);
    assert_eq!(inline.d, wide.d);

    match prior {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
}
