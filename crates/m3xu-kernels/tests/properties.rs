//! Property-style tests over the application substrates: algebraic laws
//! the kernels must satisfy for arbitrary (deterministically sampled)
//! inputs.

use m3xu_fp::complex::Complex;
use m3xu_kernels::fft;
use m3xu_kernels::gemm::{gemm_f32, matmul_f32, GemmPrecision};
use m3xu_kernels::poly;
use m3xu_mxu::matrix::Matrix;

type C32 = Complex<f32>;

const CASES: usize = 24;

/// Deterministic xorshift64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Well-scaled values: the algebraic properties are about structure,
    /// not overflow.
    fn small_f32(&mut self) -> f32 {
        ((self.next_u64() % 2000) as i64 - 1000) as f32 / 64.0
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, |_, _| self.small_f32())
    }

    fn signal(&mut self, n: usize) -> Vec<C32> {
        (0..n)
            .map(|_| Complex::new(self.small_f32(), self.small_f32()))
            .collect()
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    fn int_vec(&mut self, len: usize, bound: i64) -> Vec<i64> {
        (0..len)
            .map(|_| (self.next_u64() % (2 * bound) as u64) as i64 - bound)
            .collect()
    }
}

/// GEMM bias linearity: the fragment seeds C exactly, so for a single
/// k-fragment the result is the exact dot + C rounded once.
#[test]
fn gemm_bias_is_seeded_exactly_for_single_fragment() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let a = rng.matrix(8, 2);
        let b = rng.matrix(2, 8);
        let c = rng.matrix(8, 8);
        let with_c = gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c).d;
        // Reference: exact dot + c, rounded once.
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = m3xu_fp::Kulisch::new();
                acc.add_f64(c.get(i, j) as f64);
                for k in 0..2 {
                    acc.add_product_f32(a.get(i, k), b.get(k, j));
                }
                assert_eq!(with_c.get(i, j).to_bits(), acc.to_f32().to_bits());
            }
        }
    }
}

/// Transpose identity: (A·B)ᵀ == Bᵀ·Aᵀ, bit-for-bit (the driver's
/// accumulation order is symmetric under transposition for equal k
/// chunking).
#[test]
fn gemm_transpose_identity() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let a = rng.matrix(12, 6);
        let b = rng.matrix(6, 10);
        let ab_t = matmul_f32(GemmPrecision::M3xuFp32, &a, &b).transpose();
        let bt_at = matmul_f32(GemmPrecision::M3xuFp32, &b.transpose(), &a.transpose());
        assert_eq!(ab_t, bt_at);
    }
}

/// Scaling covariance: (sA)·B == s(A·B) exactly when s is a power of
/// two (exponent shifts commute with every rounding).
#[test]
fn gemm_power_of_two_scaling() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let a = rng.matrix(8, 4);
        let b = rng.matrix(4, 8);
        let base = matmul_f32(GemmPrecision::M3xuFp32, &a, &b);
        let sa = Matrix::from_fn(8, 4, |i, j| a.get(i, j) * 4.0);
        let scaled = matmul_f32(GemmPrecision::M3xuFp32, &sa, &b);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(scaled.get(i, j).to_bits(), (base.get(i, j) * 4.0).to_bits());
            }
        }
    }
}

/// FFT linearity: fft(x + y) ~= fft(x) + fft(y).
#[test]
fn fft_is_linear() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let x = rng.signal(64);
        let y = rng.signal(64);
        let sum: Vec<C32> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let (f_sum, _) = fft::gemm_fft(&sum);
        let (fx, _) = fft::gemm_fft(&x);
        let (fy, _) = fft::gemm_fft(&y);
        let combined: Vec<C32> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        let err = fft::spectrum_rel_error(&f_sum, &combined);
        assert!(err < 1e-4, "linearity error {err}");
    }
}

/// FFT time shift <-> phase ramp: fft(shift(x, 1))[k] = fft(x)[k] * w^k.
#[test]
fn fft_shift_theorem() {
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let n = 32;
        let x = rng.signal(n);
        let shifted: Vec<C32> = (0..n).map(|i| x[(i + 1) % n]).collect();
        let (fs, _) = fft::gemm_fft(&shifted);
        let (fx, _) = fft::gemm_fft(&x);
        let expect: Vec<C32> = (0..n)
            .map(|k| {
                let w = Complex::<f64>::cis(2.0 * std::f64::consts::PI * k as f64 / n as f64);
                fx[k] * Complex::new(w.re as f32, w.im as f32)
            })
            .collect();
        let err = fft::spectrum_rel_error(&fs, &expect);
        assert!(err < 1e-4, "shift theorem error {err}");
    }
}

/// Parseval for arbitrary signals.
#[test]
fn fft_parseval() {
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let x = rng.signal(128);
        let time: f64 = x.iter().map(|z| z.norm_sqr() as f64).sum();
        if time <= 1e-6 {
            continue;
        }
        let (f, _) = fft::gemm_fft(&x);
        let freq: f64 = f.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / 128.0;
        assert!((time - freq).abs() / time < 1e-4);
    }
}

/// Polynomial multiplication is commutative and matches schoolbook.
#[test]
fn poly_mul_commutes() {
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let la = rng.range(1, 40);
        let lb = rng.range(1, 40);
        let a = rng.int_vec(la, 50);
        let b = rng.int_vec(lb, 50);
        let (ab, _) = poly::poly_mul_int(&a, &b);
        let (ba, _) = poly::poly_mul_int(&b, &a);
        assert_eq!(&ab, &ba);
        assert_eq!(ab, poly::poly_mul_reference(&a, &b));
    }
}

/// KNN is invariant under translation of the whole space.
#[test]
fn knn_translation_invariant() {
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        let refs = Matrix::<f32>::random(24, 5, seed);
        let queries = Matrix::<f32>::random(4, 5, seed ^ 0xAA);
        let base = m3xu_kernels::knn::knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 3);
        let shift = 0.625f32; // exactly representable: distances shift exactly
        let refs_t = Matrix::from_fn(24, 5, |i, j| refs.get(i, j) + shift);
        let queries_t = Matrix::from_fn(4, 5, |i, j| queries.get(i, j) + shift);
        let moved = m3xu_kernels::knn::knn_gemm(GemmPrecision::M3xuFp32, &refs_t, &queries_t, 3);
        assert_eq!(base.indices, moved.indices);
    }
}

/// Conv2d distributes over filter addition.
#[test]
fn conv2d_filter_linearity() {
    use m3xu_kernels::conv2d::{conv2d, ConvSpec, Tensor3};
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 200;
        let x = Tensor3::random(2, 6, 6, seed);
        let spec = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let f1 = Matrix::<f32>::random(2, 2 * 9, seed ^ 1);
        let f2 = Matrix::<f32>::random(2, 2 * 9, seed ^ 2);
        let fsum = Matrix::from_fn(2, 18, |i, j| f1.get(i, j) + f2.get(i, j));
        let (y1, _) = conv2d(GemmPrecision::M3xuFp32, &x, &f1, &[0.0, 0.0], spec);
        let (y2, _) = conv2d(GemmPrecision::M3xuFp32, &x, &f2, &[0.0, 0.0], spec);
        let (ys, _) = conv2d(GemmPrecision::M3xuFp32, &x, &fsum, &[0.0, 0.0], spec);
        for (s, (a, b)) in ys
            .as_slice()
            .iter()
            .zip(y1.as_slice().iter().zip(y2.as_slice()))
        {
            assert!((s - (a + b)).abs() <= 1e-4 * (a + b).abs().max(1.0));
        }
    }
}
