//! Datapath component cost models.
//!
//! Each [`Block`] carries an area (GE), a through-delay (FO4), and an
//! *activity* factor — the fraction of its capacitance that toggles per
//! cycle when the design runs its representative workload. Activity is
//! what separates Table III's power column from its area column: the
//! pipelined M3XU carries 47% more area than the baseline but only 7% more
//! power, because the M3XU-only structures idle (clock-gated, leakage
//! only) during the FP16 MMAs both designs spend their lives on.

use crate::gates::*;

/// One synthesisable block of a design.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Human-readable name ("mul12x12 x4", "assign-mux", ...).
    pub name: String,
    /// Area in gate equivalents.
    pub area_ge: f64,
    /// Through-path delay in FO4 (0 for registers/storage).
    pub delay_fo4: f64,
    /// Fraction of capacitance toggling per cycle in the representative
    /// workload (see module docs).
    pub activity: f64,
}

impl Block {
    /// Dynamic + leakage energy weight per cycle (relative units).
    pub fn power_weight(&self) -> f64 {
        self.area_ge * (self.activity + LEAKAGE_FRACTION * (1.0 - self.activity))
    }
}

/// An `n x m` Wallace-tree multiplier (partial products + compression +
/// final CPA). Area is quadratic in the operand widths — the paper's core
/// cost argument ("the cost of FMA logic is roughly quadratic in the input
/// bitwidth").
pub fn multiplier(name: &str, n: u32, m: u32, activity: f64) -> Block {
    let pp = (n * m) as f64 * AND_GE; // partial-product generation
    let compress = (n * m) as f64 * FA_GE * 0.9; // 3:2 compressor tree
    let cpa = (n + m) as f64 * ADD_GE_PER_BIT; // final add
    Block {
        name: name.to_string(),
        area_ge: pp + compress + cpa,
        delay_fo4: multiplier_depth_fo4(n, m),
        activity,
    }
}

/// A `w`-bit parallel-prefix adder.
pub fn adder(name: &str, w: u32, activity: f64) -> Block {
    Block {
        name: name.to_string(),
        area_ge: w as f64 * ADD_GE_PER_BIT,
        delay_fo4: adder_depth_fo4(w),
        activity,
    }
}

/// A `w`-bit barrel shifter with `stages` mux levels (supports shifts up
/// to `2^stages - 1`).
pub fn shifter(name: &str, w: u32, stages: u32, activity: f64) -> Block {
    Block {
        name: name.to_string(),
        area_ge: (w * stages) as f64 * SHIFT_GE_PER_BIT_STAGE,
        delay_fo4: shifter_depth_fo4(stages),
        activity,
    }
}

/// A bank of `bits` flip-flops (registers, buffers).
pub fn registers(name: &str, bits: u32, activity: f64) -> Block {
    Block {
        name: name.to_string(),
        area_ge: bits as f64 * DFF_GE,
        delay_fo4: 0.0,
        activity,
    }
}

/// A `w`-bit wide bank of `ways`:1 multiplexers.
pub fn mux(name: &str, w: u32, ways: u32, activity: f64) -> Block {
    let levels = (ways.max(2) - 1) as f64; // (ways-1) 2:1 muxes per bit
    Block {
        name: name.to_string(),
        area_ge: w as f64 * levels * MUX2_GE,
        delay_fo4: (ways.max(2) as f64).log2() * 0.9,
        activity,
    }
}

/// A `w`-bit XOR bank (sign-flip logic).
pub fn xor_bank(name: &str, w: u32, activity: f64) -> Block {
    Block {
        name: name.to_string(),
        area_ge: w as f64 * XOR_GE,
        delay_fo4: 0.4,
        activity,
    }
}

/// Normalisation + rounding logic for a `w`-bit significand (LZA + shift +
/// increment).
pub fn normalizer(name: &str, w: u32, activity: f64) -> Block {
    let stages = (w as f64).log2().ceil() as u32;
    Block {
        name: name.to_string(),
        area_ge: (w * stages) as f64 * SHIFT_GE_PER_BIT_STAGE + w as f64 * ADD_GE_PER_BIT * 0.5,
        delay_fo4: shifter_depth_fo4(stages) + 2.0,
        activity,
    }
}

/// Fixed control overhead (FSM, decoders), in GE.
pub fn control(name: &str, ge: f64, activity: f64) -> Block {
    Block {
        name: name.to_string(),
        area_ge: ge,
        delay_fo4: 1.0,
        activity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_area_is_quadratic() {
        let m11 = multiplier("m11", 11, 11, 1.0);
        let m22 = multiplier("m22", 22, 22, 1.0);
        let ratio = m22.area_ge / m11.area_ge;
        // Pure PP+compressor scaling would give 4.0; the linear CPA term
        // drags it slightly below.
        assert!((3.4..4.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn twelve_vs_eleven_bit_multiplier() {
        // The 1-bit mantissa extension costs ~18% more multiplier area —
        // the dominant M3XU overhead the paper quantifies.
        let m11 = multiplier("m11", 11, 11, 1.0);
        let m12 = multiplier("m12", 12, 12, 1.0);
        let ratio = m12.area_ge / m11.area_ge;
        assert!((1.12..1.25).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn power_weight_honours_activity() {
        let active = registers("r", 100, 1.0);
        let idle = registers("r", 100, 0.0);
        assert!(active.power_weight() > 10.0 * idle.power_weight());
        assert!(idle.power_weight() > 0.0); // leakage never vanishes
    }

    #[test]
    fn register_delay_is_zero() {
        assert_eq!(registers("r", 8, 0.5).delay_fo4, 0.0);
    }

    #[test]
    fn mux_scales_with_ways() {
        let m2 = mux("m", 16, 2, 1.0);
        let m4 = mux("m", 16, 4, 1.0);
        assert!(m4.area_ge > m2.area_ge * 2.0);
    }
}
