//! 45 nm-class gate library constants.
//!
//! The paper synthesises its designs with Synopsys Design Compiler against
//! FreePDK45. We cannot run a synthesis tool, so this module captures the
//! *scaling laws* such a flow exhibits, in gate-equivalent (GE = one NAND2)
//! units, with constants in the range published for 45 nm standard-cell
//! libraries. Absolute numbers are irrelevant to Table III — only ratios
//! between designs matter — but the laws (quadratic multipliers, linear
//! adders/registers, logarithmic tree delays, drive-strength inflation
//! under timing pressure) are what make the ratios come out.

/// Area of one gate equivalent (NAND2) in µm² — FreePDK45 ballpark.
pub const GE_AREA_UM2: f64 = 0.8;

/// Delay of a fanout-4 inverter stage in picoseconds at 45 nm (the unit in
/// which logic depths are expressed).
pub const FO4_PS: f64 = 20.0;

/// Area cost per full adder cell, in GE.
pub const FA_GE: f64 = 4.5;

/// Area cost per AND gate (partial-product generation), in GE.
pub const AND_GE: f64 = 1.25;

/// Area cost per flip-flop bit, in GE.
pub const DFF_GE: f64 = 6.0;

/// Area cost per 2:1 mux bit, in GE.
pub const MUX2_GE: f64 = 2.25;

/// Area cost per XOR gate (sign logic, conditional inversion), in GE.
pub const XOR_GE: f64 = 2.0;

/// Per-bit area of a carry-lookahead/parallel-prefix adder, in GE.
pub const ADD_GE_PER_BIT: f64 = 5.5;

/// Per-bit-per-stage area of a barrel shifter, in GE.
pub const SHIFT_GE_PER_BIT_STAGE: f64 = 2.5;

/// Relative dynamic-energy weight per GE per toggle (arbitrary units; only
/// ratios between designs are reported).
pub const DYN_ENERGY_PER_GE: f64 = 1.0;

/// Leakage fraction: idle (clock-gated) logic still costs about this
/// fraction of its active power at 45 nm.
pub const LEAKAGE_FRACTION: f64 = 0.08;

/// Drive-strength inflation exponent: synthesising the same netlist at a
/// clock `r` times shorter than relaxed costs about `r^DRIVE_GAMMA` in
/// dynamic power (larger, leakier cells on critical paths). Empirically
/// 2.5–3 for 45 nm flows; this constant is calibrated against Table III's
/// non-pipelined power column (0.69 at a 1.21x relaxed clock).
pub const DRIVE_GAMMA: f64 = 2.74;

/// Logic depth (in FO4) of an `n x m` Wallace-tree multiplier followed by
/// its final carry-propagate add.
pub fn multiplier_depth_fo4(n: u32, m: u32) -> f64 {
    // ~ log1.5(min) tree stages * 1.5 FO4 each + log2(n+m) CPA stages.
    let tree = ((n.min(m) as f64).ln() / 1.5f64.ln()) * 1.5;
    let cpa = ((n + m) as f64).log2() * 1.2;
    4.0 + tree + cpa
}

/// Logic depth of a `w`-bit parallel-prefix adder.
pub fn adder_depth_fo4(w: u32) -> f64 {
    2.0 + (w as f64).log2() * 1.2
}

/// Logic depth of a barrel shifter with `stages` mux levels.
pub fn shifter_depth_fo4(stages: u32) -> f64 {
    stages as f64 * 0.9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_depth_grows_slowly() {
        let d11 = multiplier_depth_fo4(11, 11);
        let d24 = multiplier_depth_fo4(24, 24);
        // Doubling the width adds ~2-3 FO4, not 2x — the reason the native
        // FP32 MXU can keep the baseline cycle time (Table III row 2).
        assert!(d24 > d11);
        assert!(d24 / d11 < 1.35, "d24/d11 = {}", d24 / d11);
    }

    #[test]
    fn adder_depth_log() {
        assert!(adder_depth_fo4(48) - adder_depth_fo4(24) < 1.3);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards against constant edits
    fn constants_sane() {
        assert!(FA_GE > AND_GE);
        assert!(DFF_GE > MUX2_GE);
        assert!((0.0..1.0).contains(&LEAKAGE_FRACTION));
        assert!(DRIVE_GAMMA > 1.0);
    }
}
