//! # m3xu-synth — hardware cost model for the Table III designs
//!
//! The paper synthesises its RTL with Synopsys DC against FreePDK45; this
//! crate replaces that flow with a structural cost model (45 nm-class gate
//! library, quadratic multipliers, logarithmic tree delays, activity-based
//! power) that elaborates the same five designs and reports the same
//! relative area / cycle-time / power table.
//!
//! * [`gates`] — technology constants and depth laws;
//! * [`components`] — multiplier/adder/shifter/mux/register cost builders;
//! * [`designs`] — the five Table III designs plus ablation variants;
//! * [`report`] — Table III generation and paper-value comparison.

#![warn(missing_docs)]

pub mod components;
pub mod designs;
pub mod gates;
pub mod report;

pub use designs::{baseline_fp16, m3xu, m3xu_no_fp32c, m3xu_pipelined, native_fp32, Design};
pub use report::{table3, Table3Row};
