//! The five MXU designs of Table III, composed from datapath components.
//!
//! | design            | what it is                                           |
//! |-------------------|------------------------------------------------------|
//! | `baseline_fp16`   | an Ampere-class 4-lane FP16/BF16/TF32 dot-product MXU |
//! | `native_fp32`     | brute-force FP32 MXU: 24-bit multipliers, doubled     |
//! |                   | datapath + operand bandwidth, same FLOPS as FP16      |
//! | `m3xu_no_fp32c`   | M3XU with only the FP32 extension (§IV-A)             |
//! | `m3xu`            | full M3XU, FP32 + FP32C, non-pipelined assignment     |
//! | `m3xu_pipelined`  | full M3XU with a separate data-assignment stage       |
//!
//! **Power-column workload convention** (matching §VI-A's comparison): each
//! design is measured under its primary workload — the baseline and the
//! M3XU variants stream FP16 MMAs (M3XU's multi-step structures are
//! clock-gated then, costing leakage only), while the native FP32 design
//! streams FP32 MMAs with its deep multiplier arrays fully toggling (glitch
//! activity in wide Wallace trees exceeds one toggle per node per cycle,
//! which is why its power ratio, 7.97x, far exceeds its area ratio,
//! 3.55x). The non-pipelined M3XU is synthesised at a 21% relaxed clock,
//! letting the tool choose smaller cells (`freq_rel^DRIVE_GAMMA`).

use crate::components::*;
use crate::gates::{adder_depth_fo4, multiplier_depth_fo4, shifter_depth_fo4};
use crate::gates::{DRIVE_GAMMA, FO4_PS, GE_AREA_UM2};

/// A complete synthesisable design.
#[derive(Debug, Clone)]
pub struct Design {
    /// Display name (Table III column).
    pub name: &'static str,
    /// Constituent blocks.
    pub blocks: Vec<Block>,
    /// Critical-path depth in FO4.
    pub critical_path_fo4: f64,
    /// Relative clock frequency at which the design is operated
    /// (1.0 = baseline clock; the non-pipelined M3XU runs at 1/1.21).
    pub freq_rel: f64,
}

impl Design {
    /// Total area in gate equivalents.
    pub fn area_ge(&self) -> f64 {
        self.blocks.iter().map(|b| b.area_ge).sum()
    }

    /// Total area in µm² (45 nm-class).
    pub fn area_um2(&self) -> f64 {
        self.area_ge() * GE_AREA_UM2
    }

    /// Cycle time in picoseconds.
    pub fn cycle_time_ps(&self) -> f64 {
        self.critical_path_fo4 * FO4_PS
    }

    /// Relative power: activity-weighted capacitance x frequency x
    /// drive-strength selection. Synthesising at a relaxed clock lets the
    /// tool pick smaller, lower-power cells — modelled by
    /// `freq_rel^DRIVE_GAMMA` in total (see [`crate::gates::DRIVE_GAMMA`]).
    pub fn power_weight(&self) -> f64 {
        let cap: f64 = self.blocks.iter().map(|b| b.power_weight()).sum();
        cap * self.freq_rel.powf(DRIVE_GAMMA)
    }
}

/// Number of multiplier lanes per dot-product unit slice.
const LANES: u32 = 4;

/// Workload activity of the baseline datapath streaming FP16 MMAs.
const ACT_FP16: f64 = 0.50;
/// Activity of accumulate-path logic under FP16 (upper bits quiet).
const ACT_ACC: f64 = 0.40;
/// Activity of clock-gated M3XU extension structures during FP16 MMAs.
const ACT_GATED: f64 = 0.0;
/// Activity of the native FP32 design streaming FP32 MMAs.
const ACT_FP32_NATIVE: f64 = 0.90;
/// Effective multiplier-array activity of the native design (glitching in
/// deep Wallace trees on full-width data exceeds 1 toggle/node/cycle).
const ACT_MUL_NATIVE: f64 = 1.30;

/// The accumulation back-end (alignment, compression tree, accumulate add,
/// normalise/round). `w` is the internal adder width; `norm_w` the
/// significand width normalised at output.
fn accumulate_backend(w: u32, norm_w: u32, act: f64) -> Vec<Block> {
    let mut v: Vec<Block> = (0..LANES)
        .map(|i| shifter(&format!("prod-align #{i}"), w, 5, act))
        .collect();
    v.push(adder("sum-tree L1a", w, act));
    v.push(adder("sum-tree L1b", w, act));
    v.push(adder("sum-tree L2", w, act));
    v.push(adder("acc-add", w, act));
    v.push(normalizer("normalise/round", norm_w, act));
    v
}

/// Shared baseline compute path depth (decode + multiplier + accumulate).
fn compute_path_fo4(mul_bits: u32, acc_w: u32) -> f64 {
    4.0 // operand decode / hidden-bit insertion
        + multiplier_depth_fo4(mul_bits, mul_bits)
        + shifter_depth_fo4(5)
        + 3.0 * adder_depth_fo4(acc_w) // two tree levels + accumulate add
        + 7.4 // normalise/round
}

/// Baseline Ampere-class FP16 MXU (one 4-lane dot-product unit slice plus
/// its share of operand delivery).
pub fn baseline_fp16() -> Design {
    let mut blocks = Vec::new();
    for i in 0..LANES {
        blocks.push(multiplier(&format!("mul11x11 #{i}"), 11, 11, ACT_FP16));
    }
    blocks.push(adder("exp-add x4", 8 * LANES, ACT_FP16));
    blocks.extend(accumulate_backend(36, 24, ACT_ACC));
    blocks.push(registers("operand regs", 2 * LANES * 16, 0.45));
    blocks.push(registers("acc staging regs", 2 * 32, ACT_ACC));
    blocks.push(control("operand collector + result routing", 2200.0, 0.45));
    blocks.push(control("sequencer", 400.0, 0.30));
    Design {
        name: "baseline FP16 MXU",
        blocks,
        critical_path_fo4: compute_path_fo4(11, 36),
        freq_rel: 1.0,
    }
}

/// Brute-force FP32 MXU: 24-bit multipliers, doubled operand bandwidth and
/// datapath width, FP16 FLOPS parity, re-pipelined to hold the baseline
/// cycle time. No FP32C support.
pub fn native_fp32() -> Design {
    let mut blocks = Vec::new();
    for i in 0..LANES {
        blocks.push(multiplier(
            &format!("mul24x24 #{i}"),
            24,
            24,
            ACT_MUL_NATIVE,
        ));
    }
    blocks.push(adder("exp-add x4", 8 * LANES, ACT_FP32_NATIVE));
    blocks.extend(accumulate_backend(60, 48, ACT_FP32_NATIVE));
    // Doubled operand delivery: 32 B/cycle needs double-width register
    // staging, double-buffering, and collector/bus drivers whose cost grows
    // superlinearly with port pressure.
    blocks.push(registers(
        "operand regs (2x width)",
        2 * LANES * 32,
        ACT_FP32_NATIVE,
    ));
    blocks.push(registers(
        "operand double-buffer",
        2 * LANES * 32,
        ACT_FP32_NATIVE,
    ));
    blocks.push(control(
        "operand collector + routing (2x bw)",
        2200.0 * 2.8,
        ACT_FP32_NATIVE,
    ));
    blocks.push(control(
        "result bus + writeback (2x width)",
        1200.0,
        ACT_FP32_NATIVE,
    ));
    blocks.push(registers(
        "acc staging regs (2x width)",
        2 * 64,
        ACT_FP32_NATIVE,
    ));
    blocks.push(mux("fp16 downward-support muxing", 24 * LANES, 2, 0.6));
    // Extra pipeline registers to hold the baseline cycle time over the
    // deeper multiplier + wider accumulate (two balance stages).
    blocks.push(registers(
        "re-pipelining stage regs",
        2 * (24 + 24 + 48) * LANES,
        ACT_FP32_NATIVE,
    ));
    blocks.push(control("sequencer", 500.0, 0.40));
    Design {
        name: "FP32 MXU (native, w/o FP32C)",
        blocks,
        // Re-pipelined to the baseline clock.
        critical_path_fo4: baseline_fp16().critical_path_fo4,
        freq_rel: 1.0,
    }
}

/// The M3XU data-assignment additions shared by all M3XU variants:
/// split-entry buffers for the b-side halves, the half-select multiplexer
/// network, and the step FSM. Gated during FP16 MMAs.
fn assignment_stage_fp32() -> Vec<Block> {
    // b-side halves buffered per lane: LANES lanes x 21-bit entries x 2
    // halves (the a-side entries feed both steps unchanged — only the b
    // multiplexers flip, Fig. 3a).
    vec![
        registers("assign buffers (b halves)", LANES * 21 * 2, ACT_GATED),
        mux("assign half-select mux", 21 * LANES, 2, ACT_GATED),
        control("step FSM + split wiring", 370.0, ACT_GATED),
    ]
}

/// M3XU supporting FP16 + FP32 only (§IV-A), non-pipelined assignment.
pub fn m3xu_no_fp32c() -> Design {
    let mut blocks = Vec::new();
    for i in 0..LANES {
        // 12-bit multipliers (the 1-bit mantissa extension). Under the
        // FP16 power workload the extra column is quiet: activity scales
        // to keep FP16-equivalent toggling.
        let act = ACT_FP16 * (121.0 / 144.0);
        blocks.push(multiplier(&format!("mul12x12 #{i}"), 12, 12, act));
    }
    blocks.push(adder("exp-add x4", 8 * LANES, ACT_FP16));
    // Widened accumulation: 52-bit internal adders (48-bit registers plus
    // carry guard), weighted-shift injection. Upper bits quiet in FP16.
    blocks.extend(accumulate_backend(52, 24, ACT_ACC * 36.0 / 52.0));
    blocks.push(shifter("weight-shift (24/12/0)", 48, 2, ACT_GATED));
    blocks.push(registers("operand regs", 2 * LANES * 16, 0.45));
    blocks.push(registers(
        "acc staging regs (48-bit)",
        2 * 48,
        ACT_ACC * 32.0 / 48.0,
    ));
    blocks.push(control("operand collector + result routing", 2200.0, 0.45));
    blocks.extend(assignment_stage_fp32());
    blocks.push(control("sequencer (multi-step)", 450.0, 0.30));
    Design {
        name: "M3XU w/o FP32C",
        blocks,
        // Data assignment shares the compute cycle: ~10 FO4 of buffer read,
        // select decode and muxing on top of the (slightly deeper) path.
        critical_path_fo4: compute_path_fo4(12, 52) + 9.0,
        freq_rel: 1.0 / 1.21,
    }
}

/// Full M3XU (FP32 + FP32C), non-pipelined assignment (Table III "M3XU").
///
/// FP32C reuses the FP32 machinery almost entirely: operands stay resident
/// across the four steps, so the additions are wider mux selection (re/im
/// swap), the sign-flip XORs for the imaginary-imaginary subtraction, the
/// 4-step select store, and FSM growth — the paper's "4% more area
/// overhead than just supporting FP32".
pub fn m3xu() -> Design {
    let mut d = m3xu_no_fp32c();
    // Upgrade the half-select mux to 4-way (half flip x re/im swap).
    if let Some(b) = d
        .blocks
        .iter_mut()
        .find(|b| b.name == "assign half-select mux")
    {
        *b = mux("assign half/reim-select mux", 21 * LANES, 4, ACT_GATED);
    }
    d.blocks
        .push(control("4-step select pattern store", 80.0, ACT_GATED));
    d.blocks
        .push(xor_bank("imag sign-flip", 2 * LANES, ACT_GATED));
    d.blocks
        .push(control("FSM extension (4-step)", 120.0, ACT_GATED));
    d.name = "M3XU";
    d
}

/// Full M3XU with the data-assignment stage pipelined (Table III
/// "M3XU pipelined"): baseline-class cycle time, extra stage registers.
pub fn m3xu_pipelined() -> Design {
    let mut d = m3xu();
    // Stage registers between assignment and the multiplier array: the
    // selected entry vectors plus step control. These clock every cycle
    // even in FP16 mode (operands pass through the stage).
    // Only the muxed b-side entries need staging; the a-side feeds the
    // multipliers directly from stable operand registers.
    d.blocks.push(registers(
        "assign/compute stage regs",
        LANES * 21 + 16,
        0.55,
    ));
    d.blocks.push(control("stage valid/stall", 120.0, 0.40));
    // The assignment delay moves off the compute path.
    d.critical_path_fo4 -= 9.0;
    d.freq_rel = 1.0;
    d.name = "M3XU pipelined";
    d
}

/// All five Table III designs, in the paper's column order.
pub fn table3_designs() -> Vec<Design> {
    vec![
        baseline_fp16(),
        native_fp32(),
        m3xu_no_fp32c(),
        m3xu(),
        m3xu_pipelined(),
    ]
}

/// Ablation: a hypothetical baseline whose multipliers already have 12-bit
/// mantissas (the paper: "if we extend an MXU that already supports 12-bit
/// mantissas, the area-overhead of supporting FP32 in M3XU is only 16%").
pub fn baseline_12bit() -> Design {
    let mut d = baseline_fp16();
    let mut i = 0;
    for b in d.blocks.iter_mut() {
        if b.name.starts_with("mul11x11") {
            *b = multiplier(&format!("mul12x12 #{i}"), 12, 12, ACT_FP16);
            i += 1;
        }
    }
    // A 12-bit-native baseline would also carry the wider product buses
    // into its accumulate path (40-bit products need a 52-bit window for
    // the same headroom the 36-bit window gives 22-bit products).
    let backend_new = accumulate_backend(52, 24, ACT_ACC * 36.0 / 52.0);
    let mut bi = 0;
    for b in d.blocks.iter_mut() {
        let replace = b.name.starts_with("prod-align")
            || b.name.starts_with("sum-tree")
            || b.name == "acc-add"
            || b.name == "normalise/round";
        if replace {
            *b = backend_new[bi.min(backend_new.len() - 1)].clone();
            bi += 1;
        }
    }
    d.name = "hypothetical 12-bit baseline";
    d.critical_path_fo4 = compute_path_fo4(12, 52);
    d
}

/// Ablation sweep: area of an M3XU-style design as a function of the
/// multiplier mantissa width (for the mantissa-width bench).
pub fn mantissa_width_sweep() -> Vec<(u32, f64)> {
    let arith_area = |bits: u32| -> f64 {
        let mut area = 0.0;
        for _ in 0..LANES {
            area += multiplier("m", bits, bits, 1.0).area_ge;
        }
        // Backend scales with 2*bits + guard.
        for b in accumulate_backend(2 * bits + 28, 24, 1.0) {
            area += b.area_ge;
        }
        area
    };
    let base = arith_area(11);
    (11..=16)
        .map(|bits| (bits, arith_area(bits) / base))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designs_have_positive_costs() {
        for d in table3_designs() {
            assert!(d.area_ge() > 0.0, "{}", d.name);
            assert!(d.cycle_time_ps() > 0.0);
            assert!(d.power_weight() > 0.0);
            assert!(d.area_um2() > d.area_ge() * 0.5);
        }
    }

    #[test]
    fn area_ordering() {
        let ds = table3_designs();
        let a: Vec<f64> = ds.iter().map(|d| d.area_ge()).collect();
        // baseline < m3xu_no_fp32c < m3xu < m3xu_pipelined < native_fp32
        assert!(a[0] < a[2]);
        assert!(a[2] < a[3]);
        assert!(a[3] < a[4]);
        assert!(a[4] < a[1]);
    }

    #[test]
    fn cycle_time_ordering() {
        let ds = table3_designs();
        let base = ds[0].cycle_time_ps();
        assert!((ds[1].cycle_time_ps() / base - 1.0).abs() < 1e-9); // native re-pipelined
        assert!(ds[2].cycle_time_ps() > base * 1.1); // non-pipelined stretch
        assert!(ds[3].cycle_time_ps() > base * 1.1);
        assert!(ds[4].cycle_time_ps() < ds[3].cycle_time_ps()); // pipelined recovers
    }

    #[test]
    fn mantissa_sweep_monotone() {
        let sweep = mantissa_width_sweep();
        for w in sweep.windows(2) {
            assert!(w[1].1 > w[0].1, "area must grow with mantissa width");
        }
    }

    #[test]
    fn print_table3_ratios_for_calibration() {
        let ds = table3_designs();
        let base = &ds[0];
        for d in &ds {
            println!(
                "{:32} area {:5.2}  cycle {:5.2}  power {:5.2}",
                d.name,
                d.area_ge() / base.area_ge(),
                d.cycle_time_ps() / base.cycle_time_ps(),
                d.power_weight() / base.power_weight()
            );
        }
    }
}
