//! Table III generation: relative overheads of the M3XU implementations.

use crate::designs::{table3_designs, Design};

/// One row of Table III (one design), with model-predicted and
/// paper-reported relative values.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Design name.
    pub name: &'static str,
    /// Model area relative to the baseline FP16 MXU.
    pub area: f64,
    /// Model cycle time relative to baseline.
    pub cycle_time: f64,
    /// Model power relative to baseline.
    pub power: f64,
    /// Paper-reported relative area.
    pub paper_area: f64,
    /// Paper-reported relative cycle time.
    pub paper_cycle_time: f64,
    /// Paper-reported relative power.
    pub paper_power: f64,
}
m3xu_json::impl_to_json!(Table3Row {
    name,
    area,
    cycle_time,
    power,
    paper_area,
    paper_cycle_time,
    paper_power,
});

/// The paper's Table III values, in design order (baseline, native FP32,
/// M3XU w/o FP32C, M3XU, M3XU pipelined).
pub const PAPER_TABLE3: [(f64, f64, f64); 5] = [
    (1.0, 1.0, 1.0),
    (3.55, 1.00, 7.97),
    (1.37, 1.21, 0.66),
    (1.41, 1.21, 0.69),
    (1.47, 1.00, 1.07),
];

/// Generate Table III from the cost model.
pub fn table3() -> Vec<Table3Row> {
    let designs = table3_designs();
    let base = &designs[0];
    let (ba, bc, bp) = (base.area_ge(), base.cycle_time_ps(), base.power_weight());
    designs
        .iter()
        .zip(PAPER_TABLE3)
        .map(|(d, (pa, pc, pp))| Table3Row {
            name: d.name,
            area: d.area_ge() / ba,
            cycle_time: d.cycle_time_ps() / bc,
            power: d.power_weight() / bp,
            paper_area: pa,
            paper_cycle_time: pc,
            paper_power: pp,
        })
        .collect()
}

/// Render Table III as aligned text (the `table3` harness binary's output).
pub fn render_table3() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:32} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "design", "area", "(paper)", "cycle", "(paper)", "power", "(paper)"
    ));
    for r in table3() {
        out.push_str(&format!(
            "{:32} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
            r.name, r.area, r.paper_area, r.cycle_time, r.paper_cycle_time, r.power, r.paper_power
        ));
    }
    out
}

/// The key ablation claims of §VI-A.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Fraction of the M3XU-w/o-FP32C area overhead attributable to the
    /// 1-bit mantissa extension (paper: 56%).
    pub mantissa_bit_share: f64,
    /// Area overhead of M3XU-FP32 over a hypothetical 12-bit-mantissa
    /// baseline (paper: 16%).
    pub overhead_on_12bit_baseline: f64,
    /// Additional area for FP32C over FP32-only, relative to baseline
    /// (paper: 4%).
    pub fp32c_increment: f64,
}
m3xu_json::impl_to_json!(AblationReport {
    mantissa_bit_share,
    overhead_on_12bit_baseline,
    fp32c_increment,
});

/// Compute the §VI-A ablation numbers from the cost model.
pub fn ablations() -> AblationReport {
    let base = crate::designs::baseline_fp16();
    let base12 = crate::designs::baseline_12bit();
    let no_c = crate::designs::m3xu_no_fp32c();
    let full = crate::designs::m3xu();

    let overhead = no_c.area_ge() - base.area_ge();
    // The 1-bit extension's cost: how much of the overhead disappears if the
    // baseline already had 12-bit multipliers (multiplier delta + the wider
    // product buses it implies).
    let mantissa_cost = base12.area_ge() - base.area_ge();
    // Overhead components unrelated to the multiplier width shrink when
    // starting from the 12-bit baseline.
    let residual = no_c.area_ge() - base12.area_ge();

    AblationReport {
        mantissa_bit_share: mantissa_cost / overhead,
        overhead_on_12bit_baseline: residual / base12.area_ge(),
        fp32c_increment: (full.area_ge() - no_c.area_ge()) / base.area_ge(),
    }
}

/// Convenience: the relative power of design `d` against the baseline.
pub fn relative_power(d: &Design) -> f64 {
    d.power_weight() / crate::designs::baseline_fp16().power_weight()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The central Table III assertion: model ratios within tolerance of
    /// the paper's synthesis results.
    #[test]
    fn table3_matches_paper_within_tolerance() {
        for r in table3() {
            let area_err = (r.area - r.paper_area).abs() / r.paper_area;
            let cycle_err = (r.cycle_time - r.paper_cycle_time).abs() / r.paper_cycle_time;
            let power_err = (r.power - r.paper_power).abs() / r.paper_power;
            assert!(
                area_err < 0.20,
                "{}: area {} vs paper {}",
                r.name,
                r.area,
                r.paper_area
            );
            assert!(
                cycle_err < 0.08,
                "{}: cycle {} vs paper {}",
                r.name,
                r.cycle_time,
                r.paper_cycle_time
            );
            assert!(
                power_err < 0.30,
                "{}: power {} vs paper {}",
                r.name,
                r.power,
                r.paper_power
            );
        }
    }

    #[test]
    fn m3xu_far_cheaper_than_native_fp32() {
        let rows = table3();
        // The headline: pipelined M3XU (FP32 + FP32C) vs 3.55x native FP32.
        assert!(rows[4].area < rows[1].area / 2.0);
        assert!(rows[4].power < rows[1].power / 2.0);
    }

    #[test]
    fn ablation_claims_hold() {
        let a = ablations();
        // Paper: 56% of the 37% overhead is the 1-bit mantissa extension.
        assert!(
            (0.35..0.75).contains(&a.mantissa_bit_share),
            "share = {}",
            a.mantissa_bit_share
        );
        // Paper: 16% overhead on a 12-bit baseline.
        assert!(
            (0.08..0.30).contains(&a.overhead_on_12bit_baseline),
            "12-bit overhead = {}",
            a.overhead_on_12bit_baseline
        );
        // Paper: FP32C adds 4%.
        assert!(
            (0.01..0.10).contains(&a.fp32c_increment),
            "fp32c = {}",
            a.fp32c_increment
        );
    }

    #[test]
    fn render_is_nonempty_and_aligned() {
        let t = render_table3();
        assert_eq!(t.lines().count(), 6);
        assert!(t.contains("M3XU pipelined"));
    }
}
